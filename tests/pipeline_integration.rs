//! Cross-crate integration: every query in the corpus must flow through
//! the complete pipeline (parse → validate → translate → simplify →
//! diagram → layout → SVG/DOT/ASCII) and satisfy the structural
//! invariants of each stage.

use queryvis::corpus::{
    beers_schema, chinook_schema, pattern_grid, qonly_sql, qsome_sql, qualification_questions,
    sailors_only_variants, study_questions, unique_set_sql,
};
use queryvis::QueryVis;
use queryvis_layout::{layout_diagram, LayoutOptions};
use queryvis_sql::Schema;

/// Every (sql, schema) pair the paper mentions.
fn full_corpus() -> Vec<(String, Schema)> {
    let mut corpus: Vec<(String, Schema)> = Vec::new();
    let beers = beers_schema();
    corpus.push((unique_set_sql().to_string(), beers.clone()));
    corpus.push((qsome_sql().to_string(), beers.clone()));
    corpus.push((qonly_sql().to_string(), beers.clone()));
    let chinook = chinook_schema();
    for q in study_questions() {
        corpus.push((q.sql.to_string(), chinook.clone()));
    }
    for q in qualification_questions() {
        corpus.push((q.sql.to_string(), chinook.clone()));
    }
    for q in pattern_grid() {
        corpus.push((q.sql.clone(), q.schema.clone()));
    }
    for v in sailors_only_variants() {
        corpus.push((v.to_string(), queryvis::corpus::sailors_schema()));
    }
    corpus
}

#[test]
fn full_corpus_runs_end_to_end() {
    let corpus = full_corpus();
    assert!(
        corpus.len() >= 30,
        "expected a rich corpus, got {}",
        corpus.len()
    );
    for (sql, schema) in &corpus {
        let qv = QueryVis::with_schema(sql, schema)
            .unwrap_or_else(|e| panic!("pipeline failed on:\n{sql}\n{e}"));
        assert!(qv.svg().contains("</svg>"));
        assert!(qv.dot().starts_with("digraph"));
        assert!(!qv.ascii().is_empty());
        assert!(qv.reading().starts_with("Return"));
    }
}

#[test]
fn diagram_invariants_hold_for_full_corpus() {
    for (sql, schema) in &full_corpus() {
        let qv = QueryVis::with_schema(sql, schema).unwrap();
        let d = &qv.diagram;
        // The structural validator must find nothing (both variants).
        assert!(
            queryvis::diagram::verify_diagram(d).is_empty(),
            "defects in:\n{sql}"
        );
        assert!(
            queryvis::diagram::verify_diagram(qv.raw_diagram()).is_empty(),
            "defects in raw diagram of:\n{sql}"
        );
        // Table ids are their indices.
        for (i, table) in d.tables.iter().enumerate() {
            assert_eq!(table.id, i);
        }
        // Exactly one SELECT table.
        assert_eq!(d.tables.iter().filter(|t| t.is_select).count(), 1);
        assert!(d.tables[d.select_table].is_select);
        // Edge endpoints reference valid rows.
        for edge in &d.edges {
            for end in [edge.from, edge.to] {
                assert!(end.table < d.tables.len(), "{sql}");
                assert!(
                    end.row < d.tables[end.table].rows.len(),
                    "edge references a missing row in:\n{sql}\n{d}"
                );
            }
        }
        // Boxes are non-empty and pairwise disjoint.
        let mut seen = std::collections::HashSet::new();
        for qbox in &d.boxes {
            assert!(!qbox.tables.is_empty());
            for &t in &qbox.tables {
                assert!(seen.insert(t), "table {t} in two boxes:\n{sql}");
                assert!(!d.tables[t].is_select);
            }
        }
    }
}

#[test]
fn layout_invariants_hold_for_full_corpus() {
    for (sql, schema) in &full_corpus() {
        let qv = QueryVis::with_schema(sql, schema).unwrap();
        let layout = layout_diagram(&qv.diagram, &LayoutOptions::default());
        assert_eq!(layout.tables.len(), qv.diagram.tables.len());
        // No overlapping tables.
        for i in 0..layout.tables.len() {
            for j in (i + 1)..layout.tables.len() {
                assert!(
                    !layout.tables[i].rect.intersects(&layout.tables[j].rect),
                    "overlap in:\n{sql}"
                );
            }
        }
        // Boxes contain their tables.
        for bl in &layout.boxes {
            for &tid in &qv.diagram.boxes[bl.box_index].tables {
                let tr = layout.table(tid).rect;
                assert!(bl.rect.x <= tr.x && bl.rect.right() >= tr.right(), "{sql}");
                assert!(
                    bl.rect.y <= tr.y && bl.rect.bottom() >= tr.bottom(),
                    "{sql}"
                );
            }
        }
    }
}

#[test]
fn reading_orders_cover_all_tables() {
    for (sql, schema) in &full_corpus() {
        let qv = QueryVis::with_schema(sql, schema).unwrap();
        let steps = queryvis::diagram::reading_order(&qv.diagram);
        // Every non-select table appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for step in &steps {
            assert!(
                seen.insert(step.table),
                "duplicate table in reading:\n{sql}"
            );
        }
        assert_eq!(
            seen.len(),
            qv.diagram.tables.len() - 1,
            "reading misses tables in:\n{sql}"
        );
    }
}

#[test]
fn svg_escapes_special_characters() {
    // AC/DC and <> labels must not break the SVG.
    let qv = QueryVis::with_schema(
        "SELECT A.Name FROM Artist A, Album AL \
         WHERE A.ArtistId = AL.ArtistId AND A.Name = 'AC/DC' AND A.ArtistId <> AL.AlbumId",
        &chinook_schema(),
    )
    .unwrap();
    let svg = qv.svg();
    assert!(svg.contains("AC/DC"));
    assert!(!svg.contains("<>"), "raw <> must be escaped in SVG text");
    assert!(svg.contains("&lt;&gt;"));
}

#[test]
fn deterministic_outputs() {
    let (sql, schema) = (unique_set_sql(), beers_schema());
    let a = QueryVis::with_schema(sql, &schema).unwrap();
    let b = QueryVis::with_schema(sql, &schema).unwrap();
    assert_eq!(a.svg(), b.svg());
    assert_eq!(a.dot(), b.dot());
    assert_eq!(a.ascii(), b.ascii());
    assert_eq!(a.reading(), b.reading());
}
