//! Generative conformance suite for the widened SQL fragment (ISSUE 4).
//!
//! A fragment-aware generator (`proptest::sqlgen`) emits random queries
//! over the *full* widened grammar — `JOIN … ON`, `OR` (polarity-tracked),
//! `GROUP BY` + `HAVING`, and top-level `UNION [ALL]` — and these
//! properties pin the end-to-end guarantees that make the enlarged
//! surface safe to serve:
//!
//! 1. **Round-trip**: `parse(print(q)) == q` on every generated query.
//! 2. **Compilation**: every generated query compiles to diagrams through
//!    the real pipeline (the only admissible refusal is the documented
//!    disjunction-width cap), and every artifact renders.
//! 3. **Pattern stability**: a pattern-preserving rewrite (order-keeping
//!    renames, join-operand flips, `JOIN … ON` syntax, union-branch
//!    rotation) keeps the canonical fingerprint; across distinct queries,
//!    equal pattern ⟺ equal fingerprint.
//! 4. **Warm ≡ cold**: repeat texts and normalization-variant texts serve
//!    byte-identical artifacts through the L1 memo, and the memoized
//!    fingerprint always equals the recomputed one.

use proptest::prelude::*;
use proptest::sqlgen::{gen_query, GenConfig};
use proptest::test_runner::TestRng;
use queryvis::{QueryVis, QueryVisError, QueryVisOptions};
use queryvis_service::{fingerprint_sql, DiagramService, Format, Request, ServiceConfig};
use queryvis_sql::{parse_query_expr, to_sql_expr};

fn gen(seed: u64) -> proptest::sqlgen::GenQuery {
    let mut rng = TestRng::for_case("generative_conformance", seed);
    gen_query(&GenConfig::default(), &mut rng)
}

/// The only admissible compile failure on generated input: the documented
/// disjunction-width cap.
fn admissible(err: &QueryVisError) -> bool {
    matches!(
        err,
        QueryVisError::Translate(queryvis::logic::TranslateError::DisjunctionTooWide { .. })
    )
}

proptest! {
    /// Property 1: parse ∘ print is the identity on generated queries.
    #[test]
    fn parse_print_roundtrip(seed in 0u64..100_000) {
        let sql = gen(seed).canonical();
        let expr = parse_query_expr(&sql)
            .unwrap_or_else(|e| panic!("generated SQL failed to parse: {e}\n{sql}"));
        let printed = to_sql_expr(&expr);
        let reparsed = parse_query_expr(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to re-parse: {e}\n{printed}"));
        prop_assert!(expr == reparsed, "round trip changed the AST:\n{printed}");
    }

    /// Property 2: the full widened grammar compiles end-to-end and every
    /// artifact renders, union badges included.
    #[test]
    fn widened_grammar_compiles_end_to_end(seed in 0u64..100_000) {
        let q = gen(seed);
        let sql = q.canonical();
        let qv = match QueryVis::from_sql(&sql) {
            Ok(qv) => qv,
            Err(e) => {
                prop_assert!(admissible(&e), "unexpected failure: {e}\n{sql}");
                return Ok(());
            }
        };
        let n = qv.diagrams().len();
        prop_assert!(n >= q.branch_count(), "branches lost:\n{sql}");
        let svg = qv.svg();
        prop_assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
        prop_assert!(qv.dot().starts_with("digraph"));
        prop_assert!(!qv.ascii().is_empty());
        prop_assert!(qv.reading().starts_with("Return"));
        prop_assert!(qv.stats().visual_elements() > 0);
        if n > 1 {
            let badge = if qv.union_all { "UNION ALL" } else { "UNION" };
            prop_assert!(qv.ascii().contains(badge), "missing ascii badge:\n{}", qv.ascii());
            prop_assert!(svg.contains("union-badge"), "missing svg badge");
        }
        // Every branch diagram is structurally well-formed.
        for d in qv.diagrams() {
            let defects = queryvis::diagram::verify_diagram(d);
            prop_assert!(defects.is_empty(), "defects {defects:?}\n{sql}");
        }
    }

    /// Property 3a: pattern-preserving rewrites keep the fingerprint.
    #[test]
    fn pattern_variants_share_fingerprint(seed in 0u64..100_000, salt in 0u64..30) {
        let q = gen(seed);
        let canonical = q.canonical();
        let variant = q.pattern_variant(salt);
        let a = fingerprint_sql(&canonical, QueryVisOptions::default());
        let b = fingerprint_sql(&variant, QueryVisOptions::default());
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    a.fingerprint == b.fingerprint,
                    "pattern variant changed the fingerprint:\n{canonical}\nvs\n{variant}\npatterns:\n{}\nvs\n{}",
                    a.pattern_key().render(),
                    b.pattern_key().render()
                );
                prop_assert_eq!(a.pattern_key().render(), b.pattern_key().render());
            }
            (Err(ea), Err(eb)) => prop_assert!(ea.to_string() == eb.to_string()),
            (a, b) => prop_assert!(
                false,
                "variant diverged in outcome: {:?} vs {:?}\n{}\nvs\n{}",
                a.is_ok(), b.is_ok(), canonical, variant
            ),
        }
    }

    /// Property 4: repeat texts are byte-identical warm vs cold, and
    /// normalization variants share the L1 memo entry, fingerprint, and
    /// artifacts; the memoized fingerprint equals the recomputed one.
    #[test]
    fn warm_and_cold_responses_are_byte_identical(seed in 0u64..100_000, salt in 0u64..8) {
        let q = gen(seed);
        let canonical = q.canonical();
        let service = DiagramService::new(ServiceConfig {
            default_formats: vec![Format::Ascii, Format::Dot, Format::Reading],
            ..ServiceConfig::default()
        });
        let request = |sql: &str| Request {
            id: 1,
            sql: sql.to_string(),
            formats: vec![],
            rows: None,
        };
        let cold = service.handle(&request(&canonical));
        let warm = service.handle(&request(&canonical));
        prop_assert!(
            cold.to_json_line() == warm.to_json_line(),
            "warm response diverged from cold:\n{canonical}"
        );
        if cold.outcome.is_err() {
            // Errors are never memoized; they must still repeat verbatim.
            prop_assert_eq!(service.stats().l1_hits, 0);
            return Ok(());
        }
        prop_assert!(service.stats().l1_hits == 1, "repeat text missed the L1 memo");

        // A normalization-equivalent spelling takes the memo path too and
        // serves the same artifacts (only the representative-SQL
        // disclosure may appear, since the text differs).
        let variant = q.text_variant(salt);
        let via_memo = service.memo().lookup(&variant);
        prop_assert!(via_memo.is_some(), "text variant missed the memo:\n{}\nvs\n{}", canonical, variant);
        let (memo_fp, _) = via_memo.unwrap();
        let recomputed = fingerprint_sql(&variant, QueryVisOptions::default()).unwrap();
        prop_assert!(
            memo_fp == recomputed.fingerprint,
            "memoized fingerprint != recomputed"
        );
        let warm_variant = service.handle(&request(&variant));
        let (cold_art, warm_art) = match (&cold.outcome, &warm_variant.outcome) {
            (Ok(a), Ok(b)) => (a, b),
            _ => return Err("variant response failed".to_string()),
        };
        prop_assert_eq!(&cold_art.fingerprint_hex, &warm_art.fingerprint_hex);
        prop_assert!(cold_art.rendered == warm_art.rendered, "artifacts diverged");
    }
}

/// Property 3b: across a generated batch, equal pattern ⟺ equal
/// fingerprint (no collisions, no misses).
#[test]
fn equal_pattern_iff_equal_fingerprint_across_batch() {
    let mut seen: Vec<(String, u128, String)> = Vec::new();
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for seed in 0..cases.max(16) {
        let q = gen(seed * 7919);
        let sql = q.canonical();
        let Ok(fq) = fingerprint_sql(&sql, QueryVisOptions::default()) else {
            continue;
        };
        seen.push((fq.pattern_key().render(), fq.fingerprint.0, sql));
    }
    assert!(seen.len() >= 8, "too few compilable generated queries");
    for (i, (pa, fa, sa)) in seen.iter().enumerate() {
        for (pb, fb, sb) in seen.iter().skip(i + 1) {
            assert_eq!(
                pa == pb,
                fa == fb,
                "pattern/fingerprint equality diverged:\n{sa}\nvs\n{sb}\n{pa}\nvs\n{pb}"
            );
        }
    }
}

/// The golden equivalence the widening licenses: a positive-polarity OR
/// and the equivalent written UNION compile to the same fingerprint, in
/// either branch order; `UNION ALL` stays distinct.
#[test]
fn or_union_equivalences() {
    let fp = |sql: &str| {
        fingerprint_sql(sql, QueryVisOptions::default())
            .unwrap()
            .fingerprint
    };
    let or = fp("SELECT A.x FROM T A WHERE A.x = 1 OR A.y = 2");
    let union = fp("SELECT A.x FROM T A WHERE A.x = 1 UNION SELECT A.x FROM T A WHERE A.y = 2");
    let union_rotated =
        fp("SELECT A.x FROM T A WHERE A.y = 2 UNION SELECT A.x FROM T A WHERE A.x = 1");
    let union_all =
        fp("SELECT A.x FROM T A WHERE A.x = 1 UNION ALL SELECT A.x FROM T A WHERE A.y = 2");
    assert_eq!(or, union, "OR must lower to the written-UNION pattern");
    assert_eq!(union, union_rotated, "branch order must canonicalize");
    assert_ne!(union, union_all, "UNION ALL must not collide with UNION");
    // Single-block queries keep their legacy fingerprints (no union frame).
    let single = fp("SELECT A.x FROM T A WHERE A.x = 1");
    assert_ne!(single, union);
}
