//! Scene-IR integration tests: golden snapshots and cross-backend
//! consistency.
//!
//! * **SVG byte-identity goldens** — `tests/golden/*.svg` were captured
//!   from the pre-scene renderer; the scene-routed pipeline must
//!   reproduce them byte for byte (EXPERIMENTS.md relies on this).
//! * **Scene snapshots** — `tests/golden/*.scene.json` pin the display
//!   list itself for the canonical paper queries (single-block, nested
//!   ∄-chain, 2-branch UNION).
//! * **Backend consistency** — svg and ascii rendered from the *same*
//!   scene agree on table count, row text, and edge endpoints, for every
//!   query of the paper corpus.
//!
//! Regenerate the snapshots after an intentional visual change with
//! `cargo test --test scene_integration -- --ignored regenerate`.

use queryvis::layout::{Mark, MarkRole, TextRole};
use queryvis::render::{to_ascii, to_svg, SvgTheme};
use queryvis::QueryVis;
use queryvis_service::{paper_corpus_requests, scene_json, Format};

/// The canonical queries pinned by goldens: a single-block join query
/// (Fig. 2a), a nested ∄-chain (Qonly, which simplifies to a ∀ box), and
/// a two-branch UNION.
const GOLDEN_CASES: [(&str, &str); 3] = [
    (
        "single_block",
        "SELECT F.person FROM Frequents F, Likes L, Serves S \
          WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink",
    ),
    (
        "nested_chain",
        "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
          (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
          (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))",
    ),
    (
        "union_two_branch",
        "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' \
          UNION SELECT L.person FROM Likes L WHERE L.beer = 'IPA'",
    ),
];

fn golden_path(name: &str, ext: &str) -> String {
    format!("{}/tests/golden/{name}.{ext}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn svg_goldens_are_byte_identical() {
    for (name, sql) in GOLDEN_CASES {
        let golden = std::fs::read_to_string(golden_path(name, "svg"))
            .unwrap_or_else(|e| panic!("{name}.svg golden missing: {e}"));
        let rendered = QueryVis::from_sql(sql).unwrap().svg();
        assert_eq!(
            rendered, golden,
            "{name}: svg output drifted from the pre-scene golden"
        );
    }
}

#[test]
fn scene_snapshots_are_stable() {
    for (name, sql) in GOLDEN_CASES {
        let golden = std::fs::read_to_string(golden_path(name, "scene.json"))
            .unwrap_or_else(|e| panic!("{name}.scene.json golden missing: {e}"));
        let rendered = scene_json(&QueryVis::from_sql(sql).unwrap().scene());
        assert_eq!(
            rendered,
            golden.trim_end(),
            "{name}: scene display list drifted"
        );
    }
}

/// Re-capture the scene snapshots (run explicitly after an intentional
/// visual change; the svg goldens are pre-refactor captures and should
/// only change together with an EXPERIMENTS.md note).
#[test]
#[ignore]
fn regenerate() {
    for (name, sql) in GOLDEN_CASES {
        let qv = QueryVis::from_sql(sql).unwrap();
        std::fs::write(golden_path(name, "svg"), qv.svg()).unwrap();
        let mut scene = scene_json(&qv.scene());
        scene.push('\n');
        std::fs::write(golden_path(name, "scene.json"), scene).unwrap();
    }
}

/// svg and ascii are walkers over the same scene: they must agree on what
/// they draw. Checked across the whole paper corpus.
#[test]
fn svg_and_ascii_agree_on_scene_content() {
    for request in paper_corpus_requests(&[Format::Ascii]) {
        let qv = QueryVis::from_sql(&request.sql)
            .unwrap_or_else(|e| panic!("corpus query {}: {e}", request.id));
        let scene = qv.scene();
        let svg = to_svg(&scene, &SvgTheme::default());
        let ascii = to_ascii(&scene);

        // Table count: one header band per table in svg; ascii draws each
        // table box with 3 border rules of 2 `+` corners each.
        let frames = scene
            .marks()
            .filter(|(m, _)| matches!(m, Mark::Rect(r) if r.role == MarkRole::Frame))
            .count();
        assert_eq!(
            svg.matches(r#"class="header""#).count(),
            frames,
            "{}: svg header count",
            request.id
        );
        let plus_count = ascii.matches('+').count();
        assert_eq!(plus_count, frames * 6, "{}: ascii box census", request.id);

        // Row text: every row run appears in both media (svg escapes).
        for (mark, _) in scene.marks() {
            if let Mark::Text(text) = mark {
                if text.role == TextRole::RowText {
                    let escaped = text
                        .text
                        .replace('&', "&amp;")
                        .replace('<', "&lt;")
                        .replace('>', "&gt;")
                        .replace('\'', "&apos;")
                        .replace('"', "&quot;");
                    assert!(
                        svg.contains(&format!(">{escaped}</text>")),
                        "{}: svg misses row {:?}",
                        request.id,
                        text.text
                    );
                    assert!(
                        ascii.contains(text.text.as_str()),
                        "{}: ascii misses row {:?}",
                        request.id,
                        text.text
                    );
                }
            }
        }

        // Edge endpoints: svg draws one line per edge mark at the scene's
        // coordinates; ascii lists the same edges by resolved names.
        let mut svg_lines = 0usize;
        let mut legend_lines = 0usize;
        for (mark, dy) in scene.marks() {
            if let Mark::Edge(edge) = mark {
                svg_lines += 1;
                assert!(
                    svg.contains(&format!(
                        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}""#,
                        edge.from.x, edge.from.y, edge.to.x, edge.to.y
                    )),
                    "{}: svg misses edge at scene coordinates (dy {dy})",
                    request.id
                );
                let arrow = if matches!(edge.kind, queryvis::layout::EdgeKind::Directed) {
                    "-->"
                } else {
                    "---"
                };
                let legend = format!("{} {arrow} {}", edge.from_text, edge.to_text);
                assert!(
                    ascii.contains(&legend),
                    "{}: ascii misses edge {legend:?}",
                    request.id
                );
                legend_lines += 1;
            }
        }
        assert_eq!(
            svg.matches(r#"class="edge""#).count(),
            svg_lines,
            "{}",
            request.id
        );
        let _ = legend_lines;
    }
}
