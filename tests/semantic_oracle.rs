//! The semantic conformance oracle (ISSUE 9): equal fingerprints must
//! mean equal **answers**, not just equal token streams.
//!
//! Two sweeps defend the serving invariant end to end:
//!
//! 1. **Corpus sweep** — every equal-fingerprint pair across the paper
//!    corpus (plus the App. G pattern grid and the Fig. 24 syntactic
//!    variants) is differentially executed over canonically transported
//!    databases at several seeds. Pairs the transport cannot prove are
//!    skipped *visibly* as `Incompatible` — never silently passed — and
//!    the flagship corpus groups are additionally required to come back
//!    `Equal`, not skipped.
//! 2. **Generative sweep** — ≥ 4 pattern-preserving rewrites per sqlgen
//!    case (renames, join flips, branch rotation, `JOIN … ON`, reversed
//!    conjuncts) go through [`queryvis_exec::check_pair`], and every
//!    query's raw trees are checked against their simplified forms.
//!
//! Any divergence is shrunk to the smallest reproducing table size and
//! written to `oracle-divergences/` (uploaded as a CI artifact) before
//! the test panics, so a red run always leaves a deterministic repro.

use proptest::sqlgen::{gen_query, GenConfig, GenQuery};
use proptest::test_runner::TestRng;
use queryvis::{PreparedQuery, QueryVis, QueryVisOptions};
use queryvis_corpus::{pattern_grid, sailors_only_variants, PatternKind};
use queryvis_exec::{check_pair, check_simplify, Divergence, ExecError, PairOutcome};
use queryvis_service::paper_corpus_requests;

const SEEDS: [u64; 3] = [1, 2, 3];
const ROWS_PER_TABLE: usize = 5;

fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn prepare(sql: &str) -> Option<PreparedQuery> {
    QueryVis::prepare(sql, QueryVisOptions::default()).ok()
}

/// Persist a minimized divergence where CI can pick it up, then fail.
fn dump_and_panic(context: &str, d: &Divergence) -> ! {
    let dir = std::path::Path::new("oracle-divergences");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(format!("{context}.txt")), d.report());
    panic!("{context}:\n{}", d.report());
}

/// A fragment-limit refusal (work budget, `SUM(*)`-style shapes): the
/// pair is skipped, anything else is an oracle bug.
fn skippable(e: &ExecError) -> bool {
    matches!(e, ExecError::Budget | ExecError::BadLiteral(_))
}

#[test]
fn corpus_equal_fingerprint_pairs_agree_on_answers() {
    let prepared: Vec<PreparedQuery> = paper_corpus_requests(&[])
        .iter()
        .filter_map(|r| prepare(&r.sql))
        .collect();
    assert!(prepared.len() >= 10, "corpus unexpectedly small");
    let fingerprints: Vec<u128> = prepared
        .iter()
        .map(|p| p.pattern_key().fingerprint128())
        .collect();

    let (mut pairs, mut proven, mut skipped) = (0u32, 0u32, 0u32);
    for i in 0..prepared.len() {
        for j in (i + 1)..prepared.len() {
            if fingerprints[i] != fingerprints[j] {
                continue;
            }
            pairs += 1;
            for seed in SEEDS {
                match check_pair(&prepared[i], &prepared[j], seed, ROWS_PER_TABLE) {
                    Ok(PairOutcome::Equal) => proven += 1,
                    Ok(PairOutcome::Incompatible(_)) => skipped += 1,
                    Ok(PairOutcome::Divergent(d)) => {
                        dump_and_panic(&format!("corpus-pair-{i}-{j}-seed{seed}"), &d)
                    }
                    Err(e) if skippable(&e) => skipped += 1,
                    Err(e) => panic!(
                        "oracle failed on corpus pair:\n{}\nvs\n{}\n{e}",
                        prepared[i].sql, prepared[j].sql
                    ),
                }
            }
        }
    }
    assert!(
        pairs > 0,
        "the corpus is known to contain equal-fingerprint pairs"
    );
    assert!(
        proven > skipped,
        "the transport must prove most corpus pairs ({proven} proven, {skipped} skipped)"
    );
}

#[test]
fn pattern_grid_rows_are_proven_equal_not_skipped() {
    // App. G: each pattern spans three schemas. These are exactly the
    // cross-schema renames the paper's sharing rests on — the transport
    // must *prove* them, not classify them away.
    let grid = pattern_grid();
    for kind in [PatternKind::No, PatternKind::Only, PatternKind::All] {
        let queries: Vec<PreparedQuery> = grid
            .iter()
            .filter(|q| q.kind == kind)
            .map(|q| prepare(&q.sql).expect("grid query must prepare"))
            .collect();
        for i in 0..queries.len() {
            for j in (i + 1)..queries.len() {
                for seed in SEEDS {
                    match check_pair(&queries[i], &queries[j], seed, ROWS_PER_TABLE) {
                        Ok(PairOutcome::Equal) => {}
                        Ok(PairOutcome::Incompatible(reason)) => panic!(
                            "{kind:?} grid pair must be provable, got Incompatible: {reason}\n{}\nvs\n{}",
                            queries[i].sql, queries[j].sql
                        ),
                        Ok(PairOutcome::Divergent(d)) => {
                            dump_and_panic(&format!("grid-{kind:?}-{i}-{j}-seed{seed}"), &d)
                        }
                        Err(e) => panic!("oracle failed on grid pair: {e}"),
                    }
                }
            }
        }
    }
}

#[test]
fn sailors_syntactic_variants_agree_on_answers() {
    // Fig. 24: NOT EXISTS / NOT IN / <> ALL spellings of one pattern all
    // lower to the same trees, so the oracle must prove them equal.
    let variants: Vec<PreparedQuery> = sailors_only_variants()
        .iter()
        .map(|s| prepare(s).expect("variant must prepare"))
        .collect();
    for i in 0..variants.len() {
        for j in (i + 1)..variants.len() {
            for seed in SEEDS {
                match check_pair(&variants[i], &variants[j], seed, ROWS_PER_TABLE) {
                    Ok(PairOutcome::Equal) => {}
                    Ok(PairOutcome::Incompatible(reason)) => {
                        panic!("variant pair must be provable: {reason}")
                    }
                    Ok(PairOutcome::Divergent(d)) => {
                        dump_and_panic(&format!("sailors-{i}-{j}-seed{seed}"), &d)
                    }
                    Err(e) => panic!("oracle failed on sailors variants: {e}"),
                }
            }
        }
    }
}

#[test]
fn corpus_simplification_is_answer_preserving() {
    // The ∀-introduction rewrite runs on every served diagram; it must
    // never change a query's answers.
    let (mut checked, mut skipped) = (0u32, 0u32);
    for request in paper_corpus_requests(&[]) {
        let Some(q) = prepare(&request.sql) else {
            continue;
        };
        for seed in SEEDS {
            match check_simplify(&q, seed, 4) {
                Ok(None) => checked += 1,
                Ok(Some(d)) => {
                    dump_and_panic(&format!("corpus-simplify-{}-seed{seed}", request.id), &d)
                }
                Err(e) if skippable(&e) => skipped += 1,
                Err(e) => panic!("simplify oracle failed on {}: {e}", request.sql),
            }
        }
    }
    assert!(checked > 0 && checked > skipped, "{checked} vs {skipped}");
}

/// The generative sweep: canonical vs pattern-preserving rewrites, and
/// raw vs simplified trees, over freshly generated queries. With the CI
/// setting (`PROPTEST_CASES=64`) this differentially executes ≥ 256
/// rewrite pairs.
#[test]
fn generated_rewrite_pairs_agree_on_answers() {
    // Salts chosen to cover every rewrite axis: renames (salt % 3),
    // join flips (even), branch rotation (salt / 2), `JOIN … ON`
    // (salt % 5 < 2), reversed conjuncts (salt % 7 >= 4).
    const SALTS: [u64; 4] = [0, 5, 11, 25];
    let cases = case_count().max(16);
    let (mut pairs, mut proven, mut fragment_skipped) = (0u64, 0u64, 0u64);
    for case in 0..cases {
        let mut rng = TestRng::for_case("semantic_oracle", case);
        let q: GenQuery = gen_query(&GenConfig::default(), &mut rng);
        let canonical = q.canonical();
        // The only admissible prepare failure is the documented
        // disjunction-width cap (covered by generative_conformance).
        let Some(left) = prepare(&canonical) else {
            continue;
        };
        let seed = case + 1;
        for salt in SALTS {
            let variant = q.pattern_variant(salt);
            let right = prepare(&variant)
                .unwrap_or_else(|| panic!("variant must prepare when canonical does:\n{variant}"));
            pairs += 1;
            match check_pair(&left, &right, seed, 4) {
                Ok(PairOutcome::Equal) => proven += 1,
                // Rewrites rename and reorder but never touch constants or
                // table sharing: the transport must always prove them.
                Ok(PairOutcome::Incompatible(reason)) => panic!(
                    "pattern variant must be transport-compatible, got: {reason}\n{canonical}\nvs\n{variant}"
                ),
                Ok(PairOutcome::Divergent(d)) => {
                    dump_and_panic(&format!("generated-case{case}-salt{salt}"), &d)
                }
                Err(e) if skippable(&e) => fragment_skipped += 1,
                Err(e) => panic!("oracle failed on generated pair: {e}\n{canonical}"),
            }
        }
        match check_simplify(&left, seed, 3) {
            Ok(None) => {}
            Ok(Some(d)) => dump_and_panic(&format!("generated-simplify-case{case}"), &d),
            Err(e) if skippable(&e) => {}
            Err(e) => panic!("simplify oracle failed: {e}\n{canonical}"),
        }
    }
    assert!(
        pairs >= cases * 3,
        "too few compilable rewrite pairs: {pairs}"
    );
    assert!(
        proven * 3 >= pairs * 2,
        "the oracle proved too few generated pairs: {proven}/{pairs} ({fragment_skipped} fragment-skipped)"
    );
}
