//! Golden structural tests: the exact diagrams of the paper's figures.

use queryvis::corpus::{beers_schema, chinook_schema, study_questions, unique_set_sql};
use queryvis::logic::Quantifier;
use queryvis::{QueryVis, QueryVisOptions};

/// Fig. 6 shows study question Q10 in the `Both` condition; its diagram
/// contains the SELECT table (ArtistId, Name), Artist, and a dashed box
/// around {Album, Track}.
#[test]
fn fig6_q10_diagram_structure() {
    let q10 = study_questions()
        .into_iter()
        .find(|q| q.id == "Q10")
        .unwrap();
    let qv = QueryVis::with_schema(q10.sql, &chinook_schema()).unwrap();
    let d = &qv.diagram;

    // 3 base tables + SELECT.
    assert_eq!(d.tables.len(), 4);
    let select = &d.tables[d.select_table];
    let select_cols: Vec<&str> = select.rows.iter().map(|r| r.column.as_str()).collect();
    assert_eq!(select_cols, vec!["ArtistId", "Name"]);

    // One dashed box holding Album and Track together.
    assert_eq!(d.boxes.len(), 1);
    assert_eq!(d.boxes[0].quantifier, Quantifier::NotExists);
    let boxed: Vec<&str> = d.boxes[0]
        .tables
        .iter()
        .map(|&t| d.tables[t].name.as_str())
        .collect();
    assert_eq!(boxed, vec!["Album", "Track"]);

    // Artist is outside any box.
    let artist = d.table_by_alias("A").unwrap();
    assert!(d.box_of(artist.id).is_none());

    // Edges: 2 SELECT edges + 3 join predicates.
    assert_eq!(d.edges.len(), 5);
    // The A.ArtistId = AL.ArtistId join is drawn Artist → Album (Δ=1).
    let album = d.table_by_alias("AL").unwrap();
    assert!(d
        .edges
        .iter()
        .any(|e| e.directed && e.from.table == artist.id && e.to.table == album.id));
}

/// Fig. 1b's full structural census.
#[test]
fn fig1b_unique_set_census() {
    let qv = QueryVis::with_options(
        unique_set_sql(),
        QueryVisOptions {
            schema: Some(beers_schema()),
            no_simplify: true,
            ..QueryVisOptions::default()
        },
    )
    .unwrap();
    let d = &qv.diagram;
    assert_eq!(d.tables.len(), 7); // L1..L6 + SELECT
    assert_eq!(d.boxes.len(), 5); // L2..L6 each in a ∄ box
    assert_eq!(d.edges.len(), 8); // 7 joins + 1 select edge
    assert_eq!(d.edges.iter().filter(|e| e.directed).count(), 7);
    assert_eq!(d.edges.iter().filter(|e| e.label.is_some()).count(), 1);

    // Row census: L1, L2 show only `drinker`; L3..L6 show drinker + beer.
    for alias in ["L1", "L2"] {
        let t = d.table_by_binding(alias).unwrap();
        let cols: Vec<&str> = t.rows.iter().map(|r| r.column.as_str()).collect();
        assert_eq!(cols, vec!["drinker"], "{alias}");
    }
    for alias in ["L3", "L4", "L5", "L6"] {
        let t = d.table_by_binding(alias).unwrap();
        let mut cols: Vec<&str> = t.rows.iter().map(|r| r.column.as_str()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec!["beer", "drinker"], "{alias}");
    }
}

/// Fig. 12b: the simplified unique-set diagram — L3/L5 in ∀ boxes, L4/L6
/// unboxed.
#[test]
fn fig12b_simplified_unique_set() {
    let qv = QueryVis::with_schema(unique_set_sql(), &beers_schema()).unwrap();
    let d = &qv.diagram;
    assert_eq!(d.boxes.len(), 3); // L2 ∄; L3 ∀; L5 ∀
    let quant_of = |alias: &str| {
        let id = d.table_by_binding(alias).unwrap().id;
        d.box_of(id).map(|b| b.quantifier)
    };
    assert_eq!(quant_of("L2"), Some(Quantifier::NotExists));
    assert_eq!(quant_of("L3"), Some(Quantifier::ForAll));
    assert_eq!(quant_of("L5"), Some(Quantifier::ForAll));
    assert_eq!(quant_of("L4"), None);
    assert_eq!(quant_of("L6"), None);
}

// ---------- widened fragment (ISSUE 4): one golden per new construct ----------

/// `JOIN … ON` desugars to the implicit form: the two syntaxes build the
/// *same* diagram, structure and rows included.
#[test]
fn join_on_golden_matches_implicit_join() {
    let explicit = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F JOIN Serves S ON F.bar = S.bar \
         WHERE S.drink = 'IPA'",
        &beers_schema(),
    )
    .unwrap();
    let implicit = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F, Serves S \
         WHERE F.bar = S.bar AND S.drink = 'IPA'",
        &beers_schema(),
    )
    .unwrap();
    assert_eq!(explicit.diagram, implicit.diagram);
    let d = &explicit.diagram;
    assert_eq!(d.tables.len(), 3); // F, S, SELECT
    assert_eq!(d.boxes.len(), 0);
    let serves = d.table_by_binding("S").unwrap();
    assert!(serves.rows.iter().any(|r| r.display() == "drink = 'IPA'"));
}

/// A negative-polarity OR splits into *sibling ∄-groups*: one dashed box
/// per disjunct, each holding its own copy of the subquery table.
#[test]
fn or_splits_into_sibling_groups_golden() {
    let qv = QueryVis::with_options(
        "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
         (SELECT * FROM Serves S WHERE S.bar = F.bar AND \
          (S.drink = 'IPA' OR S.drink = 'Stout'))",
        QueryVisOptions {
            schema: Some(beers_schema()),
            no_simplify: true,
            ..QueryVisOptions::default()
        },
    )
    .unwrap();
    let d = &qv.diagram;
    assert!(!qv.is_union(), "negative OR stays one diagram");
    // Two sibling ∄ boxes, each with one Serves table.
    assert_eq!(d.boxes.len(), 2);
    assert!(d
        .boxes
        .iter()
        .all(|b| b.quantifier == Quantifier::NotExists));
    assert!(d.boxes.iter().all(|b| b.tables.len() == 1));
    let serves: Vec<_> = d
        .tables
        .iter()
        .filter(|t| t.name.as_str() == "Serves")
        .collect();
    assert_eq!(serves.len(), 2, "one Serves copy per disjunct");
    // Each copy carries its disjunct's selection row.
    let mut selections: Vec<String> = serves
        .iter()
        .flat_map(|t| t.rows.iter())
        .filter(|r| matches!(r.kind, queryvis::diagram::RowKind::Selection { .. }))
        .map(|r| r.display())
        .collect();
    selections.sort();
    assert_eq!(selections, vec!["drink = 'IPA'", "drink = 'Stout'"]);
}

/// HAVING attaches to the grouping block: a highlighted row on the SELECT
/// table, wired to the aggregated source attribute.
#[test]
fn having_golden() {
    let qv = QueryVis::from_sql(
        "SELECT T.AlbumId, COUNT(T.TrackId) FROM Track T \
         GROUP BY T.AlbumId HAVING COUNT(T.TrackId) > 2",
    )
    .unwrap();
    let d = &qv.diagram;
    let select = &d.tables[d.select_table];
    let having_row = select
        .rows
        .iter()
        .find(|r| matches!(r.kind, queryvis::diagram::RowKind::Having { .. }))
        .expect("HAVING row on the SELECT table");
    assert_eq!(having_row.display(), "COUNT(TrackId) > 2");
    // The HAVING row connects (undirected) to the source attribute.
    let having_idx = select
        .rows
        .iter()
        .position(|r| matches!(r.kind, queryvis::diagram::RowKind::Having { .. }))
        .unwrap();
    assert!(qv
        .diagram
        .edges
        .iter()
        .any(|e| !e.directed && e.from.table == d.select_table && e.from.row == having_idx));
    // The reading reports it as a group-level condition.
    assert!(
        qv.reading()
            .contains("keeping only groups where COUNT(TrackId) > 2"),
        "{}",
        qv.reading()
    );
}

/// A 2-branch UNION compiles to one diagram per branch plus a union badge
/// in every artifact.
#[test]
fn union_two_branch_golden() {
    let qv = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' \
         UNION \
         SELECT L.person FROM Likes L WHERE L.beer = 'IPA'",
        &beers_schema(),
    )
    .unwrap();
    assert!(qv.is_union());
    assert!(!qv.union_all);
    assert_eq!(qv.diagrams().len(), 2);
    // Each branch: one base table + its own SELECT table.
    for d in qv.diagrams() {
        assert_eq!(d.tables.len(), 2);
        assert_eq!(d.boxes.len(), 0);
    }
    assert_eq!(qv.rest.len(), 1);
    assert_eq!(qv.rest[0].diagram.tables[0].name.as_str(), "Likes");
    // Badges in every artifact.
    let ascii = qv.ascii();
    assert!(ascii.contains("UNION"), "{ascii}");
    assert!(
        ascii.contains("Frequents") && ascii.contains("Likes"),
        "{ascii}"
    );
    let svg = qv.svg();
    assert_eq!(svg.matches("<svg").count(), 1, "one combined document");
    assert!(svg.contains(">UNION</text>"), "svg badge missing");
    let dot = qv.dot();
    assert!(dot.contains("label=\"UNION\""), "{dot}");
    assert!(dot.contains("cluster_branch_0") && dot.contains("cluster_branch_1"));
    // A positive-polarity OR over one table is the same pattern as the
    // equivalent written UNION (the equivalence the lowering implements).
    let by_or = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' OR F.bar = 'Tap'",
        &beers_schema(),
    )
    .unwrap();
    let by_union = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' \
         UNION SELECT F.person FROM Frequents F WHERE F.bar = 'Tap'",
        &beers_schema(),
    )
    .unwrap();
    assert_eq!(by_or.pattern(), by_union.pattern());
    // UNION ALL is a different pattern (and a different badge).
    let by_union_all = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' \
         UNION ALL SELECT F.person FROM Frequents F WHERE F.bar = 'Tap'",
        &beers_schema(),
    )
    .unwrap();
    assert_ne!(by_union.pattern(), by_union_all.pattern());
    assert!(by_union_all.ascii().contains("UNION ALL"));
}

/// The ASCII golden for Qsome (Fig. 2a) — small enough to pin exactly.
#[test]
fn fig2a_ascii_golden() {
    let qv = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F, Likes L, Serves S \
         WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink",
        &beers_schema(),
    )
    .unwrap();
    let ascii = qv.ascii();
    for expected in [
        "| SELECT",
        "| Frequents (F)",
        "| Likes (L)",
        "| Serves (S)",
        "F.person --- L.person",
        "F.bar --- S.bar",
        "L.drink --- S.drink",
        "SELECT.person --- F.person",
    ] {
        assert!(
            ascii.contains(expected),
            "missing `{expected}` in:\n{ascii}"
        );
    }
}
