//! Golden structural tests: the exact diagrams of the paper's figures.

use queryvis::corpus::{beers_schema, chinook_schema, study_questions, unique_set_sql};
use queryvis::logic::Quantifier;
use queryvis::{QueryVis, QueryVisOptions};

/// Fig. 6 shows study question Q10 in the `Both` condition; its diagram
/// contains the SELECT table (ArtistId, Name), Artist, and a dashed box
/// around {Album, Track}.
#[test]
fn fig6_q10_diagram_structure() {
    let q10 = study_questions()
        .into_iter()
        .find(|q| q.id == "Q10")
        .unwrap();
    let qv = QueryVis::with_schema(q10.sql, &chinook_schema()).unwrap();
    let d = &qv.diagram;

    // 3 base tables + SELECT.
    assert_eq!(d.tables.len(), 4);
    let select = &d.tables[d.select_table];
    let select_cols: Vec<&str> = select.rows.iter().map(|r| r.column.as_str()).collect();
    assert_eq!(select_cols, vec!["ArtistId", "Name"]);

    // One dashed box holding Album and Track together.
    assert_eq!(d.boxes.len(), 1);
    assert_eq!(d.boxes[0].quantifier, Quantifier::NotExists);
    let boxed: Vec<&str> = d.boxes[0]
        .tables
        .iter()
        .map(|&t| d.tables[t].name.as_str())
        .collect();
    assert_eq!(boxed, vec!["Album", "Track"]);

    // Artist is outside any box.
    let artist = d.table_by_alias("A").unwrap();
    assert!(d.box_of(artist.id).is_none());

    // Edges: 2 SELECT edges + 3 join predicates.
    assert_eq!(d.edges.len(), 5);
    // The A.ArtistId = AL.ArtistId join is drawn Artist → Album (Δ=1).
    let album = d.table_by_alias("AL").unwrap();
    assert!(d
        .edges
        .iter()
        .any(|e| e.directed && e.from.table == artist.id && e.to.table == album.id));
}

/// Fig. 1b's full structural census.
#[test]
fn fig1b_unique_set_census() {
    let qv = QueryVis::with_options(
        unique_set_sql(),
        QueryVisOptions {
            schema: Some(beers_schema()),
            no_simplify: true,
            ..QueryVisOptions::default()
        },
    )
    .unwrap();
    let d = &qv.diagram;
    assert_eq!(d.tables.len(), 7); // L1..L6 + SELECT
    assert_eq!(d.boxes.len(), 5); // L2..L6 each in a ∄ box
    assert_eq!(d.edges.len(), 8); // 7 joins + 1 select edge
    assert_eq!(d.edges.iter().filter(|e| e.directed).count(), 7);
    assert_eq!(d.edges.iter().filter(|e| e.label.is_some()).count(), 1);

    // Row census: L1, L2 show only `drinker`; L3..L6 show drinker + beer.
    for alias in ["L1", "L2"] {
        let t = d.table_by_binding(alias).unwrap();
        let cols: Vec<&str> = t.rows.iter().map(|r| r.column.as_str()).collect();
        assert_eq!(cols, vec!["drinker"], "{alias}");
    }
    for alias in ["L3", "L4", "L5", "L6"] {
        let t = d.table_by_binding(alias).unwrap();
        let mut cols: Vec<&str> = t.rows.iter().map(|r| r.column.as_str()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec!["beer", "drinker"], "{alias}");
    }
}

/// Fig. 12b: the simplified unique-set diagram — L3/L5 in ∀ boxes, L4/L6
/// unboxed.
#[test]
fn fig12b_simplified_unique_set() {
    let qv = QueryVis::with_schema(unique_set_sql(), &beers_schema()).unwrap();
    let d = &qv.diagram;
    assert_eq!(d.boxes.len(), 3); // L2 ∄; L3 ∀; L5 ∀
    let quant_of = |alias: &str| {
        let id = d.table_by_binding(alias).unwrap().id;
        d.box_of(id).map(|b| b.quantifier)
    };
    assert_eq!(quant_of("L2"), Some(Quantifier::NotExists));
    assert_eq!(quant_of("L3"), Some(Quantifier::ForAll));
    assert_eq!(quant_of("L5"), Some(Quantifier::ForAll));
    assert_eq!(quant_of("L4"), None);
    assert_eq!(quant_of("L6"), None);
}

/// The ASCII golden for Qsome (Fig. 2a) — small enough to pin exactly.
#[test]
fn fig2a_ascii_golden() {
    let qv = QueryVis::with_schema(
        "SELECT F.person FROM Frequents F, Likes L, Serves S \
         WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink",
        &beers_schema(),
    )
    .unwrap();
    let ascii = qv.ascii();
    for expected in [
        "| SELECT",
        "| Frequents (F)",
        "| Likes (L)",
        "| Serves (S)",
        "F.person --- L.person",
        "F.bar --- S.bar",
        "L.drink --- S.drink",
        "SELECT.person --- F.person",
    ] {
        assert!(
            ascii.contains(expected),
            "missing `{expected}` in:\n{ascii}"
        );
    }
}
