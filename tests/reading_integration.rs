//! Natural-language readings: the §4.6 reading order must produce
//! coherent interpretations for the study corpus, structurally aligned
//! with the correct MCQ answers.

use queryvis::corpus::{chinook_schema, study_questions, tutorial_examples};
use queryvis::QueryVis;

#[test]
fn readings_mention_every_table_alias() {
    let schema = chinook_schema();
    for q in study_questions() {
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        let reading = qv.reading();
        for table in qv.diagram.tables.iter().filter(|t| !t.is_select) {
            assert!(
                reading.contains(&format!(" {} in {}", table.alias, table.name)),
                "{}: reading misses {} {}\n{reading}",
                q.id,
                table.name,
                table.alias
            );
        }
    }
}

#[test]
fn readings_state_selection_constants() {
    let schema = chinook_schema();
    for q in study_questions() {
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        let reading = qv.reading();
        // Every string constant in the query must appear in the reading.
        for constant in ["'Rock'", "'Pop'", "'Michigan'", "'Jazz'", "'Carlos'"] {
            if q.sql.contains(constant) {
                assert!(
                    reading.contains(constant),
                    "{}: reading misses {constant}\n{reading}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn nested_readings_use_quantifier_phrases() {
    let schema = chinook_schema();
    for q in study_questions() {
        if q.category != queryvis::corpus::QuestionCategory::Nested {
            continue;
        }
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        let reading = qv.reading();
        assert!(
            reading.contains("there does not exist") || reading.contains("for all"),
            "{}: nested reading lacks quantifier phrases:\n{reading}",
            q.id
        );
    }
}

#[test]
fn tutorial_readings_run() {
    let schema = chinook_schema();
    for ex in tutorial_examples() {
        let qv = QueryVis::with_schema(ex.sql, &schema).unwrap();
        let reading = qv.reading();
        assert!(reading.starts_with("Return"), "page {}", ex.page);
        assert!(reading.ends_with('.'), "page {}", ex.page);
    }
}

#[test]
fn unique_set_reading_is_golden() {
    let qv = QueryVis::with_schema(
        queryvis::corpus::unique_set_sql(),
        &queryvis::corpus::beers_schema(),
    )
    .unwrap();
    let reading = qv.reading();
    // The reading must traverse L1..L6 in the paper's order.
    let mut last = 0;
    for alias in ["L1", "L2", "L3", "L4", "L5", "L6"] {
        let pos = reading
            .find(&format!(" {alias} in Likes"))
            .unwrap_or_else(|| panic!("missing {alias} in: {reading}"));
        assert!(pos > last, "{alias} out of order in: {reading}");
        last = pos;
    }
    // ∀ phrasing appears (the simplified diagram is read).
    assert!(reading.contains("for all tuples"), "{reading}");
}
