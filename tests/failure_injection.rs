//! Failure injection: everything outside the supported fragment (or
//! outside the unambiguity guarantees) must be rejected with a precise,
//! actionable error — never a panic, never a silently wrong diagram.

use queryvis::corpus::beers_schema;
use queryvis::{QueryVis, QueryVisError, QueryVisOptions};
use queryvis_logic::{translate, TranslateError};
use queryvis_sql::{parse_query, SemanticError};

fn strict(sql: &str) -> Result<QueryVis, QueryVisError> {
    QueryVis::with_options(
        sql,
        QueryVisOptions {
            strict: true,
            ..QueryVisOptions::default()
        },
    )
}

// ---------- lexical / syntactic ----------

#[test]
fn malformed_sql_catalog() {
    let cases: &[(&str, &str)] = &[
        ("", "expected `SELECT`"),
        ("SELECT", "expected"),
        ("SELECT a", "FROM"),
        ("SELECT a FROM", "table name"),
        ("SELECT a FROM t WHERE", "column reference or constant"),
        ("SELECT a FROM t WHERE a =", "column reference or constant"),
        (
            "SELECT a FROM t WHERE a = 1 AND",
            "column reference or constant",
        ),
        ("SELECT a FROM t WHERE EXISTS SELECT", "expected `(`"),
        (
            "SELECT a FROM t WHERE EXISTS (SELECT * FROM s",
            "expected `)`",
        ),
        ("SELECT a FROM t; SELECT b FROM s", "trailing"),
        ("SELECT a FROM t WHERE a = 'unterminated", "unterminated"),
        ("SELECT a FROM t WHERE a @ 1", "unexpected character"),
    ];
    for (sql, expected) in cases {
        let err = parse_query(sql).unwrap_err();
        assert!(
            err.message.contains(expected),
            "for `{sql}`: expected message containing `{expected}`, got `{}`",
            err.message
        );
    }
}

#[test]
fn out_of_fragment_constructs_have_targeted_messages() {
    let cases: &[(&str, &str)] = &[
        ("SELECT a FROM t WHERE a = 1 OR b = 2", "OR"),
        ("SELECT a FROM t JOIN s ON t.x = s.x", "JOIN"),
        ("SELECT a FROM t GROUP BY a HAVING COUNT(a) > 1", "HAVING"),
        ("SELECT a FROM t UNION SELECT b FROM s", "UNION"),
        ("SELECT DISTINCT a FROM t", "DISTINCT"),
        ("SELECT a FROM t ORDER BY a", "ORDER"),
    ];
    for (sql, token) in cases {
        let err = parse_query(sql).unwrap_err();
        assert!(
            err.message.contains(token),
            "for `{sql}`: got `{}`",
            err.message
        );
    }
}

#[test]
fn parse_errors_carry_positions() {
    let err = parse_query("SELECT a\nFROM t\nWHERE a = 1 OR b = 2").unwrap_err();
    assert_eq!(err.line, 3, "error on line 3, got {}", err.line);
    assert!(err.column > 1);
}

// ---------- semantic ----------

#[test]
fn schema_violations() {
    type Check = fn(&SemanticError) -> bool;
    let schema = beers_schema();
    let cases: &[(&str, Check)] = &[
        ("SELECT X.a FROM Nope X", |e| {
            matches!(e, SemanticError::UnknownTable { .. })
        }),
        ("SELECT Z.bar FROM Frequents F", |e| {
            matches!(e, SemanticError::UnknownBinding { .. })
        }),
        ("SELECT F.wine FROM Frequents F", |e| {
            matches!(e, SemanticError::UnknownColumn { .. })
        }),
        (
            "SELECT bar FROM Frequents F, Serves S WHERE F.bar = S.bar",
            |e| matches!(e, SemanticError::AmbiguousColumn { .. }),
        ),
        ("SELECT L.beer FROM Likes L, Serves L", |e| {
            matches!(e, SemanticError::DuplicateAlias { .. })
        }),
        ("SELECT L.beer FROM Likes L WHERE 1 = 2", |e| {
            matches!(e, SemanticError::ConstantComparison)
        }),
    ];
    for (sql, check) in cases {
        let query = parse_query(sql).unwrap();
        let err = schema.check_query(&query).unwrap_err();
        assert!(check(&err), "for `{sql}`: got {err:?}");
    }
}

// ---------- translation ----------

#[test]
fn in_subquery_with_star_rejected() {
    let q = parse_query("SELECT a FROM t WHERE t.a IN (SELECT * FROM s)").unwrap();
    assert_eq!(
        translate(&q, None).unwrap_err(),
        TranslateError::BadSubquerySelect
    );
}

#[test]
fn nested_group_by_rejected() {
    let q = parse_query("SELECT t.a FROM t WHERE EXISTS (SELECT s.x FROM s GROUP BY s.x)").unwrap();
    assert_eq!(
        translate(&q, None).unwrap_err(),
        TranslateError::NestedAggregate
    );
}

// ---------- degeneracy (strict mode) ----------

#[test]
fn smuggled_disjunction_rejected_in_strict_mode() {
    // The paper's §5.1 example: a selection predicate placed below its
    // natural scope encodes a disjunction.
    let err = strict(
        "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
         (SELECT * FROM Serves S WHERE S.bar = F.bar AND F.bar = 'Owl')",
    )
    .unwrap_err();
    assert!(matches!(err, QueryVisError::Degenerate(_)), "{err}");
}

#[test]
fn disconnected_subquery_rejected_in_strict_mode() {
    let err =
        strict("SELECT A.x FROM A WHERE NOT EXISTS (SELECT * FROM B WHERE B.y = 'z')").unwrap_err();
    assert!(matches!(err, QueryVisError::Degenerate(_)));
}

#[test]
fn depth_four_rejected_in_strict_mode() {
    let err = strict(
        "SELECT A.a FROM A WHERE NOT EXISTS( \
          SELECT * FROM B WHERE B.a = A.a AND NOT EXISTS( \
           SELECT * FROM C WHERE C.b = B.b AND NOT EXISTS( \
            SELECT * FROM D WHERE D.c = C.c AND NOT EXISTS( \
             SELECT * FROM E WHERE E.d = D.d))))",
    )
    .unwrap_err();
    assert!(matches!(err, QueryVisError::Degenerate(_)));
    // Lenient mode still draws it (depth > 3 just voids the proof).
    QueryVis::from_sql(
        "SELECT A.a FROM A WHERE NOT EXISTS( \
          SELECT * FROM B WHERE B.a = A.a AND NOT EXISTS( \
           SELECT * FROM C WHERE C.b = B.b AND NOT EXISTS( \
            SELECT * FROM D WHERE D.c = C.c AND NOT EXISTS( \
             SELECT * FROM E WHERE E.d = D.d))))",
    )
    .unwrap();
}

// ---------- robustness: no panics on adversarial input ----------

#[test]
fn no_panics_on_fuzzy_inputs() {
    let garbage = [
        "SELECT SELECT SELECT",
        "((((((((((",
        "SELECT * FROM",
        "WHERE WHERE WHERE",
        "SELECT a FROM t WHERE t.a IN IN (SELECT b FROM s)",
        "'just a string'",
        "SELECT \u{1F980} FROM t",
        "NOT NOT NOT EXISTS",
    ];
    for sql in garbage {
        // Must return an error, not panic.
        let _ = QueryVis::from_sql(sql).unwrap_err();
    }
    // An escaped quote is *valid*: `''''` is the one-character string `'`.
    QueryVis::from_sql("SELECT a FROM t WHERE a = ''''").unwrap();
}

#[test]
fn deeply_nested_input_is_handled() {
    // 12 levels of nesting: parse + translate fine, strict mode rejects.
    let mut sql = String::from("SELECT T0.a FROM T0 WHERE NOT EXISTS (");
    for i in 1..12 {
        sql.push_str(&format!(
            "SELECT * FROM T{i} WHERE T{i}.a = T{}.a AND NOT EXISTS (",
            i - 1
        ));
    }
    sql.push_str("SELECT * FROM T99 WHERE T99.a = T11.a");
    sql.push_str(&")".repeat(12));
    let qv = QueryVis::from_sql(&sql).unwrap();
    assert_eq!(qv.logic_tree.max_depth(), 12);
    assert!(matches!(
        strict(&sql).unwrap_err(),
        QueryVisError::Degenerate(_)
    ));
}
