//! Failure injection: everything outside the supported fragment (or
//! outside the unambiguity guarantees) must be rejected with a precise,
//! actionable error — never a panic, never a silently wrong diagram.

use queryvis::corpus::beers_schema;
use queryvis::{QueryVis, QueryVisError, QueryVisOptions};
use queryvis_logic::{translate, TranslateError};
use queryvis_sql::{parse_query, SemanticError};

fn strict(sql: &str) -> Result<QueryVis, QueryVisError> {
    QueryVis::with_options(
        sql,
        QueryVisOptions {
            strict: true,
            ..QueryVisOptions::default()
        },
    )
}

// ---------- lexical / syntactic ----------

#[test]
fn malformed_sql_catalog() {
    let cases: &[(&str, &str)] = &[
        ("", "expected `SELECT`"),
        ("SELECT", "expected"),
        ("SELECT a", "FROM"),
        ("SELECT a FROM", "table name"),
        ("SELECT a FROM t WHERE", "column reference or constant"),
        ("SELECT a FROM t WHERE a =", "column reference or constant"),
        (
            "SELECT a FROM t WHERE a = 1 AND",
            "column reference or constant",
        ),
        ("SELECT a FROM t WHERE EXISTS SELECT", "expected `(`"),
        (
            "SELECT a FROM t WHERE EXISTS (SELECT * FROM s",
            "expected `)`",
        ),
        ("SELECT a FROM t; SELECT b FROM s", "trailing"),
        ("SELECT a FROM t WHERE a = 'unterminated", "unterminated"),
        ("SELECT a FROM t WHERE a @ 1", "unexpected character"),
    ];
    for (sql, expected) in cases {
        let err = parse_query(sql).unwrap_err();
        assert!(
            err.message.contains(expected),
            "for `{sql}`: expected message containing `{expected}`, got `{}`",
            err.message
        );
    }
}

/// The constructs that remain outside the widened fragment must keep
/// targeted, spanned "outside the supported fragment"-style messages —
/// through `parse_query_expr` (the pipeline's entry point), so warm and
/// cold service paths reject identically (errors are never memoized).
#[test]
fn out_of_fragment_constructs_have_targeted_messages() {
    let cases: &[(&str, &str)] = &[
        ("SELECT DISTINCT a FROM t", "DISTINCT"),
        ("SELECT a FROM t ORDER BY a", "ORDER"),
        ("SELECT a FROM t LEFT JOIN s ON t.x = s.x", "outer joins"),
        ("SELECT a FROM t RIGHT JOIN s ON t.x = s.x", "outer joins"),
        (
            "SELECT a FROM t FULL OUTER JOIN s ON t.x = s.x",
            "outer joins",
        ),
        ("SELECT a FROM t CROSS JOIN s", "CROSS JOIN"),
        (
            "SELECT a FROM t JOIN s ON EXISTS (SELECT * FROM u)",
            "comparison predicates",
        ),
        ("SELECT a FROM t JOIN s ON t.x = s.x OR t.y = s.y", "OR"),
        ("SELECT a FROM t HAVING COUNT(a) > 1", "GROUP BY"),
        ("SELECT a FROM t GROUP BY a HAVING a > 1", "aggregate"),
        (
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > t.b",
            "constant",
        ),
        (
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1 OR COUNT(*) < 9",
            "OR",
        ),
        (
            "SELECT a FROM t WHERE EXISTS (SELECT b FROM s UNION SELECT c FROM u)",
            "top level",
        ),
        (
            "SELECT a FROM t UNION SELECT b FROM s UNION ALL SELECT c FROM u",
            "mixing",
        ),
        (
            "SELECT a FROM t WHERE EXISTS (SELECT * FROM s ORDER BY s.x)",
            "ORDER",
        ),
    ];
    for (sql, token) in cases {
        let err = queryvis_sql::parse_query_expr(sql).unwrap_err();
        assert!(
            err.message.contains(token),
            "for `{sql}`: got `{}`",
            err.message
        );
        // Spans must be real: every error points at a line/column.
        assert!(err.line >= 1 && err.column >= 1, "{sql}");
    }
}

/// Fragment limits enforced below the parser (lowering/translation) also
/// surface as errors through the pipeline, not panics.
#[test]
fn out_of_fragment_lowering_limits() {
    // OR that would split a grouped root block.
    let err =
        QueryVis::from_sql("SELECT T.a, COUNT(T.b) FROM T WHERE T.a = 1 OR T.b = 2 GROUP BY T.a")
            .unwrap_err();
    assert!(
        err.to_string().contains("outside the supported fragment"),
        "{err}"
    );
    // Cross-product explosion past the branch cap.
    let wide = format!(
        "SELECT T.a FROM T WHERE {}",
        (0..6)
            .map(|i| format!("(T.a{i} = 1 OR T.b{i} = 2)"))
            .collect::<Vec<_>>()
            .join(" AND ")
    );
    let err = QueryVis::from_sql(&wide).unwrap_err();
    assert!(err.to_string().contains("branches"), "{err}");
}

#[test]
fn parse_errors_carry_positions() {
    let err = parse_query("SELECT a\nFROM t\nORDER BY a").unwrap_err();
    assert_eq!(err.line, 3, "error on line 3, got {}", err.line);
    let err = parse_query("SELECT a FROM t\nLEFT JOIN s ON t.x = s.x").unwrap_err();
    assert_eq!(err.line, 2, "error on line 2, got {}", err.line);
}

// ---------- semantic ----------

#[test]
fn schema_violations() {
    type Check = fn(&SemanticError) -> bool;
    let schema = beers_schema();
    let cases: &[(&str, Check)] = &[
        ("SELECT X.a FROM Nope X", |e| {
            matches!(e, SemanticError::UnknownTable { .. })
        }),
        ("SELECT Z.bar FROM Frequents F", |e| {
            matches!(e, SemanticError::UnknownBinding { .. })
        }),
        ("SELECT F.wine FROM Frequents F", |e| {
            matches!(e, SemanticError::UnknownColumn { .. })
        }),
        (
            "SELECT bar FROM Frequents F, Serves S WHERE F.bar = S.bar",
            |e| matches!(e, SemanticError::AmbiguousColumn { .. }),
        ),
        ("SELECT L.beer FROM Likes L, Serves L", |e| {
            matches!(e, SemanticError::DuplicateAlias { .. })
        }),
        ("SELECT L.beer FROM Likes L WHERE 1 = 2", |e| {
            matches!(e, SemanticError::ConstantComparison)
        }),
    ];
    for (sql, check) in cases {
        let query = parse_query(sql).unwrap();
        let err = schema.check_query(&query).unwrap_err();
        assert!(check(&err), "for `{sql}`: got {err:?}");
    }
}

// ---------- translation ----------

#[test]
fn in_subquery_with_star_rejected() {
    let q = parse_query("SELECT a FROM t WHERE t.a IN (SELECT * FROM s)").unwrap();
    assert_eq!(
        translate(&q, None).unwrap_err(),
        TranslateError::BadSubquerySelect
    );
}

#[test]
fn nested_group_by_rejected() {
    let q = parse_query("SELECT t.a FROM t WHERE EXISTS (SELECT s.x FROM s GROUP BY s.x)").unwrap();
    assert_eq!(
        translate(&q, None).unwrap_err(),
        TranslateError::NestedAggregate
    );
}

// ---------- degeneracy (strict mode) ----------

#[test]
fn smuggled_disjunction_rejected_in_strict_mode() {
    // The paper's §5.1 example: a selection predicate placed below its
    // natural scope encodes a disjunction.
    let err = strict(
        "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
         (SELECT * FROM Serves S WHERE S.bar = F.bar AND F.bar = 'Owl')",
    )
    .unwrap_err();
    assert!(matches!(err, QueryVisError::Degenerate(_)), "{err}");
}

#[test]
fn disconnected_subquery_rejected_in_strict_mode() {
    let err =
        strict("SELECT A.x FROM A WHERE NOT EXISTS (SELECT * FROM B WHERE B.y = 'z')").unwrap_err();
    assert!(matches!(err, QueryVisError::Degenerate(_)));
}

#[test]
fn depth_four_rejected_in_strict_mode() {
    let err = strict(
        "SELECT A.a FROM A WHERE NOT EXISTS( \
          SELECT * FROM B WHERE B.a = A.a AND NOT EXISTS( \
           SELECT * FROM C WHERE C.b = B.b AND NOT EXISTS( \
            SELECT * FROM D WHERE D.c = C.c AND NOT EXISTS( \
             SELECT * FROM E WHERE E.d = D.d))))",
    )
    .unwrap_err();
    assert!(matches!(err, QueryVisError::Degenerate(_)));
    // Lenient mode still draws it (depth > 3 just voids the proof).
    QueryVis::from_sql(
        "SELECT A.a FROM A WHERE NOT EXISTS( \
          SELECT * FROM B WHERE B.a = A.a AND NOT EXISTS( \
           SELECT * FROM C WHERE C.b = B.b AND NOT EXISTS( \
            SELECT * FROM D WHERE D.c = C.c AND NOT EXISTS( \
             SELECT * FROM E WHERE E.d = D.d))))",
    )
    .unwrap();
}

// ---------- robustness: no panics on adversarial input ----------

#[test]
fn no_panics_on_fuzzy_inputs() {
    let garbage = [
        "SELECT SELECT SELECT",
        "((((((((((",
        "SELECT * FROM",
        "WHERE WHERE WHERE",
        "SELECT a FROM t WHERE t.a IN IN (SELECT b FROM s)",
        "'just a string'",
        "SELECT \u{1F980} FROM t",
        "NOT NOT NOT EXISTS",
    ];
    for sql in garbage {
        // Must return an error, not panic.
        let _ = QueryVis::from_sql(sql).unwrap_err();
    }
    // An escaped quote is *valid*: `''''` is the one-character string `'`.
    QueryVis::from_sql("SELECT a FROM t WHERE a = ''''").unwrap();
}

#[test]
fn deeply_nested_input_is_handled() {
    // 12 levels of nesting: parse + translate fine, strict mode rejects.
    let mut sql = String::from("SELECT T0.a FROM T0 WHERE NOT EXISTS (");
    for i in 1..12 {
        sql.push_str(&format!(
            "SELECT * FROM T{i} WHERE T{i}.a = T{}.a AND NOT EXISTS (",
            i - 1
        ));
    }
    sql.push_str("SELECT * FROM T99 WHERE T99.a = T11.a");
    sql.push_str(&")".repeat(12));
    let qv = QueryVis::from_sql(&sql).unwrap();
    assert_eq!(qv.logic_tree.max_depth(), 12);
    assert!(matches!(
        strict(&sql).unwrap_err(),
        QueryVisError::Degenerate(_)
    ));
}
