//! Documentation consistency: the claims made in README.md, DESIGN.md, and
//! EXPERIMENTS.md must stay true as the code evolves.

use queryvis::corpus::{pattern_grid, qualification_questions, study_questions, tutorial_examples};
use queryvis::valid_path_patterns;

#[test]
fn design_md_lists_every_crate_directory() {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("DESIGN.md present at the workspace root");
    for dir in [
        "crates/sql",
        "crates/logic",
        "crates/diagram",
        "crates/layout",
        "crates/render",
        "crates/stats",
        "crates/corpus",
        "crates/study",
        "crates/core",
        "crates/bench",
    ] {
        assert!(design.contains(dir), "DESIGN.md misses {dir}");
    }
}

#[test]
fn design_md_indexes_every_repro_target() {
    let design =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md")).unwrap();
    for target in [
        "repro fig1",
        "repro fig2",
        "repro fig7",
        "repro fig18",
        "repro fig19",
        "repro fig20",
        "repro fig21",
        "repro complexity",
        "repro power",
        "repro latin",
        "repro unambiguity",
        "repro patterns",
        "repro corpus",
        "repro funnel",
        "repro tutorial",
    ] {
        assert!(design.contains(target), "DESIGN.md misses `{target}`");
    }
}

#[test]
fn corpus_counts_match_docs() {
    assert_eq!(study_questions().len(), 12);
    assert_eq!(qualification_questions().len(), 6);
    assert_eq!(tutorial_examples().len(), 6);
    assert_eq!(pattern_grid().len(), 9);
    assert_eq!(valid_path_patterns().len(), 16);
}

#[test]
fn experiments_md_reports_all_figures() {
    let experiments =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md")).unwrap();
    for figure in [
        "Fig. 7",
        "Fig. 18",
        "Fig. 19",
        "Figs. 20/21",
        "§4.8",
        "Prop. 5.1",
        "§6.2",
    ] {
        assert!(
            experiments.contains(figure),
            "EXPERIMENTS.md misses {figure}"
        );
    }
}

#[test]
fn readme_crate_table_is_complete() {
    let readme =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md")).unwrap();
    for name in [
        "quickstart",
        "unique_set",
        "pattern_catalog",
        "study_replication",
        "chinook_gallery",
    ] {
        assert!(readme.contains(name), "README misses example `{name}`");
    }
}
