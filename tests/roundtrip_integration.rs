//! Diagram → logic-tree inverse round-trips across the corpus (the
//! executable content of Proposition 5.1).

use queryvis::corpus::{chinook_schema, study_questions, unique_set_sql, QuestionCategory};
use queryvis::diagram::build_diagram;
use queryvis::logic::translate;
use queryvis::unambiguity::random_valid_tree;
use queryvis::{recover_logic_tree, verify_path_patterns, QueryVis};
use queryvis_sql::parse_query;

#[test]
fn all_sixteen_path_patterns_are_unambiguous() {
    let results = verify_path_patterns();
    assert_eq!(results.len(), 16);
    for v in &results {
        assert!(v.unambiguous, "{:?}: {}", v.pattern.edges, v.detail);
    }
}

#[test]
fn nested_corpus_queries_roundtrip() {
    let schema = chinook_schema();
    for q in study_questions() {
        if q.category != QuestionCategory::Nested {
            continue;
        }
        let lt = translate(&parse_query(q.sql).unwrap(), Some(&schema)).unwrap();
        let recovered =
            recover_logic_tree(&build_diagram(&lt)).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        assert!(lt.structural_eq(&recovered), "{} round trip differs", q.id);
    }
}

#[test]
fn unique_set_roundtrips_through_raw_diagram() {
    let qv = QueryVis::from_sql(unique_set_sql()).unwrap();
    let recovered = recover_logic_tree(qv.raw_diagram()).unwrap();
    assert!(qv.logic_tree.structural_eq(&recovered));
}

#[test]
fn two_hundred_random_trees_roundtrip() {
    for seed in 200..400 {
        let tree = random_valid_tree(seed);
        let recovered = recover_logic_tree(&build_diagram(&tree))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(tree.structural_eq(&recovered), "seed {seed}");
    }
}
