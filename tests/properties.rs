//! Property-based tests (proptest) over the core data structures:
//! parser/printer round-trips on generated ASTs, statistics invariants,
//! and diagram/inverse invariants on generated logic trees.

use proptest::prelude::*;
use queryvis::diagram::{build_diagram, diagram_stats};
use queryvis::logic::{simplify, translate, Quantifier};
use queryvis_sql::ast::*;
use queryvis_sql::{parse_query, printer::to_sql};

// ---------- generators ----------

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        queryvis_sql::token::Keyword::lookup(s).is_none()
    })
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..100000).prop_map(|n| Value::Number(n.to_string().into())),
        "[a-zA-Z0-9 /]{1,10}".prop_map(|s| Value::Str(s.into())),
    ]
}

fn compare_op() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Ge),
        Just(CompareOp::Gt),
    ]
}

/// A random flat (conjunctive) query block over aliases T0..Tk.
fn conjunctive_query(max_tables: usize) -> impl Strategy<Value = Query> {
    (1..=max_tables, proptest::collection::vec(ident(), 1..=4)).prop_flat_map(
        move |(n_tables, columns)| {
            let aliases: Vec<String> = (0..n_tables).map(|i| format!("T{i}")).collect();
            let tables: Vec<TableRef> = aliases
                .iter()
                .enumerate()
                .map(|(i, a)| TableRef::aliased(format!("Rel{i}"), a.clone()))
                .collect();
            let col = {
                let aliases = aliases.clone();
                let columns = columns.clone();
                (0..aliases.len(), 0..columns.len())
                    .prop_map(move |(t, c)| ColumnRef::new(aliases[t].clone(), columns[c].clone()))
            };
            let predicate = prop_oneof![
                (col.clone(), compare_op(), col.clone()).prop_map(|(l, op, r)| {
                    Predicate::Compare {
                        lhs: Operand::Column(l),
                        op,
                        rhs: Operand::Column(r),
                    }
                }),
                (col.clone(), compare_op(), value()).prop_map(|(l, op, v)| {
                    Predicate::Compare {
                        lhs: Operand::Column(l),
                        op,
                        rhs: Operand::Value(v),
                    }
                }),
            ];
            (col.clone(), proptest::collection::vec(predicate, 0..5)).prop_map(
                move |(select_col, preds)| {
                    let mut q = Query::new(
                        SelectList::Items(vec![SelectItem::Column(select_col)]),
                        tables.clone(),
                    );
                    q.where_clause = preds;
                    q
                },
            )
        },
    )
}

// ---------- parser / printer ----------

/// Every name symbol of a query, resolved through `resolve`, in a fixed
/// traversal order (select list, FROM, WHERE recursive, GROUP BY).
fn resolved_names(query: &Query, resolve: &dyn Fn(queryvis_sql::Symbol) -> String) -> Vec<String> {
    fn column(
        c: &ColumnRef,
        resolve: &dyn Fn(queryvis_sql::Symbol) -> String,
        out: &mut Vec<String>,
    ) {
        if let Some(t) = c.table {
            out.push(resolve(t));
        }
        out.push(resolve(c.column));
    }
    fn operand(
        o: &Operand,
        resolve: &dyn Fn(queryvis_sql::Symbol) -> String,
        out: &mut Vec<String>,
    ) {
        match o {
            Operand::Column(c) => column(c, resolve, out),
            Operand::Value(Value::Number(s)) | Operand::Value(Value::Str(s)) => {
                out.push(resolve(*s))
            }
        }
    }
    fn walk(
        query: &Query,
        resolve: &dyn Fn(queryvis_sql::Symbol) -> String,
        out: &mut Vec<String>,
    ) {
        for item in query.select.items() {
            match item {
                SelectItem::Column(c) => column(c, resolve, out),
                SelectItem::Aggregate(agg) => {
                    if let Some(c) = &agg.arg {
                        column(c, resolve, out);
                    }
                }
            }
        }
        for table in &query.from {
            out.push(resolve(table.table));
            if let Some(alias) = table.alias {
                out.push(resolve(alias));
            }
        }
        fn pred_names(
            pred: &Predicate,
            resolve: &dyn Fn(queryvis_sql::Symbol) -> String,
            out: &mut Vec<String>,
        ) {
            match pred {
                Predicate::Compare { lhs, rhs, .. } => {
                    operand(lhs, resolve, out);
                    operand(rhs, resolve, out);
                }
                Predicate::Exists { query, .. } => walk(query, resolve, out),
                Predicate::InSubquery {
                    column: c, query, ..
                }
                | Predicate::Quantified {
                    column: c, query, ..
                } => {
                    column(c, resolve, out);
                    walk(query, resolve, out);
                }
                Predicate::Or(branches) => {
                    for branch in branches {
                        for pred in branch {
                            pred_names(pred, resolve, out);
                        }
                    }
                }
            }
        }
        for pred in &query.where_clause {
            pred_names(pred, resolve, out);
        }
        for c in &query.group_by {
            column(c, resolve, out);
        }
    }
    let mut out = Vec::new();
    walk(query, resolve, &mut out);
    out
}

/// Assert that parsing `printed` through two *fresh* interners (one of
/// them pre-polluted so id assignment orders diverge) resolves every name
/// to the same text as the global-interner parse: symbol resolution is a
/// function of the source text, never of interner history.
fn assert_symbol_resolution_stable(printed: &str) {
    let global_ast = parse_query(printed).unwrap();
    let fresh = queryvis_sql::Interner::new();
    let polluted = queryvis_sql::Interner::new();
    for i in 0..17 {
        polluted.intern(&format!("unrelated_name_{i}"));
    }
    let fresh_ast = queryvis_sql::parse_query_in(printed, &fresh).unwrap();
    let polluted_ast = queryvis_sql::parse_query_in(printed, &polluted).unwrap();
    let global_names = resolved_names(&global_ast, &|s| s.as_str().to_string());
    let fresh_names = resolved_names(&fresh_ast, &|s| fresh.resolve(s).to_string());
    let polluted_names = resolved_names(&polluted_ast, &|s| polluted.resolve(s).to_string());
    assert_eq!(
        global_names, fresh_names,
        "fresh interner diverged:\n{printed}"
    );
    assert_eq!(
        global_names, polluted_names,
        "polluted interner diverged:\n{printed}"
    );
}

proptest! {
    #[test]
    fn printer_parser_roundtrip(query in conjunctive_query(4)) {
        let printed = to_sql(&query);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(query, reparsed);
    }

    #[test]
    fn symbol_resolution_stable_across_fresh_interners(query in conjunctive_query(4)) {
        // parse(print(ast)) round-trips through interners with entirely
        // different id assignments; the resolved names must be identical.
        assert_symbol_resolution_stable(&to_sql(&query));
    }

    #[test]
    fn nested_corpus_symbol_resolution_stable(index in 0usize..39) {
        // The proptest generator is conjunctive-only; run the same
        // stability check over the (nested, grouped, quantified) paper
        // corpus so every predicate shape crosses a fresh interner.
        let corpus = queryvis_service::paper_corpus_requests(&[]);
        let request = &corpus[index % corpus.len()];
        let canonical = to_sql(&parse_query(&request.sql).unwrap());
        assert_symbol_resolution_stable(&canonical);
    }

    #[test]
    fn word_count_positive_and_stable(query in conjunctive_query(3)) {
        let w1 = queryvis_sql::metrics::word_count(&query);
        let w2 = queryvis_sql::metrics::word_count(&parse_query(&to_sql(&query)).unwrap());
        prop_assert!(w1 >= 4);
        prop_assert_eq!(w1, w2);
    }
}

// ---------- statistics ----------

proptest! {
    #[test]
    fn bh_adjustment_invariants(ps in proptest::collection::vec(0.0f64..=1.0, 1..12)) {
        let adjusted = queryvis_stats::benjamini_hochberg(&ps);
        prop_assert_eq!(adjusted.len(), ps.len());
        for (a, p) in adjusted.iter().zip(&ps) {
            prop_assert!(*a >= *p - 1e-12);
            prop_assert!(*a <= 1.0 + 1e-12);
        }
        // Monotone: smaller raw p => adjusted no larger.
        let mut pairs: Vec<(f64, f64)> =
            ps.iter().copied().zip(adjusted.iter().copied()).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
    }

    #[test]
    fn ranks_sum_invariant(data in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let ranks = queryvis_stats::ranks(&data);
        let n = data.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn wilcoxon_p_in_unit_interval(
        x in proptest::collection::vec(0.1f64..1000.0, 3..40),
    ) {
        let y: Vec<f64> = x.iter().enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { 5.0 } else { -3.0 })
            .collect();
        if let Some(r) = queryvis_stats::wilcoxon_signed_rank_less(&x, &y) {
            prop_assert!(r.p_value >= 0.0 && r.p_value <= 1.0);
        }
    }

    #[test]
    fn bootstrap_interval_ordered(
        data in proptest::collection::vec(0.0f64..100.0, 5..30),
        seed in 0u64..1000,
    ) {
        // Skip constant samples (degenerate bootstrap).
        prop_assume!(data.windows(2).any(|w| w[0] != w[1]));
        let ci = queryvis_stats::bca_interval(&data, &queryvis_stats::mean, 0.9, 200, seed);
        prop_assert!(ci.lower <= ci.upper + 1e-9);
    }

    #[test]
    fn median_is_order_statistic(data in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let m = queryvis_stats::median(&data);
        let below = data.iter().filter(|x| **x <= m + 1e-12).count();
        let above = data.iter().filter(|x| **x >= m - 1e-12).count();
        prop_assert!(below * 2 >= data.len());
        prop_assert!(above * 2 >= data.len());
    }
}

// ---------- diagrams over generated logic trees ----------

proptest! {
    #[test]
    fn diagram_counts_match_tree(seed in 0u64..500) {
        let tree = queryvis::unambiguity::random_valid_tree(seed);
        let diagram = build_diagram(&tree);
        let stats = diagram_stats(&diagram);
        // One diagram table per binding plus the SELECT table.
        let bindings = tree.bindings().count();
        prop_assert_eq!(stats.tables, bindings + 1);
        // One box per non-root ∄/∀ node.
        let boxed_nodes = tree
            .nodes()
            .filter(|n| !n.is_root() && n.quantifier != Quantifier::Exists)
            .count();
        prop_assert_eq!(stats.boxes, boxed_nodes);
        // Edges = join predicates + select edges.
        let joins: usize = tree.nodes().map(|n| n.joins().count()).sum();
        prop_assert_eq!(stats.edges, joins + tree.select.len());
    }

    #[test]
    fn simplify_never_increases_elements(seed in 0u64..500) {
        let tree = queryvis::unambiguity::random_valid_tree(seed);
        let raw = diagram_stats(&build_diagram(&tree)).visual_elements();
        let simplified = diagram_stats(&build_diagram(&simplify(&tree))).visual_elements();
        prop_assert!(simplified <= raw);
    }
}

// ---------- translation invariants ----------

proptest! {
    #[test]
    fn translation_preserves_block_counts(query in conjunctive_query(4)) {
        // Flat queries map to a single-node tree with the same table count.
        if let Ok(tree) = translate(&query, None) {
            prop_assert_eq!(tree.node_count(), 1);
            prop_assert_eq!(tree.root().tables.len(), query.from.len());
        }
    }
}

// ---------- layout over generated logic trees ----------

proptest! {
    #[test]
    fn layout_never_overlaps_tables(seed in 0u64..300) {
        let tree = queryvis::unambiguity::random_valid_tree(seed);
        let diagram = build_diagram(&tree);
        let layout =
            queryvis_layout::layout_diagram(&diagram, &queryvis_layout::LayoutOptions::default());
        for i in 0..layout.tables.len() {
            for j in (i + 1)..layout.tables.len() {
                prop_assert!(
                    !layout.tables[i].rect.intersects(&layout.tables[j].rect),
                    "seed {seed}: tables {i}/{j} overlap"
                );
            }
        }
        // Everything inside the canvas.
        for t in &layout.tables {
            prop_assert!(t.rect.x >= 0.0 && t.rect.right() <= layout.width + 1e-6);
            prop_assert!(t.rect.y >= 0.0 && t.rect.bottom() <= layout.height + 1e-6);
        }
    }

    #[test]
    fn svg_escapes_arbitrary_constants(value in "[ -~]{1,20}") {
        // Any printable-ASCII constant must yield well-formed-ish SVG.
        let escaped = value.replace('\'', "''");
        let sql = format!("SELECT B.bid FROM Boat B WHERE B.color = '{escaped}'");
        if let Ok(qv) = queryvis::QueryVis::from_sql(&sql) {
            let svg = qv.svg();
            // No raw angle brackets outside of tags: every `<` opens a
            // known element and the text content is escaped.
            prop_assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
            prop_assert!(!svg.contains("<<"));
        }
    }

    #[test]
    fn reading_order_is_a_permutation(seed in 0u64..300) {
        let tree = queryvis::unambiguity::random_valid_tree(seed);
        let diagram = build_diagram(&tree);
        let steps = queryvis::diagram::reading_order(&diagram);
        let mut seen: Vec<usize> = steps.iter().map(|s| s.table).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), diagram.tables.len() - 1);
    }

    #[test]
    fn decomposition_agrees_with_bruteforce(seed in 300u64..450) {
        let tree = queryvis::unambiguity::random_valid_tree(seed);
        let diagram = build_diagram(&tree);
        let constructive = queryvis::recovered_depth_by_binding(&diagram).unwrap();
        for node in tree.nodes() {
            for table in &node.tables {
                prop_assert_eq!(constructive[&table.key], node.depth);
            }
        }
    }
}
