//! End-to-end study simulation + analysis: the headline numbers of
//! Figs. 7/18–21 hold in shape for the canonical seed, and the whole
//! machine is deterministic.

use queryvis_study::{
    analyze, classify_participants, population::CANONICAL_SEED, simulate_study, AnalysisScope,
    Condition, ParticipantClass,
};

#[test]
fn headline_results_match_paper_shape() {
    let analysis = analyze(&simulate_study(CANONICAL_SEED), AnalysisScope::CoreNine, 7);
    // Fig. 7 shape: QV meaningfully faster with strong evidence.
    assert!(analysis.time_qv_vs_sql.percent_change <= -0.10);
    assert!(analysis.time_qv_vs_sql.p_adjusted < 0.001);
    // Both ≈ SQL on time, no evidence.
    assert!(analysis.time_both_vs_sql.percent_change.abs() < 0.10);
    assert!(analysis.time_both_vs_sql.p_adjusted > 0.05);
    // Fewer errors in both visual conditions (weak-evidence regime).
    assert!(analysis.error_qv_vs_sql.percent_change < 0.0);
    assert!(analysis.error_both_vs_sql.percent_change < 0.0);
    // Fig. 20: around 71% of participants faster with QV.
    assert!((0.55..=0.90).contains(&analysis.qv_deltas.frac_faster));
}

#[test]
fn exclusion_funnel_matches_fig18() {
    let data = simulate_study(CANONICAL_SEED);
    let classes = classify_participants(&data);
    let count = |c: ParticipantClass| classes.iter().filter(|(_, x)| *x == c).count();
    assert_eq!(count(ParticipantClass::Legitimate), 42);
    assert_eq!(count(ParticipantClass::ExcludedByCutoff), 34);
    assert_eq!(count(ParticipantClass::ExcludedManually), 4);
}

#[test]
fn latin_square_balance_in_records() {
    let data = simulate_study(CANONICAL_SEED);
    // Per participant: 4 questions per condition over the 12 questions.
    for p in &data.participants {
        let mut counts = [0usize; 3];
        for r in data.records.iter().filter(|r| r.participant == p.id) {
            counts[r.condition.index()] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
    }
    // Per question: conditions balanced across the legitimate cohort.
    for q in 1..=12 {
        let mut counts = [0usize; 3];
        for r in data
            .records
            .iter()
            .filter(|r| r.question_number == q && r.participant < 42)
        {
            counts[r.condition.index()] += 1;
        }
        assert_eq!(counts, [14, 14, 14], "question {q}");
    }
}

#[test]
fn analysis_is_deterministic() {
    let a = analyze(&simulate_study(123), AnalysisScope::CoreNine, 9);
    let b = analyze(&simulate_study(123), AnalysisScope::CoreNine, 9);
    assert_eq!(a.time_qv_vs_sql.p_adjusted, b.time_qv_vs_sql.p_adjusted);
    assert_eq!(a.sql.time_ci.lower, b.sql.time_ci.lower);
    assert_eq!(a.qv.median_time, b.qv.median_time);
}

#[test]
fn conditions_enumerate_consistently() {
    assert_eq!(Condition::from_index(0), Condition::Sql);
    assert_eq!(Condition::from_index(1), Condition::Qv);
    assert_eq!(Condition::from_index(2), Condition::Both);
}
