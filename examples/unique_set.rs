//! The paper's flagship example (Fig. 1): the *unique-set query* — find
//! drinkers who like a unique set of beers — traced through every stage of
//! the pipeline, exactly as Appendix A describes it.
//!
//! Run with: `cargo run --example unique_set`

use queryvis::corpus::{beers_schema, unique_set_sql};
use queryvis::{QueryVis, QueryVisOptions};

fn main() {
    let schema = beers_schema();

    // Stage 1: parse + validate (Fig. 8, step "Valid SQL Query").
    let qv = QueryVis::with_schema(unique_set_sql(), &schema).unwrap();
    println!("== Fig. 1a: the SQL ==\n{}\n", qv.sql);

    // Stage 2: TRC / logic tree (Figs. 9a, 10a).
    println!("== Fig. 9a: tuple relational calculus ==\n{}\n", qv.trc());
    println!("== Fig. 10a: logic tree ==\n{}", qv.logic_tree);

    // Stage 3: the optional ∀ simplification (Figs. 9b, 10b).
    println!("== Fig. 10b: simplified logic tree ==\n{}", qv.simplified);

    // Stage 4: the diagram (Figs. 1b, 12).
    println!("== Fig. 1b: the diagram ==\n{}", qv.ascii());

    // The reading order of footnote 1: L1 -> L2 -> L3 -> L4, restart L5 -> L6.
    println!("== Reading ==\n{}\n", qv.reading());

    // Both diagram variants as SVG (Fig. 12a uses the unsimplified tree).
    let raw = QueryVis::with_options(
        unique_set_sql(),
        QueryVisOptions {
            schema: Some(schema),
            no_simplify: true,
            ..QueryVisOptions::default()
        },
    )
    .unwrap();
    let dir = std::env::temp_dir();
    std::fs::write(dir.join("unique_set_fig12a.svg"), raw.svg()).unwrap();
    std::fs::write(dir.join("unique_set_fig12b.svg"), qv.svg()).unwrap();
    println!(
        "SVGs written to {} (fig12a = nested NOT-EXISTS, fig12b = with FOR-ALL)",
        dir.display()
    );

    // And the inverse: the diagram alone determines the logic tree (§5).
    let recovered = queryvis::recover_logic_tree(qv.raw_diagram()).unwrap();
    assert!(qv.logic_tree.structural_eq(&recovered));
    println!("\nInverse check: the diagram maps back to exactly one logic tree ✓");
}
