//! Appendix G: the same logical pattern recognized across schemas.
//!
//! QueryVis's central usability claim is that queries with the same
//! *logical pattern* get the same diagram, even across schemas — sailors
//! reserving only red boats, students taking only art classes, and actors
//! playing only in Hitchcock movies all look alike. This example prints
//! the 3 × 3 pattern grid of Fig. 26 and verifies the claim with the
//! canonical-pattern machinery.
//!
//! Run with: `cargo run --example pattern_catalog`

use queryvis::corpus::{pattern_grid, sailors_only_variants, PatternKind};
use queryvis::{canonical_pattern, QueryVis};
use std::collections::HashMap;

fn main() {
    let grid = pattern_grid();
    let mut by_pattern: HashMap<String, Vec<String>> = HashMap::new();

    for cell in &grid {
        let qv = QueryVis::with_schema(&cell.sql, &cell.schema).unwrap();
        println!(
            "---- {} ({:?} over {}) ----",
            cell.description, cell.kind, cell.schema.name
        );
        println!("{}", qv.ascii());
        by_pattern
            .entry(canonical_pattern(&qv.logic_tree))
            .or_default()
            .push(cell.description.clone());
    }

    println!("== Canonical pattern classes ==");
    let mut classes: Vec<(&String, &Vec<String>)> = by_pattern.iter().collect();
    classes.sort_by_key(|(k, _)| k.len());
    for (i, (_, members)) in classes.iter().enumerate() {
        println!("class {}:", i + 1);
        for m in *members {
            println!("    {m}");
        }
    }
    assert_eq!(
        by_pattern.len(),
        3,
        "the 9 queries must collapse into exactly 3 pattern classes"
    );

    // Fig. 24: syntactic variants collapse too.
    let forms: Vec<String> = sailors_only_variants()
        .iter()
        .map(|sql| canonical_pattern(&QueryVis::from_sql(sql).unwrap().logic_tree))
        .collect();
    assert!(forms.windows(2).all(|w| w[0] == w[1]));
    println!("\nFig. 24: NOT EXISTS / NOT IN / NOT = ANY all share one pattern ✓");

    let _ = PatternKind::Only; // (documented in the grid printout above)
}
