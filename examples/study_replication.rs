//! Replicate the paper's user study end to end (simulated participants).
//!
//! Simulates the 80-worker AMT study of §6 — Latin-square design,
//! speeder/cheater injection, the 30-second exclusion rule — and runs the
//! preregistered analysis: one-tailed Wilcoxon signed-rank tests with
//! Benjamini–Hochberg correction and BCa bootstrap confidence intervals.
//!
//! Run with: `cargo run --release --example study_replication [seed]`

use queryvis_study::{analyze, population::CANONICAL_SEED, simulate_study, AnalysisScope};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANONICAL_SEED);
    println!("simulating the study with seed {seed} ...");
    let data = simulate_study(seed);
    println!(
        "{} workers, {} responses recorded",
        data.participants.len(),
        data.records.len()
    );

    let analysis = analyze(&data, AnalysisScope::CoreNine, seed);
    println!(
        "\n== Main analysis (9 non-grouping questions, n = {}) ==",
        analysis.n
    );
    for summary in [&analysis.sql, &analysis.qv, &analysis.both] {
        println!(
            "  {:<5} median time {:6.1}s [{:5.1}, {:5.1}]   mean error {:.3} [{:.3}, {:.3}]",
            summary.condition.label(),
            summary.median_time,
            summary.time_ci.lower,
            summary.time_ci.upper,
            summary.mean_error,
            summary.error_ci.lower,
            summary.error_ci.upper,
        );
    }
    println!(
        "\n  time  QV   vs SQL: {:+.1}%  (adjusted p = {:.4})   [paper: -20%, p < 0.001]",
        analysis.time_qv_vs_sql.percent_change * 100.0,
        analysis.time_qv_vs_sql.p_adjusted
    );
    println!(
        "  time  Both vs SQL: {:+.1}%  (adjusted p = {:.4})   [paper:  -1%, p = 0.30]",
        analysis.time_both_vs_sql.percent_change * 100.0,
        analysis.time_both_vs_sql.p_adjusted
    );
    println!(
        "  error QV   vs SQL: {:+.1}%  (adjusted p = {:.4})   [paper: -21%, p = 0.15]",
        analysis.error_qv_vs_sql.percent_change * 100.0,
        analysis.error_qv_vs_sql.p_adjusted
    );
    println!(
        "  error Both vs SQL: {:+.1}%  (adjusted p = {:.4})   [paper: -17%, p = 0.16]",
        analysis.error_both_vs_sql.percent_change * 100.0,
        analysis.error_both_vs_sql.p_adjusted
    );
    println!(
        "\n  {:.0}% of participants were faster with QV than with SQL [paper: 71%]",
        analysis.qv_deltas.frac_faster * 100.0
    );
}
