//! Render the full study gallery: all 12 study questions and all 6
//! qualification questions of Appendices D/F as SVG diagrams over the
//! Chinook schema — the stimuli a participant in the QV condition saw.
//!
//! Run with: `cargo run --example chinook_gallery [output-dir]`

use queryvis::corpus::{chinook_schema, qualification_questions, study_questions};
use queryvis::QueryVis;
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("queryvis_gallery"));
    std::fs::create_dir_all(&out_dir).unwrap();

    let schema = chinook_schema();
    let mut written = 0;
    for q in study_questions() {
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        let path = out_dir.join(format!("study_{}.svg", q.id.to_lowercase()));
        std::fs::write(&path, qv.svg()).unwrap();
        println!(
            "{:>4} ({:?}/{:?}): {} visual elements -> {}",
            q.id,
            q.category,
            q.complexity,
            qv.stats().visual_elements(),
            path.display()
        );
        written += 1;
    }
    for q in qualification_questions() {
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        let path = out_dir.join(format!("qualification_{}.svg", q.id.to_lowercase()));
        std::fs::write(&path, qv.svg()).unwrap();
        println!("{:>4}: {}", q.id, path.display());
        written += 1;
    }
    println!("\n{written} SVGs written to {}", out_dir.display());
}
