//! Quickstart: turn a nested SQL query into a QueryVis diagram.
//!
//! Run with: `cargo run --example quickstart`

use queryvis::QueryVis;

fn main() {
    // Fig. 3b of the paper: "find persons who frequent some bar that
    // serves only drinks they like" — a correlated double-negation that is
    // notoriously hard to read as SQL.
    let sql = "SELECT F.person
FROM Frequents F
WHERE NOT EXISTS
  (SELECT *
   FROM Serves S
   WHERE S.bar = F.bar
   AND NOT EXISTS
     (SELECT L.drink
      FROM Likes L
      WHERE L.person = F.person
      AND S.drink = L.drink))";

    let qv = QueryVis::from_sql(sql).expect("query is in the supported fragment");

    println!("== SQL ==\n{sql}\n");
    println!("== Tuple relational calculus ==\n{}\n", qv.trc());
    println!(
        "== Logic tree (after the FOR-ALL simplification) ==\n{}",
        qv.simplified
    );
    println!("== Diagram ==\n{}", qv.ascii());
    println!("== Reading ==\n{}\n", qv.reading());

    let stats = qv.stats();
    println!(
        "The diagram uses {} visual elements ({} tables, {} rows, {} edges, {} boxes).",
        stats.visual_elements(),
        stats.tables,
        stats.rows,
        stats.edges,
        stats.boxes
    );

    let svg_path = std::env::temp_dir().join("queryvis_quickstart.svg");
    std::fs::write(&svg_path, qv.svg()).unwrap();
    println!("SVG written to {}", svg_path.display());
}
