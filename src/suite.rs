//! Workspace umbrella for integration tests and examples.
