//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run -p queryvis-bench --bin repro -- <target>` where
//! `<target>` is one of
//!
//! `fig1 fig2 fig5 fig7 fig18 fig19 fig20 fig21 complexity power latin
//!  unambiguity patterns corpus all`
//!
//! Each target prints the same rows/series the paper reports, computed
//! from this repository's implementation (see `EXPERIMENTS.md` for the
//! side-by-side comparison with the paper's numbers).

use queryvis::corpus::{
    beers_schema, chinook_schema, pattern_grid, qonly_sql, qsome_sql, qualification_questions,
    sailors_only_variants, study_questions, unique_set_sql,
};
use queryvis::diagram::diagram_stats;
use queryvis::{canonical_pattern, verify_path_patterns, QueryVis, QueryVisOptions};
use queryvis_bench::{banner, fmt_ci, fmt_ci3, fmt_p, fmt_pct, text_histogram};
use queryvis_sql::metrics::word_count;
use queryvis_study::{
    analyze, classify_participants, exclusion::scatter_points, model::ParticipantKind,
    pilot_power_estimate, population::CANONICAL_SEED, simulate_pilot, simulate_study,
    AnalysisScope, ParticipantClass, StudyAnalysis,
};

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match target.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig18" => fig18(),
        "fig19" => fig19(),
        "fig20" => fig20(),
        "fig21" => fig21(),
        "complexity" => complexity(),
        "power" => power(),
        "latin" => latin(),
        "unambiguity" => unambiguity(),
        "patterns" => patterns(),
        "corpus" => corpus(),
        "tutorial" => tutorial(),
        "funnel" => funnel(),
        "all" => {
            fig1();
            fig2();
            fig5();
            complexity();
            latin();
            power();
            unambiguity();
            patterns();
            tutorial();
            funnel();
            corpus();
            fig18();
            fig7();
            fig19();
            fig20();
            fig21();
        }
        other => {
            eprintln!(
                "unknown target `{other}`; expected one of: fig1 fig2 fig5 fig7 fig18 \
                 fig19 fig20 fig21 complexity power latin unambiguity patterns corpus tutorial funnel all"
            );
            std::process::exit(2);
        }
    }
}

/// Fig. 1 (and Figs. 9–12): the unique-set query end to end.
fn fig1() {
    println!("{}", banner("Fig. 1 / Figs. 9-12: the unique-set query"));
    let qv = QueryVis::with_schema(unique_set_sql(), &beers_schema()).unwrap();
    println!("--- SQL (Fig. 1a) ---\n{}", qv.sql);
    println!("\n--- TRC (Fig. 9a) ---\n{}", qv.trc());
    println!("\n--- Logic tree (Fig. 10a) ---\n{}", qv.logic_tree);
    println!(
        "--- Simplified logic tree (Fig. 10b) ---\n{}",
        qv.simplified
    );
    println!("--- Diagram (Fig. 1b / Fig. 12b) ---\n{}", qv.ascii());
    println!("--- Reading order (footnote 1) ---\n{}", qv.reading());
    qv.check_unambiguous().unwrap();
    println!("\nunambiguity: non-degenerate, depth <= 3: diagram provably unambiguous");
}

/// Fig. 2: the three reference diagrams of §4.8.
fn fig2() {
    println!("{}", banner("Fig. 2: Qsome / Qonly diagrams"));
    let schema = beers_schema();
    let some = QueryVis::with_schema(qsome_sql(), &schema).unwrap();
    println!("--- (a) Qsome, conjunctive ---\n{}", some.ascii());
    let only_raw = QueryVis::with_options(
        qonly_sql(),
        QueryVisOptions {
            schema: Some(schema.clone()),
            no_simplify: true,
            ..QueryVisOptions::default()
        },
    )
    .unwrap();
    println!(
        "--- (b) Qonly with nested NOT-EXISTS ---\n{}",
        only_raw.ascii()
    );
    let only = QueryVis::with_schema(qonly_sql(), &schema).unwrap();
    println!(
        "--- (c) Qonly with the FOR-ALL simplification ---\n{}",
        only.ascii()
    );
}

/// Fig. 5: logic-tree rendering of the unique-set query.
fn fig5() {
    println!("{}", banner("Fig. 5: logic tree of the unique-set query"));
    let qv = QueryVis::with_schema(unique_set_sql(), &beers_schema()).unwrap();
    println!("{}", qv.logic_tree);
}

fn print_study(analysis: &StudyAnalysis, paper: &[&str]) {
    println!("n = {} legitimate participants", analysis.n);
    println!("\ncondition   median time/question       mean error/question");
    for summary in [&analysis.sql, &analysis.qv, &analysis.both] {
        println!(
            "{:<10}  {:<25}  {}",
            summary.condition.label(),
            fmt_ci(&summary.time_ci),
            fmt_ci3(&summary.error_ci),
        );
    }
    println!("\nhypothesis                 measured              paper");
    let rows = [
        ("time:  QV   < SQL", analysis.time_qv_vs_sql),
        ("time:  Both < SQL", analysis.time_both_vs_sql),
        ("error: QV   < SQL", analysis.error_qv_vs_sql),
        ("error: Both < SQL", analysis.error_both_vs_sql),
    ];
    for ((label, h), paper_val) in rows.iter().zip(paper) {
        println!(
            "{label}    {:>7} ({:<10})  {paper_val}",
            fmt_pct(h.percent_change),
            fmt_p(h.p_adjusted),
        );
    }
    println!(
        "\nShapiro-Wilk on raw times (SQL, QV, Both): p = {:.4}, {:.4}, {:.4} \
         -> non-normal, non-parametric tests justified",
        analysis.shapiro_time_p[0], analysis.shapiro_time_p[1], analysis.shapiro_time_p[2]
    );
}

/// Fig. 7: the main study result over the 9 non-grouping questions.
fn fig7() {
    println!(
        "{}",
        banner("Fig. 7: study results, 9 questions (simulated study)")
    );
    let analysis = analyze(&simulate_study(CANONICAL_SEED), AnalysisScope::CoreNine, 7);
    print_study(
        &analysis,
        &[
            "-20%  (p < 0.001)",
            " -1%  (p = 0.30)",
            "-21%  (p = 0.15)",
            "-17%  (p = 0.16)",
        ],
    );
    println!(
        "\nper-participant QV - SQL:  mean dt = {:.1}s (paper -17.3s), median dt = {:.1}s \
         (paper -19.7s), {:.0}% faster with QV (paper 71%)",
        analysis.qv_deltas.mean_time_delta,
        analysis.qv_deltas.median_time_delta,
        analysis.qv_deltas.frac_faster * 100.0
    );
}

/// Fig. 18: the exclusion scatter.
fn fig18() {
    println!(
        "{}",
        banner("Fig. 18: speeders & cheaters among all 80 participants")
    );
    let data = simulate_study(CANONICAL_SEED);
    let points = scatter_points(&data);
    println!("participant  mean t/q   mistakes  class               ground truth");
    for p in &points {
        println!(
            "{:>11}  {:>8.1}  {:>8}  {:<18}  {:?}",
            p.participant,
            p.mean_time,
            p.mistakes,
            format!("{:?}", p.class),
            p.true_kind
        );
    }
    let classes = classify_participants(&data);
    let count = |c: ParticipantClass| classes.iter().filter(|(_, x)| *x == c).count();
    println!(
        "\nfunnel: {} legitimate (paper 42), {} excluded by the 30s rule (paper 34), \
         {} excluded manually (paper 4)",
        count(ParticipantClass::Legitimate),
        count(ParticipantClass::ExcludedByCutoff),
        count(ParticipantClass::ExcludedManually)
    );
    let misclassified = points
        .iter()
        .filter(|p| {
            (p.true_kind == ParticipantKind::Legitimate)
                != (p.class == ParticipantClass::Legitimate)
        })
        .count();
    println!("misclassified vs ground truth: {misclassified}");
}

/// Fig. 19: study results over all 12 questions.
fn fig19() {
    println!(
        "{}",
        banner("Fig. 19: study results, all 12 questions (incl. GROUP BY)")
    );
    let analysis = analyze(
        &simulate_study(CANONICAL_SEED),
        AnalysisScope::AllTwelve,
        19,
    );
    print_study(
        &analysis,
        &[
            "-23%  (p < 0.001)",
            " -5%  (p = 0.35)",
            "-23%  (p = 0.06)",
            "-12%  (p = 0.16)",
        ],
    );
}

fn deltas(scope: AnalysisScope, title: &str, paper: &str) {
    println!("{}", banner(title));
    let analysis = analyze(&simulate_study(CANONICAL_SEED), scope, 20);
    let d = &analysis.qv_deltas;
    println!("QV - SQL time differences (seconds):\n");
    println!("{}", text_histogram(&d.time_deltas, 10, 40));
    println!(
        "mean dt = {:.1}s, median dt = {:.1}s, {:.0}% faster with QV / {:.0}% faster with SQL",
        d.mean_time_delta,
        d.median_time_delta,
        d.frac_faster * 100.0,
        (1.0 - d.frac_faster) * 100.0
    );
    println!("\nQV - SQL error-rate differences:\n");
    println!("{}", text_histogram(&d.error_deltas, 7, 40));
    println!(
        "{:.0}% fewer errors with QV / {:.0}% more / {:.0}% same",
        d.frac_fewer_errors * 100.0,
        d.frac_more_errors * 100.0,
        d.frac_same_errors * 100.0
    );
    println!("\npaper: {paper}");
}

/// Fig. 20: per-participant differences, 9 questions.
fn fig20() {
    deltas(
        AnalysisScope::CoreNine,
        "Fig. 20: QV - SQL per-participant differences (9 questions)",
        "mean dt = -17.3s, median dt = -19.7s, 71%/29% faster; errors 36%/26%/38%",
    );
}

/// Fig. 21: per-participant differences, 12 questions.
fn fig21() {
    deltas(
        AnalysisScope::AllTwelve,
        "Fig. 21: QV - SQL per-participant differences (12 questions)",
        "mean dt = -21.0s, median dt = -17.5s, 76%/24% faster; errors 40%/29%/31%",
    );
}

/// §4.8: the visual-complexity vs word-count comparison.
fn complexity() {
    println!("{}", banner("Section 4.8: minimal visual complexity"));
    let schema = beers_schema();
    let some = QueryVis::with_schema(qsome_sql(), &schema).unwrap();
    let only_raw = QueryVis::with_options(
        qonly_sql(),
        QueryVisOptions {
            schema: Some(schema.clone()),
            no_simplify: true,
            ..QueryVisOptions::default()
        },
    )
    .unwrap();
    let only = QueryVis::with_schema(qonly_sql(), &schema).unwrap();

    let s_some = diagram_stats(&some.diagram);
    let s_raw = diagram_stats(&only_raw.diagram);
    let s_simpl = diagram_stats(&only.diagram);
    let w_some = word_count(&some.query);
    let w_only = word_count(&only.query);

    println!("diagram                 elements   vs Qsome   paper");
    println!(
        "Qsome   (Fig. 2a)       {:>8}       --        --",
        s_some.visual_elements()
    );
    println!(
        "Qonly ne (Fig. 2b)      {:>8}   {:>8}   +13%",
        s_raw.visual_elements(),
        fmt_pct(s_raw.increase_over(&s_some))
    );
    println!(
        "Qonly fa (Fig. 2c)      {:>8}   {:>8}   +7%",
        s_simpl.visual_elements(),
        fmt_pct(s_simpl.increase_over(&s_some))
    );
    println!(
        "\nSQL text words: Qsome = {w_some}, Qonly = {w_only} ({} — paper reports +167% \
         with its own word-counting convention; direction and 'much wordier' shape hold)",
        fmt_pct((w_only as f64 - w_some as f64) / w_some as f64)
    );
}

/// §6.2: the pilot power analysis.
fn power() {
    println!(
        "{}",
        banner("Section 6.2: power analysis on the n = 12 pilot")
    );
    let estimate = pilot_power_estimate(&simulate_pilot(CANONICAL_SEED));
    println!(
        "pilot means: SQL = {:.1}s, QV = {:.1}s, pooled sd = {:.1}s",
        estimate.mean_sql, estimate.mean_qv, estimate.pooled_sd
    );
    println!(
        "one-tailed, alpha = 5%, power = 90%: n = {} per group -> {} total, \
         rounded up to a multiple of 6: n = {}   (paper: n = 84)",
        estimate.required_per_group, estimate.required_total, estimate.rounded_total
    );
}

/// §6.1: the Latin-square design.
fn latin() {
    println!(
        "{}",
        banner("Section 6.1: Latin-square condition sequences")
    );
    let labels = ["SQL", "QV", "Both"];
    for (i, seq) in queryvis_stats::condition_sequences().iter().enumerate() {
        let names: Vec<&str> = seq.iter().map(|&c| labels[c]).collect();
        println!("S{}: {}", i + 1, names.join(" -> "));
    }
    println!("\nround-robin over 42 participants: 7 per sequence;");
    println!("each participant sees each condition 3x over 9 questions (4x over 12).");
}

/// §5 / Appendix B: Proposition 5.1.
fn unambiguity() {
    println!(
        "{}",
        banner("Prop. 5.1 / Appendix B: unambiguity verification")
    );
    let results = verify_path_patterns();
    println!("all 16 valid depth-3 path patterns:");
    for v in &results {
        let edges: Vec<String> = v.pattern.edges.iter().map(|e| format!("{e:?}")).collect();
        println!(
            "  family {:<7} edges {{{}}}: {}",
            v.pattern.family,
            edges.join(","),
            if v.unambiguous { "unique ok" } else { "FAILED" }
        );
    }
    let ok = results.iter().filter(|v| v.unambiguous).count();
    println!("\n{ok}/16 path patterns recover a unique logic tree");

    let mut roundtrips = 0;
    for seed in 0..200 {
        let tree = queryvis::unambiguity::random_valid_tree(seed);
        let diagram = queryvis::diagram::build_diagram(&tree);
        if let Ok(recovered) = queryvis::recover_logic_tree(&diagram) {
            if tree.structural_eq(&recovered) {
                roundtrips += 1;
            }
        }
    }
    println!("{roundtrips}/200 random non-degenerate branching trees round-trip uniquely");
}

/// Appendix G: the pattern grid.
fn patterns() {
    println!(
        "{}",
        banner("Appendix G / Figs. 23-26: logical patterns across schemas")
    );
    let grid = pattern_grid();
    println!("pattern x schema -> canonical form (identical within a row):\n");
    for kind in [
        queryvis::corpus::PatternKind::No,
        queryvis::corpus::PatternKind::Only,
        queryvis::corpus::PatternKind::All,
    ] {
        let row: Vec<&queryvis::corpus::PatternQuery> =
            grid.iter().filter(|q| q.kind == kind).collect();
        let forms: Vec<String> = row
            .iter()
            .map(|q| {
                let qv = QueryVis::with_schema(&q.sql, &q.schema).unwrap();
                canonical_pattern(&qv.logic_tree)
            })
            .collect();
        let all_equal = forms.windows(2).all(|w| w[0] == w[1]);
        println!(
            "{:?}: {} | {} | {}  -> identical: {}",
            kind, row[0].schema.name, row[1].schema.name, row[2].schema.name, all_equal
        );
    }
    println!("\nFig. 24: three syntactic variants of 'only red boats':");
    let forms: Vec<String> = sailors_only_variants()
        .iter()
        .map(|sql| {
            let qv = QueryVis::from_sql(sql).unwrap();
            canonical_pattern(&qv.logic_tree)
        })
        .collect();
    println!(
        "NOT EXISTS == NOT IN == NOT =ANY : {}",
        forms[0] == forms[1] && forms[1] == forms[2]
    );
}

/// Appendix D/F: the study corpus summary.
fn corpus() {
    println!("{}", banner("Appendix D/F: study corpus"));
    let schema = chinook_schema();
    println!("12 study questions:");
    for q in study_questions() {
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        let stats = qv.stats();
        println!(
            "  {:>3}  {:<12} {:<8}  words={:>3}  elements={:>3}",
            q.id,
            format!("{:?}", q.category),
            format!("{:?}", q.complexity),
            word_count(&qv.query),
            stats.visual_elements()
        );
    }
    println!("\n6 qualification questions (pass: >= 4 correct):");
    for q in qualification_questions() {
        let qv = QueryVis::with_schema(q.sql, &schema).unwrap();
        println!(
            "  {:>3}  words={:>3}  elements={:>3}",
            q.id,
            word_count(&qv.query),
            qv.stats().visual_elements()
        );
    }
}

// ---- appended targets ----

/// Appendix E: the six tutorial examples, rendered.
fn tutorial() {
    println!("{}", banner("Appendix E: the 6-example tutorial"));
    let schema = chinook_schema();
    for ex in queryvis::corpus::tutorial_examples() {
        let qv = QueryVis::with_options(
            ex.sql,
            QueryVisOptions {
                schema: Some(schema.clone()),
                no_simplify: !ex.uses_forall,
                ..QueryVisOptions::default()
            },
        )
        .unwrap();
        println!("--- page {}: {} ---", ex.page, ex.title);
        println!("{}", qv.ascii());
        println!("interpretation: {}\n", ex.interpretation);
    }
}

/// §6.1: the recruitment funnel (710 → 114 → 80 → 42).
fn funnel() {
    println!("{}", banner("Section 6.1: recruitment funnel"));
    let q = queryvis_study::simulate_qualification(CANONICAL_SEED, 710);
    println!(
        "qualification: {} attempted -> {} passed (paper: 710 -> 114), {} started the study",
        q.attempted, q.passed, q.started
    );
    let data = simulate_study(CANONICAL_SEED);
    let classes = classify_participants(&data);
    let legit = classes
        .iter()
        .filter(|(_, c)| *c == ParticipantClass::Legitimate)
        .count();
    println!(
        "study: {} started -> {} legitimate after exclusion (paper: 80 -> 42)",
        data.participants.len(),
        legit
    );
}
