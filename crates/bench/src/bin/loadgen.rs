//! `loadgen` — open-loop load generator and soak runner for the TCP
//! front end.
//!
//! Spawns a release-mode `server` subprocess and drives it through three
//! phases:
//!
//! 1. **Soak.** `--conns` persistent connections each send requests at a
//!    fixed open-loop rate: request *i* is scheduled at `start + i/rate`
//!    and latency is measured **from the scheduled send time**, so a
//!    stalled server inflates the recorded tail instead of silently
//!    pausing the load (no coordinated omission). The query mix repeats
//!    texts (L1 memo hits) and varies constants within a pattern (L2
//!    cache hits), and a `stats` op at the end asserts both tiers
//!    actually absorbed the load.
//! 2. **Drain.** With requests still in flight, one control connection
//!    sends `{"op":"shutdown"}`; the server must answer everything it
//!    accepted, report `dropped == 0`, and exit 0.
//! 3. **Restart.** A fresh server — warmed from the snapshot the soak
//!    server wrote at drain (`--snapshot`) — serves a verification batch
//!    and drains cleanly again. The batch must be **entirely warm**: the
//!    pre/post `stats` delta shows zero compiles (every pattern came back
//!    from the snapshot) and every request resolved through the L1 memo
//!    or the L2 pattern cache.
//!
//! Gates (exit 1 on violation): p99 ≤ `--p99-ms`, p999 ≤ `--p999-ms`,
//! zero client-visible errors, both drain reports `dropped == 0`, L1 and
//! L2 hits observed, and a compile-free first pass after restart. The
//! full machine-readable result is written to `--report` (default
//! `SOAK_report.json`).
//!
//! ```text
//! Usage: loadgen [--server PATH] [--duration-secs N] [--rate N]
//!                [--conns N] [--p99-ms N] [--p999-ms N] [--report PATH]
//!                [--snapshot PATH]
//! ```

use queryvis_bench::harness::{percentile_ns, Conn, ServerProcess};
use queryvis_service::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Cli {
    server_bin: String,
    duration: Duration,
    rate_per_conn: u64,
    conns: usize,
    p99_ms: u64,
    p999_ms: u64,
    report: String,
    snapshot: String,
    /// Explicit `--snapshot` paths are kept; the default temp path is
    /// deleted on exit.
    keep_snapshot: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        server_bin: "target/release/server".to_string(),
        duration: Duration::from_secs(6),
        rate_per_conn: 150,
        conns: 4,
        p99_ms: 50,
        p999_ms: 250,
        report: "SOAK_report.json".to_string(),
        snapshot: std::env::temp_dir()
            .join(format!("loadgen-snapshot-{}.sql", std::process::id()))
            .to_string_lossy()
            .into_owned(),
        keep_snapshot: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{name} needs an unsigned integer"))
        };
        match arg.as_str() {
            "--server" => cli.server_bin = args.next().ok_or("--server needs a path")?,
            "--duration-secs" => cli.duration = Duration::from_secs(number("--duration-secs")?),
            "--rate" => cli.rate_per_conn = number("--rate")?.max(1),
            "--conns" => cli.conns = number("--conns")?.max(1) as usize,
            "--p99-ms" => cli.p99_ms = number("--p99-ms")?,
            "--p999-ms" => cli.p999_ms = number("--p999-ms")?,
            "--report" => cli.report = args.next().ok_or("--report needs a path")?,
            "--snapshot" => {
                cli.snapshot = args.next().ok_or("--snapshot needs a path")?;
                cli.keep_snapshot = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

/// The soak query mix: index → request SQL. Every text repeats across the
/// run (L1 memo hits after first use); constants vary within one pattern
/// every `PATTERN_SPREAD` requests (L1 miss → L2 pattern hit).
const PATTERN_SPREAD: u64 = 16;

fn query_for(seq: u64) -> String {
    match seq % 4 {
        0 => "SELECT T.a FROM T WHERE T.a = 1".to_string(),
        1 => "SELECT F.person FROM Frequents F, Likes L WHERE F.person = L.person".to_string(),
        2 => format!(
            "SELECT T.a FROM T WHERE T.a = {} AND T.b = 7",
            seq % PATTERN_SPREAD
        ),
        _ => "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
              (SELECT S.bar FROM Serves S WHERE S.bar = F.bar)"
            .to_string(),
    }
}

struct ConnOutcome {
    sent: u64,
    responses: u64,
    errors: u64,
    /// Wire failures after shutdown began (server gone mid-send/read).
    cut_off: u64,
    latencies_ns: Vec<u64>,
}

/// One soak connection: open-loop sender + reader on the same thread pair.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: std::net::SocketAddr,
    conn_idx: usize,
    rate: u64,
    duration: Duration,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
) -> Result<ConnOutcome, String> {
    let conn = Conn::open(addr)?;
    let mut writer = conn.stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = conn.reader;
    let start = Instant::now();
    let interval = Duration::from_nanos(1_000_000_000 / rate);
    let planned = (duration.as_nanos() / interval.as_nanos()) as u64;

    let sent = Arc::new(AtomicU64::new(0));
    let sender_sent = Arc::clone(&sent);
    let sender_stop = Arc::clone(&stop);
    let sender = std::thread::spawn(move || -> u64 {
        use std::io::Write as _;
        let mut cut_off = 0;
        for seq in 0..planned {
            let scheduled = start + interval * (seq as u32);
            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            if sender_stop.load(Ordering::Acquire) {
                break;
            }
            let id = (conn_idx as u64) << 32 | seq;
            let line = format!("{{\"id\":{id},\"sql\":\"{}\"}}\n", query_for(seq));
            if writer.write_all(line.as_bytes()).is_err() {
                cut_off += 1;
                break; // server drained away mid-soak
            }
            sender_sent.fetch_add(1, Ordering::Release);
        }
        cut_off
    });

    // Reader: latency is measured against the *scheduled* send time of
    // the id, reconstructed from the sequence number — open-loop.
    let mut outcome = ConnOutcome {
        sent: 0,
        responses: 0,
        errors: 0,
        cut_off: 0,
        latencies_ns: Vec::with_capacity(planned as usize),
    };
    loop {
        let mut line = String::new();
        use std::io::BufRead as _;
        match reader.read_line(&mut line) {
            Ok(0) => break, // server closed (drain): remaining were never accepted
            Ok(_) => {
                let now = Instant::now();
                let parsed = queryvis_service::json::parse(line.trim())
                    .map_err(|e| format!("bad response: {e}: {line}"))?;
                outcome.responses += 1;
                if parsed.get("error").is_some() {
                    // Draining refusals are orderly; anything else is a
                    // soak failure.
                    let kind = parsed.get("error_kind").and_then(Json::as_str);
                    if kind != Some("draining") && !draining.load(Ordering::Acquire) {
                        outcome.errors += 1;
                    }
                } else if let Some(id) = parsed.get("id").and_then(Json::as_u64) {
                    let seq = id & 0xffff_ffff;
                    let scheduled = start + interval * (seq as u32);
                    let latency = now.saturating_duration_since(scheduled);
                    outcome.latencies_ns.push(latency.as_nanos() as u64);
                }
                if outcome.responses >= sent.load(Ordering::Acquire)
                    && sender.is_finished()
                    && outcome.responses >= sent.load(Ordering::Acquire)
                {
                    break;
                }
            }
            Err(_) => break, // reset during drain
        }
    }
    outcome.cut_off = sender.join().map_err(|_| "sender panicked".to_string())?;
    outcome.sent = sent.load(Ordering::Acquire);
    Ok(outcome)
}

/// Both phases pass `--snapshot`: the soak server *writes* the warm set
/// at drain, the restart server *reads* it back at startup.
fn spawn_server(bin: &str, snapshot: &str) -> Result<ServerProcess, String> {
    ServerProcess::spawn(
        bin,
        &[
            "--addr",
            "127.0.0.1:0",
            "--max-conns",
            "64",
            "--drain-grace-ms",
            "1000",
            "--stats",
            "--snapshot",
            snapshot,
        ],
        &[],
    )
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    let mut gate_failures: Vec<String> = Vec::new();

    // ---- Phase 1: soak ----
    let server = match spawn_server(&cli.server_bin, &cli.snapshot) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    let addr = server.addr;
    eprintln!(
        "loadgen: soaking {addr} for {:?} at {}/s × {} conns",
        cli.duration, cli.rate_per_conn, cli.conns
    );
    let stop = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..cli.conns)
        .map(|conn_idx| {
            let stop = Arc::clone(&stop);
            let draining = Arc::clone(&draining);
            let duration = cli.duration;
            let rate = cli.rate_per_conn;
            std::thread::spawn(move || {
                drive_connection(addr, conn_idx, rate, duration, stop, draining)
            })
        })
        .collect();

    // Mid-soak shutdown: at 80% of the duration, with requests still in
    // flight, begin the drain. Everything accepted must still be answered.
    std::thread::sleep(cli.duration.mul_f64(0.8));
    let control = (|| -> Result<Json, String> {
        let mut control = Conn::open(addr)?;
        let stats = control.rpc("{\"op\":\"stats\"}")?;
        draining.store(true, Ordering::Release);
        let ack = control.rpc("{\"op\":\"shutdown\"}")?;
        if ack.get("draining") != Some(&Json::Bool(true)) {
            return Err(format!("bad shutdown ack: {ack}"));
        }
        Ok(stats)
    })();
    let stats = match control {
        Ok(stats) => Some(stats),
        Err(message) => {
            gate_failures.push(format!("control connection: {message}"));
            None
        }
    };

    let mut sent = 0u64;
    let mut responses = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for worker in workers {
        match worker.join().expect("soak worker panicked") {
            Ok(outcome) => {
                sent += outcome.sent;
                responses += outcome.responses;
                errors += outcome.errors;
                latencies.extend(outcome.latencies_ns);
            }
            Err(message) => gate_failures.push(format!("soak connection: {message}")),
        }
    }
    stop.store(true, Ordering::Release);

    let drain1 = match server.wait_for_drain() {
        Ok((exit_ok, report)) => {
            if !exit_ok {
                gate_failures.push("soak server exited nonzero".to_string());
            }
            if report.get("dropped").and_then(Json::as_u64) != Some(0) {
                gate_failures.push(format!("soak drain dropped requests: {report}"));
            }
            Some(report)
        }
        Err(message) => {
            gate_failures.push(format!("soak drain: {message}"));
            None
        }
    };

    // ---- Latency gates (coordinated-omission-free percentiles) ----
    latencies.sort_unstable();
    let p50 = percentile_ns(&latencies, 0.50);
    let p99 = percentile_ns(&latencies, 0.99);
    let p999 = percentile_ns(&latencies, 0.999);
    eprintln!(
        "loadgen: {} responses / {} sent, p50 {:.2}ms p99 {:.2}ms p999 {:.2}ms",
        responses,
        sent,
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6
    );
    if latencies.is_empty() {
        gate_failures.push("no latencies recorded".to_string());
    }
    if p99 > cli.p99_ms * 1_000_000 {
        gate_failures.push(format!("p99 {:.2}ms > {}ms", p99 as f64 / 1e6, cli.p99_ms));
    }
    if p999 > cli.p999_ms * 1_000_000 {
        gate_failures.push(format!(
            "p999 {:.2}ms > {}ms",
            p999 as f64 / 1e6,
            cli.p999_ms
        ));
    }
    if errors > 0 {
        gate_failures.push(format!("{errors} error responses during soak"));
    }

    // ---- Cache/memo assertions from the stats op ----
    let mut l1_hits = 0u64;
    let mut l2_hits = 0u64;
    if let Some(stats) = &stats {
        let service = stats.get("service");
        l1_hits = service
            .and_then(|s| s.get("l1_hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        l2_hits = service
            .and_then(|s| s.get("cache"))
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if l1_hits == 0 {
            gate_failures.push("no L1 memo hits under a repeating mix".to_string());
        }
        if l2_hits == 0 {
            gate_failures.push("no L2 cache hits under a pattern-varying mix".to_string());
        }
        let panics = service
            .and_then(|s| s.get("panics_caught"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if panics > 0 {
            gate_failures.push(format!("{panics} compile panics during soak"));
        }
    }

    // ---- Phase 3: restart warm from the drain snapshot and verify ----
    let drain2 = (|| -> Result<Json, String> {
        let server = spawn_server(&cli.server_bin, &cli.snapshot)?;
        let mut conn = Conn::open(server.addr)?;
        // Pre-batch stats: whatever the snapshot warm-up compiled is the
        // baseline; the verification batch itself must compile nothing.
        let service_counter = |stats: &Json, path: &[&str]| -> u64 {
            let mut value = stats.get("service");
            for key in path {
                value = value.and_then(|v| v.get(key));
            }
            value.and_then(Json::as_u64).unwrap_or(0)
        };
        let before = conn.rpc("{\"op\":\"stats\"}")?;
        if service_counter(&before, &["compiles"]) == 0 {
            server.kill();
            return Err(format!(
                "snapshot warm-up compiled nothing — snapshot {} missing or empty",
                cli.snapshot
            ));
        }
        for id in 0..32u64 {
            let response = conn.rpc(&format!("{{\"id\":{id},\"sql\":\"{}\"}}", query_for(id)))?;
            if response.get("artifacts").is_none() {
                server.kill();
                return Err(format!("restart verification failed: {response}"));
            }
        }
        // The warm-restart gate: first post-restart pass is all cache.
        let after = conn.rpc("{\"op\":\"stats\"}")?;
        let compiled =
            service_counter(&after, &["compiles"]) - service_counter(&before, &["compiles"]);
        if compiled != 0 {
            server.kill();
            return Err(format!(
                "{compiled} cold compiles after restart — snapshot warm-up must cover the mix"
            ));
        }
        let warm_hits = service_counter(&after, &["l1_hits"])
            + service_counter(&after, &["cache", "hits"])
            - service_counter(&before, &["l1_hits"])
            - service_counter(&before, &["cache", "hits"]);
        if warm_hits < 32 {
            server.kill();
            return Err(format!(
                "only {warm_hits} warm hits for a 32-request post-restart batch"
            ));
        }
        let ack = conn.rpc("{\"op\":\"shutdown\"}")?;
        if ack.get("draining") != Some(&Json::Bool(true)) {
            server.kill();
            return Err(format!("bad restart shutdown ack: {ack}"));
        }
        let (exit_ok, report) = server.wait_for_drain()?;
        if !exit_ok {
            return Err("restarted server exited nonzero".to_string());
        }
        if report.get("dropped").and_then(Json::as_u64) != Some(0) {
            return Err(format!("restart drain dropped requests: {report}"));
        }
        Ok(report)
    })();
    let drain2 = match drain2 {
        Ok(report) => Some(report),
        Err(message) => {
            gate_failures.push(format!("restart phase: {message}"));
            None
        }
    };

    // ---- Machine-readable report ----
    let pass = gate_failures.is_empty();
    let report = Json::Obj(vec![
        ("pass".to_string(), Json::Bool(pass)),
        (
            "config".to_string(),
            Json::Obj(vec![
                (
                    "duration_secs".to_string(),
                    Json::Int(cli.duration.as_secs()),
                ),
                ("rate_per_conn".to_string(), Json::Int(cli.rate_per_conn)),
                ("conns".to_string(), Json::Int(cli.conns as u64)),
                ("p99_gate_ms".to_string(), Json::Int(cli.p99_ms)),
                ("p999_gate_ms".to_string(), Json::Int(cli.p999_ms)),
            ]),
        ),
        (
            "soak".to_string(),
            Json::Obj(vec![
                ("sent".to_string(), Json::Int(sent)),
                ("responses".to_string(), Json::Int(responses)),
                ("errors".to_string(), Json::Int(errors)),
                ("p50_ns".to_string(), Json::Int(p50)),
                ("p99_ns".to_string(), Json::Int(p99)),
                ("p999_ns".to_string(), Json::Int(p999)),
                ("l1_hits".to_string(), Json::Int(l1_hits)),
                ("l2_hits".to_string(), Json::Int(l2_hits)),
            ]),
        ),
        ("drain".to_string(), drain1.clone().unwrap_or(Json::Null)),
        (
            "restart_drain".to_string(),
            drain2.clone().unwrap_or(Json::Null),
        ),
        (
            "gate_failures".to_string(),
            Json::Arr(gate_failures.iter().map(|m| Json::Str(m.clone())).collect()),
        ),
    ]);
    if !cli.keep_snapshot {
        let _ = std::fs::remove_file(&cli.snapshot);
    }
    if let Err(e) = std::fs::write(&cli.report, format!("{report}\n")) {
        eprintln!("loadgen: cannot write {}: {e}", cli.report);
        std::process::exit(2);
    }
    println!("{report}");
    if !pass {
        for failure in &gate_failures {
            eprintln!("loadgen: GATE FAIL {failure}");
        }
        std::process::exit(1);
    }
    eprintln!("loadgen: all gates green ({} samples)", latencies.len());
}
