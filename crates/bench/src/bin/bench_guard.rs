//! `bench_guard` — the CI bench-regression gate.
//!
//! Compares a freshly generated `BENCH_service.json` against a committed
//! baseline and fails (exit 1) if any guarded row's `per_iter_ns` regressed
//! by more than the allowed fraction. Guarded rows are the warm-path
//! contract of the serving layer (`warm_hit`, `warm_l1_hit`, `warm_batch`,
//! the shared-scene `warm_multiformat` rows, the eviction-policy replay
//! rows, and the incremental-session `keystroke` rows); cold rows are
//! reported but not gated — they are compile-bound and noisy on shared CI
//! hardware. (The *relative* keystroke contract — edit p99 < cold p50 —
//! is asserted inside the bench itself, where both sides share a run.)
//!
//! Beyond per-row latency, three structural gates:
//!
//! * **hit-rate floor** — any row carrying a `hit_rate` in the baseline
//!   must stay within 0.02 of it (the traces are seeded, so a drop means
//!   the eviction policy changed behavior, not the hardware);
//! * **ARC ≥ LRU** — within the *current* run, each policy trace's `arc`
//!   row must hit at least as often as its `lru_ref` row (the
//!   scan-resistance contract of the ARC cache);
//! * **thread-scaling ratio** — current `warm_batch/4_threads` must cost
//!   ≤ 1.25 × `warm_batch/1_threads` per iteration: workers are clamped
//!   to hardware parallelism, so even a single-CPU host must not pay the
//!   old oversubscription penalty (~2×), and a regression here means a
//!   lock or shared cache line crept back into the warm batch path.
//!
//! ```text
//! Usage: bench_guard <current.json> <baseline.json> [--max-regression 0.30]
//! ```
//!
//! Caveats, by design:
//!
//! * the committed baseline is quick-mode numbers from the development
//!   host; CI hardware differs, so the threshold is deliberately loose
//!   (30%) and gates *relative* regressions of the same binary shape, not
//!   absolute latency;
//! * an intentional perf trade (or a baseline refresh after a hardware
//!   change) ships by updating `.github/bench-baseline.json` in the same
//!   PR, or by labeling the PR `bench-baseline-reset`, which skips this
//!   gate (see `.github/workflows/ci.yml`).

use queryvis_service::json::{self, Json};
use std::process::ExitCode;

/// Row-name substrings that are gated. Everything else is informational.
const GUARDED: [&str; 7] = [
    "warm_hit",
    "warm_batch",
    "warm_l1_hit",
    "warm_multiformat",
    "zipfian_skew",
    "hot_scan",
    "keystroke",
];

/// Absolute hit-rate slack against the baseline. The replay traces are
/// seeded and deterministic, so this only absorbs float printing — a real
/// policy change moves hit rates by far more.
const HIT_RATE_SLACK: f64 = 0.02;

/// Ceiling on current `warm_batch/4_threads` ÷ `warm_batch/1_threads`.
const WARM_BATCH_THREAD_RATIO: f64 = 1.25;

struct Row {
    name: String,
    per_iter_ns: f64,
    hit_rate: Option<f64>,
}

fn load_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = value
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing `rows` array"))?;
    rows.iter()
        .map(|row| {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: row without a `name`"))?
                .to_string();
            let per_iter_ns = match row.get("per_iter_ns") {
                Some(Json::Num(n)) => *n,
                Some(Json::Int(n)) => *n as f64,
                _ => return Err(format!("{path}: row {name} without `per_iter_ns`")),
            };
            // Optional: only the eviction-policy rows carry one (absent
            // entirely in baselines that predate the field).
            let hit_rate = match row.get("hit_rate") {
                Some(Json::Num(n)) => Some(*n),
                Some(Json::Int(n)) => Some(*n as f64),
                _ => None,
            };
            Ok(Row {
                name,
                per_iter_ns,
                hit_rate,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.30f64;
    let mut files: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                max_regression = match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(v) if v > 0.0 => v,
                    _ => {
                        eprintln!("bench_guard: --max-regression needs a positive number");
                        return ExitCode::from(2);
                    }
                };
            }
            other => files.push(other),
        }
        i += 1;
    }
    let [current_path, baseline_path] = files.as_slice() else {
        eprintln!("Usage: bench_guard <current.json> <baseline.json> [--max-regression 0.30]");
        return ExitCode::from(2);
    };
    let (current, baseline) = match (load_rows(current_path), load_rows(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut guarded_seen = 0usize;
    println!(
        "{:<45} {:>12} {:>12} {:>8}  gate",
        "row", "baseline ns", "current ns", "delta"
    );
    for base in &baseline {
        let Some(cur) = current.iter().find(|r| r.name == base.name) else {
            // A *guarded* row disappearing is a failure: the gate must not
            // silently pass because the bench stopped measuring it.
            if GUARDED.iter().any(|g| base.name.contains(g)) {
                println!("{:<45} guarded row missing from current results", base.name);
                failures += 1;
            }
            continue;
        };
        let delta = if base.per_iter_ns > 0.0 {
            cur.per_iter_ns / base.per_iter_ns - 1.0
        } else {
            0.0
        };
        let guarded = GUARDED.iter().any(|g| base.name.contains(g));
        let failed = guarded && delta > max_regression;
        if guarded {
            guarded_seen += 1;
        }
        if failed {
            failures += 1;
        }
        println!(
            "{:<45} {:>12.0} {:>12.0} {:>+7.1}%  {}",
            base.name,
            base.per_iter_ns,
            cur.per_iter_ns,
            delta * 100.0,
            if failed {
                "FAIL"
            } else if guarded {
                "ok"
            } else {
                "info"
            }
        );
        // Hit-rate floor: deterministic seeded traces, so any drop beyond
        // slack is a behavioral change in the eviction policy.
        if let (Some(base_rate), Some(cur_rate)) = (base.hit_rate, cur.hit_rate) {
            if cur_rate < base_rate - HIT_RATE_SLACK {
                println!(
                    "{:<45} hit rate {cur_rate:.4} fell below baseline {base_rate:.4} - {HIT_RATE_SLACK}",
                    base.name
                );
                failures += 1;
            }
        }
    }

    // ARC ≥ LRU within the current run: each policy trace's real-cache
    // row must hit at least as often as its same-geometry LRU reference.
    for trace in ["zipfian_skew", "hot_scan"] {
        let rate_of = |suffix: &str| {
            current
                .iter()
                .find(|r| r.name == format!("service/{trace}/{suffix}"))
                .and_then(|r| r.hit_rate)
        };
        match (rate_of("arc"), rate_of("lru_ref")) {
            (Some(arc), Some(lru)) => {
                if arc < lru {
                    println!("service/{trace}: arc hit rate {arc:.4} below lru reference {lru:.4}");
                    failures += 1;
                } else {
                    println!(
                        "service/{trace}: arc hit rate {arc:.4} >= lru reference {lru:.4}  ok"
                    );
                }
            }
            _ => {
                println!("service/{trace}: arc/lru_ref hit-rate pair missing from current results");
                failures += 1;
            }
        }
    }

    // Thread-scaling ratio: the N-thread warm batch must not re-grow the
    // oversubscription penalty the worker clamp removed.
    {
        let per_iter_of = |name: &str| {
            current
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.per_iter_ns)
        };
        match (
            per_iter_of("service/warm_batch/1_threads"),
            per_iter_of("service/warm_batch/4_threads"),
        ) {
            (Some(one), Some(four)) if one > 0.0 => {
                let ratio = four / one;
                if ratio > WARM_BATCH_THREAD_RATIO {
                    println!(
                        "warm_batch 4_threads/1_threads ratio {ratio:.2} exceeds \
                         {WARM_BATCH_THREAD_RATIO} — the batch path re-serialized"
                    );
                    failures += 1;
                } else {
                    println!(
                        "warm_batch 4_threads/1_threads ratio {ratio:.2} <= \
                         {WARM_BATCH_THREAD_RATIO}  ok"
                    );
                }
            }
            _ => {
                println!("warm_batch thread-ratio pair missing from current results");
                failures += 1;
            }
        }
    }
    if guarded_seen == 0 {
        eprintln!("bench_guard: baseline contains no guarded rows (warm_hit/warm_batch)");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_guard: {failures} gate failure(s) — latency regression beyond {:.0}%, \
             hit-rate drop, or thread-scaling breach \
             (refresh .github/bench-baseline.json or label the PR \
             `bench-baseline-reset` if intentional)",
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_guard: all guarded rows within {:.0}% of baseline",
        max_regression * 100.0
    );
    ExitCode::SUCCESS
}
