//! `faultgen` — the fault-injection suite for the TCP front end.
//!
//! Spawns a **release-mode** `server` subprocess with tight budgets and an
//! armed compile-panic token, then drives every fault class the server
//! promises to survive, asserting a structured error (right `error_kind`)
//! and continued liveness after each:
//!
//! 1. malformed frames           → `bad_request`, connection survives
//! 2. oversized lines            → `too_large`, stream recovers
//! 3. byte-at-a-time slow writes → `timeout` (slowloris disconnect)
//! 4. half-closed sockets        → every buffered response delivered
//! 5. mid-request disconnects    → server unaffected
//! 6. connection floods          → `overloaded` sheds past the limit
//! 7. injected compile panics    → `panic`, one request only
//! 8. session faults             → oversized edits refused `too_large`
//!    with the session intact; a mid-edit disconnect reaps the owner's
//!    sessions
//!
//! Ends with a graceful shutdown and asserts the drain report exists and
//! the process exits 0. Prints one PASS/FAIL line per class to stderr and
//! a machine-readable summary line to stdout; exit 1 on any failure.
//!
//! ```text
//! Usage: faultgen [--server PATH]      [default: target/release/server]
//! ```

use queryvis_bench::harness::{error_kind, Conn, ServerProcess};
use queryvis_service::json::Json;
use std::io::Write as _;
use std::net::Shutdown;
use std::time::Duration;

const PANIC_TOKEN: &str = "Faultgen_Poison_xyzzy";

struct Suite {
    failures: Vec<String>,
    passed: u32,
}

impl Suite {
    fn class(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => {
                self.passed += 1;
                eprintln!("faultgen: PASS {name}");
            }
            Err(message) => {
                eprintln!("faultgen: FAIL {name}: {message}");
                self.failures.push(format!("{name}: {message}"));
            }
        }
    }
}

fn expect_kind(response: &Json, kind: &str) -> Result<(), String> {
    match error_kind(response) {
        Some(k) if k == kind => Ok(()),
        other => Err(format!(
            "expected error_kind `{kind}`, got {other:?}: {response}"
        )),
    }
}

fn expect_ok(response: &Json) -> Result<(), String> {
    if response.get("artifacts").is_some() {
        Ok(())
    } else {
        Err(format!("expected a successful response, got {response}"))
    }
}

fn liveness(conn: &mut Conn) -> Result<(), String> {
    expect_ok(&conn.rpc("{\"id\":999,\"sql\":\"SELECT T.a FROM T\"}")?)
}

fn malformed_frames(conn: &mut Conn) -> Result<(), String> {
    expect_kind(&conn.rpc("{{{garbage")?, "bad_request")?;
    expect_kind(&conn.rpc("{\"sql\":42}")?, "bad_request")?;
    expect_kind(&conn.rpc("{\"op\":\"reboot\"}")?, "bad_request")?;
    expect_kind(
        &conn.rpc("{\"id\":1,\"sql\":\"SELECT T.a FROM T\",\"formats\":[\"gif\"]}")?,
        "bad_request",
    )?;
    liveness(conn)
}

fn oversized_lines(conn: &mut Conn) -> Result<(), String> {
    let huge = format!(
        "{{\"id\":1,\"sql\":\"SELECT T.a FROM T WHERE T.a = {}\"}}",
        "9".repeat(256 * 1024)
    );
    expect_kind(&conn.rpc(&huge)?, "too_large")?;
    liveness(conn)
}

fn slow_writes(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut conn = Conn::open(addr)?;
    // Trickle partial-line bytes slower than the read deadline tolerates.
    for &byte in b"{\"id\":1,\"sql\":\"SELECT ".iter().cycle().take(60) {
        if conn.stream.write_all(&[byte]).is_err() {
            break; // server already gave up on us — expected
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // Either the classified timeout line survived the teardown, or the
    // connection is already closed; a *hang* here is the failure mode.
    match conn.read_json() {
        Ok(Some(response)) => expect_kind(&response, "timeout"),
        Ok(None) => Ok(()),
        Err(_) => Ok(()), // reset mid-teardown: still a disconnect, not a hang
    }
}

fn half_close(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut conn = Conn::open(addr)?;
    for id in 0..5 {
        conn.send_line(&format!("{{\"id\":{id},\"sql\":\"SELECT T.a FROM T\"}}"))?;
    }
    conn.stream
        .shutdown(Shutdown::Write)
        .map_err(|e| format!("half-close: {e}"))?;
    for id in 0..5 {
        let response = conn
            .read_json()?
            .ok_or_else(|| format!("EOF before response {id}"))?;
        expect_ok(&response)?;
    }
    match conn.read_json()? {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected extra line after drain: {extra}")),
    }
}

fn mid_request_disconnect(addr: std::net::SocketAddr) -> Result<(), String> {
    for _ in 0..10 {
        let mut conn = Conn::open(addr)?;
        let _ = conn.stream.write_all(b"{\"id\":1,\"sql\":\"SELECT T.");
        // Dropped with a partial request in flight.
    }
    for _ in 0..10 {
        let mut conn = Conn::open(addr)?;
        let _ = conn
            .stream
            .write_all(b"{\"id\":2,\"sql\":\"SELECT T.a FROM T\"}\n");
        let _ = conn.stream.shutdown(Shutdown::Both);
        // Vanished right after a complete request, never reading.
    }
    liveness_with_retry(addr)
}

/// Liveness probe that tolerates transient `overloaded` sheds while slots
/// vacated by deliberately-killed connections are still being reaped.
fn liveness_with_retry(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut last = String::new();
    for _ in 0..50 {
        let mut conn = Conn::open(addr)?;
        let response = conn.rpc("{\"id\":999,\"sql\":\"SELECT T.a FROM T\"}")?;
        if response.get("artifacts").is_some() {
            return Ok(());
        }
        if error_kind(&response) != Some("overloaded") {
            return Err(format!("expected a successful response, got {response}"));
        }
        last = response.to_string();
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!("still overloaded after retries: {last}"))
}

fn connection_flood(addr: std::net::SocketAddr, max_conns: usize) -> Result<(), String> {
    // Let connections from earlier fault classes finish dying first.
    std::thread::sleep(Duration::from_millis(300));
    // Hold the admission budget open with live connections; a slot still
    // occupied by a dying connection sheds us, so retry briefly.
    let mut held = Vec::new();
    let mut attempts = 0;
    while held.len() < max_conns {
        attempts += 1;
        if attempts > 50 {
            return Err(format!("only held {}/{max_conns} slots", held.len()));
        }
        let mut conn = Conn::open(addr)?;
        let response = conn.rpc("{\"id\":999,\"sql\":\"SELECT T.a FROM T\"}")?;
        if response.get("artifacts").is_some() {
            held.push(conn); // slot established, not queued
        } else if error_kind(&response) == Some("overloaded") {
            std::thread::sleep(Duration::from_millis(100));
        } else {
            return Err(format!("unexpected response holding a slot: {response}"));
        }
    }
    // …then flood: every extra connection must be shed with one
    // structured line, not queued indefinitely.
    let mut sheds = 0;
    for _ in 0..8 {
        let mut conn = Conn::open(addr)?;
        // EOF or reset means we raced a closing slot: acceptable.
        if let Ok(Some(response)) = conn.read_json() {
            expect_kind(&response, "overloaded")?;
            sheds += 1;
        }
    }
    if sheds < 6 {
        return Err(format!("only {sheds}/8 flood connections were shed"));
    }
    drop(held);
    std::thread::sleep(Duration::from_millis(200));
    let mut conn = Conn::open(addr)?;
    liveness(&mut conn)
}

fn injected_panic(conn: &mut Conn) -> Result<(), String> {
    let poisoned = format!(
        "{{\"id\":1,\"sql\":\"SELECT P.a FROM {PANIC_TOKEN} P WHERE P.a = 1 AND P.b = 2\"}}"
    );
    expect_kind(&conn.rpc(&poisoned)?, "panic")?;
    liveness(conn)?;
    let stats = conn.rpc("{\"op\":\"stats\"}")?;
    let caught = stats
        .get("service")
        .and_then(|s| s.get("panics_caught"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if caught == 0 {
        return Err(format!("panics_caught not incremented: {stats}"));
    }
    Ok(())
}

/// Session fault classes: the incremental-session layer must enforce its
/// per-session source budget with a structured refusal (buffer and
/// session untouched), and must reap a session whose owning connection
/// vanishes mid-edit — leaving the id dead for everyone else.
fn session_faults(addr: std::net::SocketAddr) -> Result<(), String> {
    // -- Oversized edit payload. Each 40 KiB insert fits the 64 KiB frame
    // limit; the first fits the session budget too (and merely fails to
    // compile — the buffer keeps the bytes), the second would cross the
    // budget and must be refused atomically.
    let mut conn = Conn::open(addr)?;
    let opened = conn.rpc("{\"op\":\"open\",\"id\":1,\"sql\":\"SELECT T.a FROM T\"}")?;
    let sid = opened
        .get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("open did not return a session: {opened}"))?;
    let chunk = "x".repeat(40 * 1024);
    let grow = format!(
        "{{\"op\":\"edit\",\"session\":{sid},\"edits\":[{{\"at\":0,\"ins\":\"{chunk}\"}}]}}"
    );
    expect_kind(&conn.rpc(&grow)?, "compile")?;
    expect_kind(&conn.rpc(&grow)?, "too_large")?;
    // The session survived the refusal: deleting the garbage restores a
    // compiling buffer on the same id.
    let fix = format!(
        "{{\"op\":\"edit\",\"session\":{sid},\"edits\":[{{\"at\":0,\"del\":{}}}]}}",
        40 * 1024
    );
    let fixed = conn.rpc(&fix)?;
    if fixed.get("fingerprint").is_none() {
        return Err(format!(
            "session did not survive the oversized edit: {fixed}"
        ));
    }

    // -- Mid-edit disconnect: the owner dies with an edit frame
    // half-written.
    let doomed_sid;
    {
        let mut doomed = Conn::open(addr)?;
        let opened = doomed.rpc("{\"op\":\"open\",\"id\":2,\"sql\":\"SELECT T.b FROM T\"}")?;
        doomed_sid = opened
            .get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("open did not return a session: {opened}"))?;
        let partial = format!("{{\"op\":\"edit\",\"session\":{doomed_sid},\"edits\":[{{\"at\":0,");
        let _ = doomed.stream.write_all(partial.as_bytes());
        let _ = doomed.stream.shutdown(Shutdown::Both);
    }
    // Reaping rides connection teardown; poll the stats op briefly.
    let mut reaped = false;
    for _ in 0..20 {
        let stats = conn.rpc("{\"op\":\"stats\"}")?;
        let n = stats
            .get("sessions")
            .and_then(|s| s.get("reaped"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if n >= 1 {
            reaped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !reaped {
        return Err("disconnected owner's session was never reaped".to_string());
    }
    // The reaped id is dead — and owner-scoped anyway.
    let stale = format!("{{\"op\":\"edit\",\"session\":{doomed_sid},\"edits\":[]}}");
    expect_kind(&conn.rpc(&stale)?, "bad_request")?;
    let closed = conn.rpc(&format!("{{\"op\":\"close\",\"session\":{sid}}}"))?;
    if closed.get("closed") != Some(&Json::Bool(true)) {
        return Err(format!("close failed after the fault cases: {closed}"));
    }
    liveness(&mut conn)
}

fn main() {
    let mut server_bin = "target/release/server".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => {
                server_bin = args.next().unwrap_or_else(|| {
                    eprintln!("faultgen: --server needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("faultgen: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    const MAX_CONNS: usize = 4;
    let server = match ServerProcess::spawn(
        &server_bin,
        &[
            "--addr",
            "127.0.0.1:0",
            "--max-conns",
            "4",
            "--max-line",
            "65536",
            "--read-deadline-ms",
            "400",
            "--write-stall-ms",
            "2000",
            "--drain-grace-ms",
            "500",
            "--stats",
        ],
        &[("QUERYVIS_FAULT_COMPILE_PANIC", PANIC_TOKEN)],
    ) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("faultgen: {message}");
            std::process::exit(2);
        }
    };
    let addr = server.addr;
    eprintln!("faultgen: server at {addr}");

    let mut suite = Suite {
        failures: Vec::new(),
        passed: 0,
    };
    // One persistent connection proves per-class survival *and* overall
    // connection reuse across fault classes.
    match Conn::open(addr) {
        Ok(mut conn) => {
            suite.class("malformed_frames", malformed_frames(&mut conn));
            suite.class("oversized_lines", oversized_lines(&mut conn));
            suite.class("injected_panic", injected_panic(&mut conn));
            drop(conn);
        }
        Err(message) => suite.class("persistent_connection", Err(message)),
    }
    suite.class("slow_writes", slow_writes(addr));
    suite.class("half_close", half_close(addr));
    suite.class("mid_request_disconnect", mid_request_disconnect(addr));
    suite.class("session_faults", session_faults(addr));
    suite.class("connection_flood", connection_flood(addr, MAX_CONNS));

    // Graceful shutdown: the server must ack, drain, report, and exit 0.
    let shutdown = (|| -> Result<(), String> {
        let mut conn = Conn::open(addr)?;
        liveness(&mut conn)?;
        let ack = conn.rpc("{\"op\":\"shutdown\"}")?;
        if ack.get("draining") != Some(&Json::Bool(true)) {
            return Err(format!("bad shutdown ack: {ack}"));
        }
        Ok(())
    })();
    suite.class("shutdown_ack", shutdown);

    match server.wait_for_drain() {
        Ok((exit_ok, report)) => {
            let dropped = report.get("dropped").and_then(Json::as_u64);
            let drain = if !exit_ok {
                Err("server exited nonzero".to_string())
            } else if dropped != Some(0) {
                Err(format!("drain dropped requests: {report}"))
            } else {
                Ok(())
            };
            suite.class("graceful_drain", drain);
            eprintln!("faultgen: drain report {report}");
        }
        Err(message) => suite.class("graceful_drain", Err(message)),
    }

    let failed = suite.failures.len();
    println!(
        "{{\"faultgen\":{{\"passed\":{},\"failed\":{failed}}}}}",
        suite.passed
    );
    if failed > 0 {
        eprintln!("faultgen: {failed} class(es) failed");
        std::process::exit(1);
    }
    eprintln!("faultgen: all {} classes green", suite.passed);
}
