//! Shared plumbing for the serving-layer harnesses (`loadgen`, the soak
//! runner, and `faultgen`, the fault-injection client): spawn a real
//! `server` binary as a subprocess, learn its bound address from the
//! `{"listening":"…"}` startup line, talk JSON lines to it, and collect
//! its drain report on exit.

use queryvis_service::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A running `server` subprocess under harness control.
pub struct ServerProcess {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    pub addr: SocketAddr,
}

impl ServerProcess {
    /// Spawn `binary` with `args` (the harness always binds port 0) and
    /// wait for the startup line. `envs` lets the fault suite arm the
    /// compile-panic hook.
    pub fn spawn(
        binary: &str,
        args: &[&str],
        envs: &[(&str, &str)],
    ) -> Result<ServerProcess, String> {
        let mut command = Command::new(binary);
        command
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in envs {
            command.env(key, value);
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("cannot spawn {binary}: {e}"))?;
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout
            .read_line(&mut line)
            .map_err(|e| format!("no startup line: {e}"))?;
        let parsed =
            json::parse(line.trim()).map_err(|e| format!("bad startup line `{line}`: {e}"))?;
        let addr = parsed
            .get("listening")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("startup line lacks `listening`: {line}"))?
            .parse::<SocketAddr>()
            .map_err(|e| format!("bad listening address: {e}"))?;
        Ok(ServerProcess {
            child,
            stdout,
            addr,
        })
    }

    /// Wait for exit and return (exit-ok, drain report) — the report is
    /// the `{"drain_report":…}` line the binary prints while draining.
    pub fn wait_for_drain(mut self) -> Result<(bool, Json), String> {
        let mut report = None;
        let mut line = String::new();
        loop {
            line.clear();
            match self.stdout.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if let Ok(parsed) = json::parse(line.trim()) {
                        if let Some(r) = parsed.get("drain_report") {
                            report = Some(r.clone());
                        }
                    }
                }
                Err(_) => break,
            }
        }
        let status = self
            .child
            .wait()
            .map_err(|e| format!("server wait failed: {e}"))?;
        let report = report.ok_or_else(|| "server printed no drain report".to_string())?;
        Ok((status.success(), report))
    }

    /// Force-kill (cleanup on harness failure paths).
    pub fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One JSON-lines connection with a split reader.
pub struct Conn {
    pub stream: TcpStream,
    pub reader: BufReader<TcpStream>,
}

impl Conn {
    pub fn open(addr: SocketAddr) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("read timeout: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(Conn { stream, reader })
    }

    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    }

    /// Read one response line; `Ok(None)` is EOF.
    pub fn read_json(&mut self) -> Result<Option<Json>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => json::parse(line.trim())
                .map(Some)
                .map_err(|e| format!("bad response line `{line}`: {e}")),
            Err(e) => Err(format!("read: {e}")),
        }
    }

    pub fn rpc(&mut self, line: &str) -> Result<Json, String> {
        self.send_line(line)?;
        self.read_json()?
            .ok_or_else(|| "connection closed mid-rpc".to_string())
    }
}

/// The `error_kind` of a response line, if it is an error.
pub fn error_kind(response: &Json) -> Option<&str> {
    response.get("error_kind").and_then(Json::as_str)
}

/// Percentile from a sorted slice of nanosecond latencies (nearest-rank).
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}
