//! # queryvis-bench
//!
//! Shared helpers for the figure-reproduction harness (`repro` binary) and
//! the Criterion benchmarks. See `DESIGN.md` §2 for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod harness;

use queryvis_stats::BootstrapInterval;
use std::fmt::Write as _;

/// Format a bootstrap interval as `estimate [lower, upper]`.
pub fn fmt_ci(ci: &BootstrapInterval) -> String {
    format!("{:.1} [{:.1}, {:.1}]", ci.estimate, ci.lower, ci.upper)
}

/// Format a bootstrap interval with more precision (error rates).
pub fn fmt_ci3(ci: &BootstrapInterval) -> String {
    format!("{:.3} [{:.3}, {:.3}]", ci.estimate, ci.lower, ci.upper)
}

/// Format a proportion as a percentage with sign, e.g. `-20.3%`.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

/// Format a p-value the way the paper reports them.
pub fn fmt_p(p: f64) -> String {
    if p < 0.001 {
        "p < 0.001".to_string()
    } else {
        format!("p = {p:.2}")
    }
}

/// A crude text histogram (one row per bucket) used for the Fig. 20/21
/// difference distributions.
pub fn text_histogram(values: &[f64], buckets: usize, width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let idx = (((v - min) / span) * buckets as f64).floor() as usize;
        counts[idx.min(buckets - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &count) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / buckets as f64;
        let hi = min + span * (i + 1) as f64 / buckets as f64;
        let bar_len = (count * width).div_ceil(peak);
        let bar: String = std::iter::repeat_n('#', bar_len).collect();
        let _ = writeln!(out, "{lo:>8.1} .. {hi:>7.1} | {bar} {count}");
    }
    out
}

/// Section header for harness output.
pub fn banner(title: &str) -> String {
    format!(
        "\n================================================================\n\
         {title}\n\
         ================================================================"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_formatting() {
        assert_eq!(fmt_p(0.0001), "p < 0.001");
        assert_eq!(fmt_p(0.30), "p = 0.30");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(-0.2), "-20.0%");
        assert_eq!(fmt_pct(0.013), "+1.3%");
    }

    #[test]
    fn histogram_counts_everything() {
        let values = vec![-3.0, -1.0, 0.0, 1.0, 2.0, 2.5];
        let hist = text_histogram(&values, 4, 20);
        let total: usize = hist
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, values.len());
    }
}
