//! Criterion benchmarks for every pipeline stage (parse → translate →
//! simplify → diagram → layout → SVG) on three reference workloads:
//! the small conjunctive Qsome (Fig. 3a), the depth-3 unique-set query
//! (Fig. 1a), and the widest study stimulus (Q3, 10 tables).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use queryvis::corpus::{chinook_schema, study_questions, unique_set_sql};
use queryvis::QueryVis;
use queryvis_diagram::build_diagram;
use queryvis_layout::{layout_diagram, LayoutOptions};
use queryvis_logic::{simplify, translate};
use queryvis_render::{render_svg, to_dot};
use queryvis_sql::parse_query;

fn workloads() -> Vec<(&'static str, String)> {
    let q3 = study_questions()
        .into_iter()
        .find(|q| q.id == "Q3")
        .unwrap();
    vec![
        (
            "qsome",
            "SELECT F.person FROM Frequents F, Likes L, Serves S \
             WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink"
                .to_string(),
        ),
        ("unique_set", unique_set_sql().to_string()),
        ("study_q3", q3.sql.to_string()),
    ]
}

fn bench_stages(c: &mut Criterion) {
    for (name, sql) in workloads() {
        let ast = parse_query(&sql).unwrap();
        let schema = chinook_schema();
        let schema_opt = if name == "study_q3" {
            Some(&schema)
        } else {
            None
        };
        let lt = translate(&ast, schema_opt).unwrap();
        let simplified = simplify(&lt);
        let diagram = build_diagram(&simplified);
        let layout = layout_diagram(&diagram, &LayoutOptions::default());
        let _ = layout;

        let mut group = c.benchmark_group(format!("pipeline/{name}"));
        group.bench_function("parse", |b| {
            b.iter(|| parse_query(black_box(&sql)).unwrap())
        });
        group.bench_function("translate", |b| {
            b.iter(|| translate(black_box(&ast), schema_opt).unwrap())
        });
        group.bench_function("simplify", |b| b.iter(|| simplify(black_box(&lt))));
        group.bench_function("build_diagram", |b| {
            b.iter(|| build_diagram(black_box(&simplified)))
        });
        group.bench_function("layout", |b| {
            b.iter(|| layout_diagram(black_box(&diagram), &LayoutOptions::default()))
        });
        group.bench_function("render_svg", |b| b.iter(|| render_svg(black_box(&diagram))));
        group.bench_function("render_dot", |b| b.iter(|| to_dot(black_box(&diagram))));
        group.bench_function("end_to_end", |b| {
            b.iter(|| QueryVis::from_sql(black_box(&sql)).unwrap().svg())
        });
        group.finish();
    }
}

fn bench_inverse(c: &mut Criterion) {
    let lt = translate(&parse_query(unique_set_sql()).unwrap(), None).unwrap();
    let diagram = build_diagram(&lt);
    c.bench_function("inverse/unique_set", |b| {
        b.iter(|| queryvis::recover_logic_tree(black_box(&diagram)).unwrap())
    });
}

criterion_group!(benches, bench_stages, bench_inverse);
criterion_main!(benches);
