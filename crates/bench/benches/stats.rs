//! Criterion benchmarks for the statistics substrate: exact vs
//! normal-approximation Wilcoxon, bootstrap resample sweeps, Shapiro-Wilk.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use queryvis_stats::{bca_interval, mean, shapiro_wilk, wilcoxon_signed_rank_less};

fn paired_sample(n: usize) -> (Vec<f64>, Vec<f64>) {
    // Deterministic untied sample with a negative median shift.
    let x: Vec<f64> = (0..n).map(|i| 100.0 + (i as f64) * 1.618).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 100.0 + (i as f64) * 1.618 + 12.0 + ((i * 7919) % 13) as f64 * 0.31)
        .collect();
    (x, y)
}

fn bench_wilcoxon(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats/wilcoxon");
    for n in [10usize, 25, 42, 100] {
        let (x, y) = paired_sample(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| wilcoxon_signed_rank_less(black_box(&x), black_box(&y)).unwrap())
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let data: Vec<f64> = (1..=42).map(|i| (i as f64).sqrt() * 25.0).collect();
    let mut group = c.benchmark_group("stats/bca_bootstrap");
    group.sample_size(20);
    for resamples in [1000usize, 5000, 20000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(resamples),
            &resamples,
            |b, &r| b.iter(|| bca_interval(black_box(&data), &mean, 0.95, r, 42)),
        );
    }
    group.finish();
}

fn bench_shapiro(c: &mut Criterion) {
    let data: Vec<f64> = (1..=126)
        .map(|i| ((i as f64) / 127.0).ln().abs() * 60.0)
        .collect();
    c.bench_function("stats/shapiro_wilk_126", |b| {
        b.iter(|| shapiro_wilk(black_box(&data)).unwrap())
    });
}

criterion_group!(benches, bench_wilcoxon, bench_bootstrap, bench_shapiro);
criterion_main!(benches);
