//! Ablation benchmarks for the design choices called out in DESIGN.md §7:
//!
//! * ∀-simplification on/off — the §4.8 visual-complexity reduction;
//! * barycenter crossing-reduction passes 0/1/3 — layout quality vs cost.
//!
//! Besides timing, each ablation prints its quality metric once (element
//! counts, edge crossings) so `cargo bench` output documents the effect.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use queryvis::corpus::unique_set_sql;
use queryvis_diagram::{build_diagram, diagram_stats};
use queryvis_layout::{crossing_count, layout_diagram, LayoutOptions};
use queryvis_logic::{simplify, translate};
use queryvis_sql::parse_query;

fn bench_simplify_ablation(c: &mut Criterion) {
    let lt = translate(&parse_query(unique_set_sql()).unwrap(), None).unwrap();
    let simplified = simplify(&lt);
    let raw_elems = diagram_stats(&build_diagram(&lt)).visual_elements();
    let simp_elems = diagram_stats(&build_diagram(&simplified)).visual_elements();
    println!(
        "[ablation] unique-set visual elements: without simplify = {raw_elems}, \
         with simplify = {simp_elems}"
    );
    let mut group = c.benchmark_group("ablation/simplify");
    group.bench_function("off", |b| b.iter(|| build_diagram(black_box(&lt))));
    group.bench_function("on", |b| {
        b.iter(|| build_diagram(&simplify(black_box(&lt))))
    });
    group.finish();
}

fn bench_barycenter_ablation(c: &mut Criterion) {
    let lt = translate(&parse_query(unique_set_sql()).unwrap(), None).unwrap();
    let diagram = build_diagram(&lt);
    let mut group = c.benchmark_group("ablation/barycenter");
    for passes in [0usize, 1, 3] {
        let options = LayoutOptions {
            barycenter_passes: passes,
            ..LayoutOptions::default()
        };
        let crossings = crossing_count(&layout_diagram(&diagram, &options));
        println!("[ablation] barycenter passes = {passes}: edge crossings = {crossings}");
        group.bench_with_input(BenchmarkId::from_parameter(passes), &passes, |b, _| {
            b.iter(|| layout_diagram(black_box(&diagram), &options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplify_ablation, bench_barycenter_ablation);
criterion_main!(benches);
