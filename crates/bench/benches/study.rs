//! Criterion benchmarks for the user-study simulation and its
//! preregistered analysis pipeline (Figs. 7 and 18–21).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use queryvis_study::{analyze, simulate_pilot, simulate_study, AnalysisScope};

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("study/simulate_80_workers", |b| {
        b.iter(|| simulate_study(black_box(2015)))
    });
    c.bench_function("study/simulate_pilot_12", |b| {
        b.iter(|| simulate_pilot(black_box(2015)))
    });
}

fn bench_analysis(c: &mut Criterion) {
    let data = simulate_study(2015);
    let mut group = c.benchmark_group("study/analysis");
    group.sample_size(10); // each iteration runs 6 × 5000 bootstrap resamples
    group.bench_function("core_nine", |b| {
        b.iter(|| analyze(black_box(&data), AnalysisScope::CoreNine, 7))
    });
    group.bench_function("all_twelve", |b| {
        b.iter(|| analyze(black_box(&data), AnalysisScope::AllTwelve, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_analysis);
criterion_main!(benches);
