//! Batch throughput of the diagram-compilation service over the full
//! paper corpus (39 queries, ~30 unique patterns), crossed over the two
//! axes that matter for serving:
//!
//! * **cache-cold vs cache-warm** — cold builds a fresh service per
//!   iteration (every pattern compiles); warm reuses one pre-warmed
//!   service (every request is a fingerprint + cache hit), isolating the
//!   front-half cost the cache can never remove;
//! * **1 vs 4 worker threads** — the deterministic batch executor's
//!   scaling on compile-bound (cold) and lookup-bound (warm) workloads;
//!
//! plus a **fingerprint-only** row (parse → translate → canonical token
//! stream → 128-bit hash, no service) that tracks the frontend in
//! isolation — the path the L1 text memo short-circuits for repeat
//! texts — a **warm_l1_hit** row serving a normalization-equivalent
//! *variant* text of a warmed query, isolating the memo's effect, and
//! two **warm_multiformat** rows (one entry rendered ascii+svg+scene_json
//! vs one format) quantifying the shared-scene layout win, and a
//! **warm_hit_telemetry_off / _on** pair bounding the cost of the
//! `queryvis-telemetry` instrumentation on the hottest path. Every
//! measured row also reports p50/p99/p999 per-request latency from the
//! same log-linear [`HistogramSnapshot`] the service exports — rows with
//! a single observation (smoke mode, or a quick-mode payload slower than
//! the whole window) report `null` instead of pretending one sample is a
//! distribution.
//!
//! Three **keystroke-trace** rows replay scripted single-character edit
//! round-trips through a live [`SessionStore`] session (append-typing,
//! a mid-query identifier rename, a predicate insertion), measuring the
//! incremental tiers an editor actually hits. The rename trace is
//! structure-preserving and asserts a zero full-recompile fallback rate;
//! the run as a whole asserts single-character-edit p99 < same-run cold
//! compile p50 — the relative contract `bench_guard` cannot express
//! across hosts.
//!
//! Four **eviction-policy** rows replay deterministic seeded traces — a
//! zipfian-skewed key stream and a hot-set-with-cold-scan-bursts stream —
//! against the real ARC cache and against a strict-LRU reference with
//! identical shard geometry, each reporting a `hit_rate` alongside the
//! replay time. `bench_guard` pins both the absolute hit rates against
//! the committed baseline and the ARC ≥ LRU ordering within the run.
//!
//! Besides the console report, the bench writes machine-readable results
//! to `BENCH_service.json` at the repository root so the perf trajectory
//! is tracked across PRs. Modes:
//!
//! * default — full measurement windows;
//! * `QUERYVIS_BENCH_QUICK=1` — shrunken windows (CI bench-smoke);
//! * `--test` (what `cargo test --benches` passes) — one iteration per
//!   row, timings reported as mode `smoke`.
//!
//! Caveat: the service clamps batch workers to the hardware's available
//! parallelism (oversubscribing a CPU-bound batch only buys context
//! switches), so on a single-CPU host (like the container this repo is
//! developed in) the 4-thread rows measure the clamped path and must sit
//! within noise of the 1-thread rows — a property `bench_guard` gates
//! (4-thread ≤ 1.25 × 1-thread) now that the old oversubscription
//! overhead (~2×) is gone. Real speedup only shows on multicore
//! hardware; byte-identical responses for any thread count are asserted
//! by the service tests either way.

use criterion::black_box;
use queryvis::QueryVisOptions;
use queryvis_service::{
    compile_representative, fingerprint_sql, paper_corpus_requests, CacheConfig, CompiledEntry,
    DiagramService, Fingerprint, Format, Request, ServiceConfig, ShardedCache,
};
use queryvis_telemetry::HistogramSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn corpus() -> Vec<Request> {
    paper_corpus_requests(&[Format::Ascii, Format::Svg])
}

fn fresh_service() -> DiagramService {
    DiagramService::new(ServiceConfig {
        cache: CacheConfig {
            capacity: 1024,
            shards: 16,
        },
        ..ServiceConfig::default()
    })
}

/// A batch of `n` requests spanning ~120 structurally distinct patterns:
/// join width 1–6 × ∄-nesting depth 0–3 (each level *nested inside* the
/// previous, correlated level-to-level, so depth-3 exercises the deepest
/// compile path the validator admits) × 0–2 selection predicates ×
/// star/chain shape (narrow widths collapse star and chain, hence "~").
/// Alias names and constants are canonicalized away, so diversity has to
/// be structural. The resulting workload — many requests, ~120 compiles,
/// the rest deduplicated — is the regime where thread scaling shows; the
/// paper corpus alone is too small to amortize pool start-up.
fn synthetic_requests(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let width = 1 + i % 6;
            let depth = (i / 6) % 4;
            let selections = (i / 24) % 3;
            let star = (i / 72) % 2 == 0;
            let from: Vec<String> = (0..width).map(|t| format!("Rel{t} T{t}")).collect();
            let mut clauses: Vec<String> = (1..width)
                .map(|t| {
                    if star {
                        format!("T0.hub = T{t}.a")
                    } else {
                        format!("T{}.b = T{t}.a", t - 1)
                    }
                })
                .collect();
            clauses.extend((0..selections).map(|s| format!("T0.sel{s} = 'k'")));
            // One ∄-chain, built innermost-out: level k correlates with
            // level k−1's alias (level 0 with the outer block's T0).
            let mut nested = String::new();
            for level in (0..depth).rev() {
                let alias = format!("S{level}");
                let parent = if level == 0 {
                    "T0".to_string()
                } else {
                    format!("S{}", level - 1)
                };
                let selection = if level % 2 == 0 {
                    format!(" AND {alias}.flag = 'y'")
                } else {
                    String::new()
                };
                let inner = if nested.is_empty() {
                    String::new()
                } else {
                    format!(" AND {nested}")
                };
                nested = format!(
                    "NOT EXISTS (SELECT * FROM Sub{level} {alias} \
                     WHERE {alias}.a = {parent}.a{selection}{inner})"
                );
            }
            if !nested.is_empty() {
                clauses.push(nested);
            }
            let mut sql = format!("SELECT T0.a FROM {}", from.join(", "));
            if !clauses.is_empty() {
                sql.push_str(" WHERE ");
                sql.push_str(&clauses.join(" AND "));
            }
            Request {
                id: i as u64,
                sql,
                formats: vec![Format::Ascii, Format::Svg],
                rows: None,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Eviction-policy traces: ARC (the real cache) vs an LRU reference
// ---------------------------------------------------------------------

/// Zipfian key trace: `accesses` draws over `n_keys` ranks with exponent
/// `s`, inverse-CDF sampling of the seeded vendored rng. Rank 0 is the
/// hottest key.
fn zipf_trace(n_keys: usize, s: f64, accesses: usize, seed: u64) -> Vec<u64> {
    let weights: Vec<f64> = (1..=n_keys).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n_keys);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..accesses)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            cdf.partition_point(|&c| c < u).min(n_keys - 1) as u64
        })
        .collect()
}

/// Hot-set-with-cold-scan trace: cycles of `hot_runs` random draws from a
/// small re-referenced hot set, each followed by a one-shot burst of
/// `scan_len` never-repeated cold keys — the pattern a recency-only
/// policy flushes its working set for, and the one ARC's ghost lists are
/// built to resist.
fn hot_scan_trace(
    hot_keys: u64,
    cycles: usize,
    hot_runs: usize,
    scan_len: usize,
    seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_cold = 1_000_000u64;
    let mut trace = Vec::with_capacity(cycles * (hot_runs + scan_len));
    for _ in 0..cycles {
        for _ in 0..hot_runs {
            trace.push(rng.gen_range(0..hot_keys));
        }
        for _ in 0..scan_len {
            trace.push(next_cold);
            next_cold += 1;
        }
    }
    trace
}

/// Low-half synthetic keys, so `Fingerprint::shard` (lo ^ hi, mod shards)
/// spreads consecutive keys across shards like real fingerprints do.
fn trace_fingerprint(key: u64) -> Fingerprint {
    Fingerprint(u128::from(key) + 1)
}

/// Replay a trace against the real [`ShardedCache`] (ARC policy): get,
/// and on a miss insert. One shared entry stands in for every value — the
/// eviction policy only sees keys. Returns the hit rate.
fn arc_replay(trace: &[u64], entry: &Arc<CompiledEntry>, config: CacheConfig) -> f64 {
    let cache = ShardedCache::new(config);
    let mut hits = 0usize;
    for &key in trace {
        let fp = trace_fingerprint(key);
        if cache.get(fp).is_some() {
            hits += 1;
        } else {
            cache.insert(fp, Arc::clone(entry));
        }
    }
    hits as f64 / trace.len().max(1) as f64
}

/// The LRU reference: strict per-shard LRU with the same shard mapping
/// (`Fingerprint::shard`) and the same per-shard capacity split
/// (`div_ceil`) the real cache uses, so the replay differs from
/// [`arc_replay`] in eviction policy only. Stamp-based; shards are tiny,
/// so the O(n) evict scan is irrelevant to the hit rate it exists to
/// report.
fn lru_replay(trace: &[u64], config: CacheConfig) -> f64 {
    let shards = config.shards.max(1);
    let per_shard = config.capacity.div_ceil(shards).max(1);
    let mut maps: Vec<std::collections::HashMap<u128, u64>> = (0..shards)
        .map(|_| std::collections::HashMap::new())
        .collect();
    let mut stamp = 0u64;
    let mut hits = 0usize;
    for &key in trace {
        let fp = trace_fingerprint(key);
        let map = &mut maps[fp.shard(shards)];
        stamp += 1;
        if map.insert(fp.0, stamp).is_some() {
            hits += 1;
        } else if map.len() > per_shard {
            let coldest = *map.iter().min_by_key(|&(_, s)| *s).map(|(k, _)| k).unwrap();
            map.remove(&coldest);
        }
    }
    hits as f64 / trace.len().max(1) as f64
}

// ---------------------------------------------------------------------
// Measurement harness + machine-readable report
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Full,
    Quick,
    Smoke,
}

impl Mode {
    fn detect() -> Mode {
        if std::env::args().any(|a| a == "--test") {
            Mode::Smoke
        } else if std::env::var("QUERYVIS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Mode::Quick
        } else {
            Mode::Full
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
            Mode::Smoke => "smoke",
        }
    }

    fn window(self) -> Duration {
        match self {
            Mode::Full => Duration::from_millis(200),
            Mode::Quick => Duration::from_millis(25),
            Mode::Smoke => Duration::ZERO,
        }
    }
}

struct BenchRow {
    name: &'static str,
    /// `cold` | `warm` | `fingerprint`.
    kind: &'static str,
    /// Worker threads (1 for the single-request / fingerprint rows).
    threads: usize,
    /// Requests processed per iteration.
    queries_per_iter: usize,
    iters: u64,
    per_iter_ns: f64,
    /// Median per-*request* latency (histogram sampling pass; ns).
    /// `None` when the row was not sampled (smoke mode runs a single
    /// iteration — one observation has no percentiles).
    p50_ns: Option<f64>,
    /// 99th-percentile per-request latency (ns); `None` when unsampled.
    p99_ns: Option<f64>,
    /// 99.9th-percentile per-request latency (ns); `None` when unsampled.
    p999_ns: Option<f64>,
    /// Cache hit rate over the row's replay trace — only the eviction-
    /// policy rows (`zipfian_skew`, `hot_scan`) carry one. Computed once,
    /// deterministically (seeded trace, fresh cache), independent of the
    /// timing loop.
    hit_rate: Option<f64>,
}

impl BenchRow {
    fn queries_per_sec(&self) -> f64 {
        if self.per_iter_ns <= 0.0 {
            return 0.0;
        }
        self.queries_per_iter as f64 * 1e9 / self.per_iter_ns
    }
}

/// Calibrate-then-measure (mirrors the vendored criterion shim): time
/// single iterations until ~window/10 elapses, size the measured run to
/// fill the window, report mean ns/iter. A second, individually-timed
/// sampling pass (up to 1000 iterations) records per-request latency
/// into a [`HistogramSnapshot`] — the same ≤1/32-relative-error
/// log-linear buckets the service's `--stats` percentiles come from, so
/// bench rows and service stats are directly comparable — without
/// polluting the mean with per-iteration clock reads.
fn measure<O>(
    mode: Mode,
    name: &'static str,
    kind: &'static str,
    threads: usize,
    queries_per_iter: usize,
    mut payload: impl FnMut() -> O,
) -> BenchRow {
    if mode == Mode::Smoke {
        let start = Instant::now();
        black_box(payload());
        let elapsed = start.elapsed();
        println!("{name:<50} ok (smoke)");
        // One iteration is one observation: report no percentiles rather
        // than the old `p50 == p99 == mean` rows, which read as a real
        // (and implausibly tight) distribution downstream.
        return BenchRow {
            name,
            kind,
            threads,
            queries_per_iter,
            iters: 1,
            per_iter_ns: elapsed.as_nanos() as f64,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
            hit_rate: None,
        };
    }
    let window = mode.window();
    let calibration_start = Instant::now();
    let mut calibration_iters = 0u64;
    while calibration_start.elapsed() < window / 10 {
        black_box(payload());
        calibration_iters += 1;
        if calibration_iters >= 10_000 {
            break;
        }
    }
    let per_iter = calibration_start.elapsed().as_secs_f64() / calibration_iters as f64;
    let iters = ((window.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(payload());
    }
    let elapsed = start.elapsed();
    let per_iter_ns = elapsed.as_nanos() as f64 / iters as f64;
    // Sampling pass: per-iteration timings recorded into the telemetry
    // histogram for the latency distribution.
    let samples_n = iters.min(1000);
    let mut histogram = HistogramSnapshot::empty();
    for _ in 0..samples_n {
        let t = Instant::now();
        black_box(payload());
        histogram.record(t.elapsed().as_nanos() as u64 / queries_per_iter.max(1) as u64);
    }
    // One observation has no distribution. Rows whose calibration lands on
    // `iters == 1` (payloads slower than the quick-mode window, e.g.
    // cold_synthetic_512) used to report a fabricated `p50 == p99 == p999`
    // from that single sample; report `null` instead, like smoke mode.
    let sampled = samples_n >= 2;
    let p50_ns = sampled.then(|| histogram.p50() as f64);
    let p99_ns = sampled.then(|| histogram.p99() as f64);
    let p999_ns = sampled.then(|| histogram.p999() as f64);
    if let (Some(p50), Some(p99), Some(p999)) = (p50_ns, p99_ns, p999_ns) {
        println!(
            "{name:<50} {:>12.3} ms/iter ({iters} iters in {:.3} ms; \
             p50 {:.2} µs/q, p99 {:.2} µs/q, p999 {:.2} µs/q)",
            per_iter_ns / 1e6,
            elapsed.as_secs_f64() * 1e3,
            p50 / 1e3,
            p99 / 1e3,
            p999 / 1e3,
        );
    } else {
        println!(
            "{name:<50} {:>12.3} ms/iter ({iters} iters in {:.3} ms; \
             single sample — no percentiles)",
            per_iter_ns / 1e6,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    BenchRow {
        name,
        kind,
        threads,
        queries_per_iter,
        iters,
        per_iter_ns,
        p50_ns,
        p99_ns,
        p999_ns,
        hit_rate: None,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A percentile field: a number when sampled, `null` when the row ran a
/// single smoke iteration.
fn percentile_field(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.0}"),
        None => "null".to_string(),
    }
}

/// Write `BENCH_service.json` at the repository root (two levels above
/// this crate's manifest), hand-rolled like the service's JSON layer — no
/// serde in the image.
fn write_report(mode: Mode, rows: &[BenchRow]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", mode.as_str()));
    out.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"threads\": {}, \
             \"queries_per_iter\": {}, \"iters\": {}, \"per_iter_ns\": {:.0}, \
             \"queries_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"hit_rate\": {}}}{}\n",
            json_escape(row.name),
            row.kind,
            row.threads,
            row.queries_per_iter,
            row.iters,
            row.per_iter_ns,
            row.queries_per_sec(),
            percentile_field(row.p50_ns),
            percentile_field(row.p99_ns),
            percentile_field(row.p999_ns),
            match row.hit_rate {
                Some(rate) => format!("{rate:.4}"),
                None => "null".to_string(),
            },
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

fn main() {
    let mode = Mode::detect();
    let requests = corpus();
    let synthetic = synthetic_requests(512);
    let n_corpus = requests.len();
    let mut rows = Vec::new();

    for threads in [1usize, 4] {
        let name: &'static str = match threads {
            1 => "service/cold_batch/1_threads",
            _ => "service/cold_batch/4_threads",
        };
        rows.push(measure(mode, name, "cold", threads, n_corpus, || {
            // A fresh service per iteration: every pattern compiles.
            let service = fresh_service();
            service.execute_batch(black_box(&requests), threads)
        }));
    }

    for threads in [1usize, 4] {
        let name: &'static str = match threads {
            1 => "service/cold_synthetic_512/1_threads",
            _ => "service/cold_synthetic_512/4_threads",
        };
        rows.push(measure(
            mode,
            name,
            "cold",
            threads,
            synthetic.len(),
            || {
                let service = fresh_service();
                service.execute_batch(black_box(&synthetic), threads)
            },
        ));
    }

    for threads in [1usize, 4] {
        let name: &'static str = match threads {
            1 => "service/warm_batch/1_threads",
            _ => "service/warm_batch/4_threads",
        };
        let service = fresh_service();
        // Pre-warm: all patterns compiled and all artifacts rendered.
        service.execute_batch(&requests, threads);
        rows.push(measure(mode, name, "warm", threads, n_corpus, || {
            service.execute_batch(black_box(&requests), threads)
        }));
    }

    {
        let sql = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
                   (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
                   (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                    AND S.drink = L.drink))";
        let request = Request {
            id: 0,
            sql: sql.to_string(),
            formats: vec![Format::Ascii],
            rows: None,
        };
        rows.push(measure(
            mode,
            "service/single/cold_compile",
            "cold",
            1,
            1,
            || {
                let service = fresh_service();
                service.handle(black_box(&request))
            },
        ));
        let service = fresh_service();
        service.handle(&request);
        rows.push(measure(
            mode,
            "service/single/warm_hit",
            "warm",
            1,
            1,
            || service.handle(black_box(&request)),
        ));
        // Telemetry overhead pair on the hottest path. `_off` pins the
        // flag false (the process default — this row must be
        // indistinguishable from plain warm_hit, which bench_guard
        // enforces); `_on` measures with counters, spans, and the request
        // histogram live. The recorded gap is the instrumentation budget
        // DESIGN.md §6 commits to (≤10% enabled).
        queryvis_telemetry::global().set_enabled(false);
        rows.push(measure(
            mode,
            "service/single/warm_hit_telemetry_off",
            "warm",
            1,
            1,
            || service.handle(black_box(&request)),
        ));
        queryvis_telemetry::global().set_enabled(true);
        rows.push(measure(
            mode,
            "service/single/warm_hit_telemetry_on",
            "warm",
            1,
            1,
            || service.handle(black_box(&request)),
        ));
        queryvis_telemetry::global().set_enabled(false);
        // L1 memo row: a *different text* of the warmed query (lowercase
        // keywords, reshaped whitespace, a comment, trailing `;`) that
        // normalizes to the same L1 key — the warm path for resubmitted
        // queries that are not byte-identical. Tracks the memo's effect
        // separately from the exact-text warm_hit row.
        let variant = "select F.person  /* resubmitted */\n from Frequents F WHERE not exists \
                   (SELECT * FROM Serves S WHERE S.bar = F.bar and NOT EXISTS \
                   (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                    AND S.drink = L.drink));";
        let variant_request = Request {
            id: 1,
            sql: variant.to_string(),
            formats: vec![Format::Ascii],
            rows: None,
        };
        rows.push(measure(
            mode,
            "service/single/warm_l1_hit",
            "warm",
            1,
            1,
            || service.handle(black_box(&variant_request)),
        ));
    }

    // Keystroke traces: the incremental-session contract. Each row opens
    // one session and replays a scripted round-trip of single-character
    // edits (type forward, unwind back) through the typed `SessionStore`
    // API — the same code path the `open`/`edit` wire ops take, minus
    // socket framing. `rename_identifier` is structure-preserving (every
    // intermediate buffer compiles; the session must stay on the warm
    // token/fragment tiers — asserted below as a ~0 full-recompile rate);
    // `append_typing` and `insert_predicate` pass through transient parse
    // states like a real editor does, so their per-edit time averages the
    // cheap error replies with the recompile on recovery. The headline
    // gate — a single-character edit must beat a cold compile — is
    // asserted at the end of the run against the same-run
    // `single/cold_compile` p50, not an absolute number.
    {
        use queryvis_service::{SessionConfig, SessionStore};
        use queryvis_sql::Edit;

        let base = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
                    (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
                    (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                     AND S.drink = L.drink))";

        /// Type `text` at byte offset `at` one character per edit, then
        /// unwind with single-character deletes — the buffer round-trips
        /// to `base`, so the script can replay forever on one session.
        fn typing_script(at: usize, text: &str) -> Vec<Edit> {
            let mut edits = Vec::new();
            let mut off = at;
            for ch in text.chars() {
                edits.push(Edit {
                    offset: off,
                    deleted: 0,
                    inserted: ch.to_string(),
                });
                off += ch.len_utf8();
            }
            for ch in text.chars().rev() {
                off -= ch.len_utf8();
                edits.push(Edit {
                    offset: off,
                    deleted: ch.len_utf8(),
                    inserted: String::new(),
                });
            }
            edits
        }

        /// Rename every occurrence of `from` to the same-length `to` one
        /// character per edit, then back. Identifiers stay well-formed at
        /// every step, so every intermediate buffer compiles.
        fn rename_script(base: &str, from: &str, to: &str) -> Vec<Edit> {
            assert_eq!(from.len(), to.len(), "rename must preserve offsets");
            let sites: Vec<usize> = base.match_indices(from).map(|(i, _)| i).collect();
            assert!(!sites.is_empty(), "rename target must occur in the base");
            let mut edits = Vec::new();
            for (old, new) in [(from, to), (to, from)] {
                for &site in &sites {
                    for (i, (a, b)) in old.bytes().zip(new.bytes()).enumerate() {
                        if a != b {
                            edits.push(Edit {
                                offset: site + i,
                                deleted: 1,
                                inserted: (b as char).to_string(),
                            });
                        }
                    }
                }
            }
            edits
        }

        let insert_at = base.find("S.bar = F.bar").expect("anchor present") + "S.bar = F.bar".len();
        let traces: [(&'static str, Vec<Edit>, bool); 3] = [
            (
                "service/keystroke/append_typing",
                typing_script(base.len(), " AND F.city = 'boston'"),
                false,
            ),
            (
                "service/keystroke/rename_identifier",
                rename_script(base, "person", "patron"),
                true,
            ),
            (
                "service/keystroke/insert_predicate",
                typing_script(insert_at, " AND S.kind = 'pub'"),
                false,
            ),
        ];
        for (name, script, structure_preserving) in traces {
            let service = Arc::new(fresh_service());
            let store = SessionStore::new(Arc::clone(&service), SessionConfig::default());
            let (id, opened) = store.open(base, 0).expect("base fits the session budget");
            opened.expect("base query compiles");
            let edits_per_iter = script.len();
            rows.push(measure(mode, name, "session", 1, edits_per_iter, || {
                let mut last_ok = 0usize;
                for edit in &script {
                    if store
                        .edit(id, std::slice::from_ref(black_box(edit)), 0)
                        .expect("scripted edits are in-range")
                        .is_ok()
                    {
                        last_ok += 1;
                    }
                }
                last_ok
            }));
            let stats = store.snapshot();
            if structure_preserving {
                // The fallback-rate contract: a structure-preserving trace
                // must never leave the warm tiers. `path_full` counts
                // every edit that fell back to the from-scratch pipeline.
                assert_eq!(
                    stats.path_full, 0,
                    "{name}: {} of {} edits fell back to a full recompile",
                    stats.path_full, stats.edits
                );
                assert_eq!(stats.parse_errors, 0, "{name}: trace must stay well-formed");
            }
            println!(
                "  {name}: {} edits/iter (tokens {} / fragment {} / full {} over the run)",
                edits_per_iter, stats.path_tokens, stats.path_fragment, stats.path_full
            );
        }
    }

    // Multiformat: the shared-scene win, isolated from compile cost. The
    // entry is compiled once outside the loop; each iteration measures
    // exactly what `CompiledEntry` does per format set — multiformat =
    // one scene build (layout + mark resolution + union composition) plus
    // three backend walks (ascii+svg+scene_json); single_format = one
    // scene build plus one walk (what each format cost pre-scene, when
    // every backend laid the entry out for itself). The acceptance bound
    // for the scene rearchitecture: multiformat per-iter < 3 ×
    // single_format per-iter, with headroom exactly equal to the two
    // layouts no longer run.
    {
        use queryvis::layout::compose_union;
        use queryvis::render::{to_ascii, to_svg, SvgTheme};
        use queryvis::QueryVis;
        use queryvis_service::scene_json;
        let sql = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
                   (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
                   (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                    AND S.drink = L.drink))";
        let qv = QueryVis::from_sql(sql).expect("bench query compiles");
        let theme = SvgTheme::default();
        // `qv.scenes()` + compose is the *un-memoized* scene build
        // (`QueryVis::scene` caches, which would make later iterations
        // free and the measurement meaningless).
        rows.push(measure(
            mode,
            "service/warm_multiformat/ascii_svg_scene",
            "render",
            1,
            1,
            || {
                let scene = compose_union(black_box(&qv).scenes(), qv.union_all);
                let total = to_ascii(&scene).len()
                    + to_svg(&scene, &theme).len()
                    + scene_json(&scene).len();
                black_box(total)
            },
        ));
        rows.push(measure(
            mode,
            "service/warm_multiformat/single_format",
            "render",
            1,
            1,
            || {
                let scene = compose_union(black_box(&qv).scenes(), qv.union_all);
                black_box(to_svg(&scene, &theme).len())
            },
        ));
    }

    // Fingerprint-only: the always-executed front half (parse → translate
    // → canonical tokens → hash) over the whole corpus, no cache, no
    // diagrams. This is the row the interned-symbol IR directly targets.
    {
        let options = std::sync::Arc::new(QueryVisOptions::default());
        rows.push(measure(
            mode,
            "service/fingerprint_only/corpus",
            "fingerprint",
            1,
            n_corpus,
            || {
                let mut last = None;
                for request in &requests {
                    last = Some(
                        fingerprint_sql(black_box(&request.sql), std::sync::Arc::clone(&options))
                            .expect("corpus queries fingerprint")
                            .fingerprint,
                    );
                }
                last
            },
        ));
    }

    // Eviction-policy rows: the real cache's ARC against a strict-LRU
    // reference replaying the same deterministic traces through the same
    // shard geometry. `hit_rate` is computed once per row outside the
    // timing loop (seeded trace + fresh cache = deterministic); the timed
    // payload is a full fresh-cache replay, tracking policy overhead.
    // bench_guard gates both directions: hit_rate against the committed
    // baseline, and arc >= lru_ref within the current run.
    {
        let policy_config = || CacheConfig {
            capacity: 64,
            shards: 4,
        };
        let entry = {
            let fq = fingerprint_sql(
                "SELECT T.a FROM T WHERE T.a = 0",
                QueryVisOptions::default(),
            )
            .expect("policy entry compiles");
            Arc::new(compile_representative(fq))
        };
        let zipf = zipf_trace(256, 1.0, 10_000, 0x5eed);
        let hot_scan = hot_scan_trace(48, 40, 60, 100, 0x5eed);
        let pairs: [(&'static str, &'static str, &Vec<u64>); 2] = [
            (
                "service/zipfian_skew/arc",
                "service/zipfian_skew/lru_ref",
                &zipf,
            ),
            (
                "service/hot_scan/arc",
                "service/hot_scan/lru_ref",
                &hot_scan,
            ),
        ];
        for (arc_name, lru_name, trace) in pairs {
            let arc_rate = arc_replay(trace, &entry, policy_config());
            let lru_rate = lru_replay(trace, policy_config());
            let mut row = measure(mode, arc_name, "policy", 1, trace.len(), || {
                black_box(arc_replay(black_box(trace), &entry, policy_config()))
            });
            row.hit_rate = Some(arc_rate);
            rows.push(row);
            let mut row = measure(mode, lru_name, "policy", 1, trace.len(), || {
                black_box(lru_replay(black_box(trace), policy_config()))
            });
            row.hit_rate = Some(lru_rate);
            rows.push(row);
            println!("  {arc_name}: hit rate {arc_rate:.4} (lru reference {lru_rate:.4})");
        }
    }

    // The incremental-session headline, relative and same-run (so host
    // speed cancels out): a single-character edit at p99 must be cheaper
    // than a cold compile at p50. Skipped in smoke mode, where single
    // iterations report no percentiles.
    {
        let p50_of = |name: &str| rows.iter().find(|r| r.name == name).and_then(|r| r.p50_ns);
        let p99_of = |name: &str| rows.iter().find(|r| r.name == name).and_then(|r| r.p99_ns);
        if let (Some(cold_p50), Some(edit_p99)) = (
            p50_of("service/single/cold_compile"),
            p99_of("service/keystroke/rename_identifier"),
        ) {
            println!(
                "  keystroke edit p99 {:.2} µs vs cold compile p50 {:.2} µs",
                edit_p99 / 1e3,
                cold_p50 / 1e3
            );
            assert!(
                edit_p99 < cold_p50,
                "incremental edit p99 ({edit_p99:.0} ns) must beat cold compile p50 \
                 ({cold_p50:.0} ns) in the same run"
            );
        }
    }

    match write_report(mode, &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_service.json: {e}"),
    }
}
