//! Batch throughput of the diagram-compilation service over the full
//! paper corpus (39 queries, ~30 unique patterns), crossed over the two
//! axes that matter for serving:
//!
//! * **cache-cold vs cache-warm** — cold builds a fresh service per
//!   iteration (every pattern compiles); warm reuses one pre-warmed
//!   service (every request is a fingerprint + cache hit), isolating the
//!   front-half cost the cache can never remove;
//! * **1 vs 4 worker threads** — the deterministic batch executor's
//!   scaling on compile-bound (cold) and lookup-bound (warm) workloads.
//!
//! Per-iteration work is one full batch, so comparing group entries gives
//! batches/sec; multiply by the corpus size for queries/sec.
//!
//! Caveat: on a single-CPU host (like the container this repo is
//! developed in) the 4-thread rows can only show pool overhead, never
//! speedup — the interesting property there is that their *responses*
//! stay byte-identical to the 1-thread rows, which the service tests
//! assert.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use queryvis_service::{
    paper_corpus_requests, CacheConfig, DiagramService, Format, Request, ServiceConfig,
};

fn corpus() -> Vec<Request> {
    paper_corpus_requests(&[Format::Ascii, Format::Svg])
}

fn fresh_service() -> DiagramService {
    DiagramService::new(ServiceConfig {
        cache: CacheConfig {
            capacity: 1024,
            shards: 16,
        },
        ..ServiceConfig::default()
    })
}

fn bench_cold(c: &mut Criterion) {
    let requests = corpus();
    let mut group = c.benchmark_group("service/cold_batch");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                // A fresh service per iteration: every pattern compiles.
                let service = fresh_service();
                black_box(service.execute_batch(black_box(&requests), threads))
            })
        });
    }
    group.finish();
}

/// A batch of `n` requests spanning ~120 structurally distinct patterns:
/// join width 1–6 × ∄-nesting depth 0–3 (each level *nested inside* the
/// previous, correlated level-to-level, so depth-3 exercises the deepest
/// compile path the validator admits) × 0–2 selection predicates ×
/// star/chain shape (narrow widths collapse star and chain, hence "~").
/// Alias names and constants are canonicalized away, so diversity has to
/// be structural. The resulting workload — many requests, ~120 compiles,
/// the rest deduplicated — is the regime where thread scaling shows; the
/// paper corpus alone is too small to amortize pool start-up.
fn synthetic_requests(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let width = 1 + i % 6;
            let depth = (i / 6) % 4;
            let selections = (i / 24) % 3;
            let star = (i / 72) % 2 == 0;
            let from: Vec<String> = (0..width).map(|t| format!("Rel{t} T{t}")).collect();
            let mut clauses: Vec<String> = (1..width)
                .map(|t| {
                    if star {
                        format!("T0.hub = T{t}.a")
                    } else {
                        format!("T{}.b = T{t}.a", t - 1)
                    }
                })
                .collect();
            clauses.extend((0..selections).map(|s| format!("T0.sel{s} = 'k'")));
            // One ∄-chain, built innermost-out: level k correlates with
            // level k−1's alias (level 0 with the outer block's T0).
            let mut nested = String::new();
            for level in (0..depth).rev() {
                let alias = format!("S{level}");
                let parent = if level == 0 {
                    "T0".to_string()
                } else {
                    format!("S{}", level - 1)
                };
                let selection = if level % 2 == 0 {
                    format!(" AND {alias}.flag = 'y'")
                } else {
                    String::new()
                };
                let inner = if nested.is_empty() {
                    String::new()
                } else {
                    format!(" AND {nested}")
                };
                nested = format!(
                    "NOT EXISTS (SELECT * FROM Sub{level} {alias} \
                     WHERE {alias}.a = {parent}.a{selection}{inner})"
                );
            }
            if !nested.is_empty() {
                clauses.push(nested);
            }
            let mut sql = format!("SELECT T0.a FROM {}", from.join(", "));
            if !clauses.is_empty() {
                sql.push_str(" WHERE ");
                sql.push_str(&clauses.join(" AND "));
            }
            Request {
                id: i as u64,
                sql,
                formats: vec![Format::Ascii, Format::Svg],
            }
        })
        .collect()
}

fn bench_cold_synthetic(c: &mut Criterion) {
    let requests = synthetic_requests(512);
    let mut group = c.benchmark_group("service/cold_synthetic_512");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                let service = fresh_service();
                black_box(service.execute_batch(black_box(&requests), threads))
            })
        });
    }
    group.finish();
}

fn bench_warm(c: &mut Criterion) {
    let requests = corpus();
    let mut group = c.benchmark_group("service/warm_batch");
    for threads in [1usize, 4] {
        let service = fresh_service();
        // Pre-warm: all patterns compiled and all artifacts rendered.
        service.execute_batch(&requests, threads);
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| black_box(service.execute_batch(black_box(&requests), threads)))
        });
    }
    group.finish();
}

fn bench_single_request_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/single");
    let sql = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
               (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
               (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                AND S.drink = L.drink))";
    let request = Request {
        id: 0,
        sql: sql.to_string(),
        formats: vec![Format::Ascii],
    };
    group.bench_function("cold_compile", |b| {
        b.iter(|| {
            let service = fresh_service();
            black_box(service.handle(black_box(&request)))
        })
    });
    let service = fresh_service();
    service.handle(&request);
    group.bench_function("warm_hit", |b| {
        b.iter(|| black_box(service.handle(black_box(&request))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold,
    bench_cold_synthetic,
    bench_warm,
    bench_single_request_paths
);
criterion_main!(benches);
