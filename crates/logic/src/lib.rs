//! # queryvis-logic
//!
//! The first-order-logic layer of QueryVis (paper §4.7, §5.1, Appendix A):
//!
//! * [`lt`] — the **Logic Tree (LT)**: a rooted tree of query blocks, each
//!   holding its tables, conjunctive predicates, and quantifier (∃, ∄, ∀).
//! * [`translate`] — SQL AST → LT, de-sugaring `IN` / `NOT IN` /
//!   `ANY` / `ALL` into the corresponding quantifiers (and `HAVING` into
//!   post-grouping predicates on the root block).
//! * [`disjunction`] — polarity-aware `OR` lowering: negative-polarity
//!   disjunctions become sibling ∄-groups, positive-polarity ones split
//!   the query into union branches (`translate_branches`).
//! * [`simplify`] — the De Morgan rewrite ∄·∄ → ∀·∃ that introduces the
//!   universal quantifier (a construct SQL itself lacks).
//! * [`validate`] — the *non-degeneracy* properties 5.1 (local attributes)
//!   and 5.2 (connected subqueries) under which diagrams are provably
//!   unambiguous, plus the depth ≤ 3 validity bound.
//! * [`trc`] — rendering of an LT as a tuple-relational-calculus expression
//!   (paper Fig. 9).

pub mod disjunction;
pub mod lt;
pub mod simplify;
pub mod translate;
pub mod trc;
pub mod validate;

pub use disjunction::{has_disjunction, lower_disjunctions, MAX_DISJUNCTION_BRANCHES};
pub use lt::{
    AttrRef, LogicTree, LtHaving, LtNode, LtOperand, LtPredicate, LtTable, NodeId, Quantifier,
    SelectAttr,
};
pub use simplify::{simplify, simplify_in_place, SimplifyPass};
pub use translate::{translate, translate_branches, TranslateError};
pub use trc::to_trc;
pub use validate::{
    check_non_degenerate, check_valid_diagram_source, DegeneracyError, ValidatePass,
    MAX_DIAGRAM_DEPTH,
};

#[cfg(test)]
mod tests {
    use super::*;
    use queryvis_sql::parse_query;

    #[test]
    fn end_to_end_unique_set() {
        let q = parse_query(
            "SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
               SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker \
               AND NOT EXISTS( \
                 SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker \
                 AND NOT EXISTS( \
                   SELECT * FROM Likes L4 WHERE L4.drinker = L1.drinker \
                   AND L4.beer = L3.beer)) \
               AND NOT EXISTS( \
                 SELECT * FROM Likes L5 WHERE L5.drinker = L1.drinker \
                 AND NOT EXISTS( \
                   SELECT * FROM Likes L6 WHERE L6.drinker = L2.drinker \
                   AND L6.beer = L5.beer)))",
        )
        .unwrap();
        let lt = translate(&q, None).unwrap();
        assert_eq!(lt.node_count(), 6);
        assert_eq!(lt.max_depth(), 3);
        check_non_degenerate(&lt).unwrap();

        let simplified = simplify(&lt);
        // L3 and L5 become ∀; L4 and L6 become ∃; L2 stays ∄ (two children).
        let foralls = simplified
            .nodes()
            .filter(|n| n.quantifier == Quantifier::ForAll)
            .count();
        let exists = simplified
            .nodes()
            .filter(|n| n.quantifier == Quantifier::Exists && !n.is_root())
            .count();
        assert_eq!(foralls, 2);
        assert_eq!(exists, 2);
    }
}
