//! Non-degeneracy validation (paper §5.1) and diagram-validity bounds.
//!
//! QueryVis diagrams are provably unambiguous only for *non-degenerate*
//! queries of nesting depth ≤ 3. The two properties:
//!
//! * **Property 5.1 (local attributes)** — every predicate in a query block
//!   references at least one attribute of a table from that same block.
//!   A violating predicate could be pulled up to an ancestor, and after
//!   De Morgan it would express a *disjunction*, which is outside the
//!   fragment.
//! * **Property 5.2 (connected subqueries)** — every nested block either
//!   has a predicate referencing an attribute of its parent block, or each
//!   of its directly nested blocks references both it and its parent.

use crate::lt::{LogicTree, LtNode, LtOperand, NodeId};
use std::fmt;

/// The depth bound for which diagrams are proven unambiguous (paper §5.2).
pub const MAX_DIAGRAM_DEPTH: usize = 3;

/// A violation of the non-degeneracy properties (or the depth bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegeneracyError {
    /// Property 5.1: a predicate without any local attribute.
    NonLocalPredicate { node: NodeId, predicate: String },
    /// Property 5.2: a block with no logical connection to its parent.
    DisconnectedBlock { node: NodeId },
    /// The tree exceeds the unambiguity depth bound of 3.
    TooDeep { depth: usize },
    /// A HAVING predicate on a tree with no grouping attributes — the
    /// post-grouping block it would attach to does not exist. The parser
    /// cannot produce this; it guards hand-constructed trees.
    HavingWithoutGrouping,
}

impl fmt::Display for DegeneracyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegeneracyError::NonLocalPredicate { node, predicate } => write!(
                f,
                "Property 5.1 violated: predicate {predicate} in block {node} \
                 references no local attribute (it encodes a disjunction)"
            ),
            DegeneracyError::DisconnectedBlock { node } => write!(
                f,
                "Property 5.2 violated: block {node} has no predicate linking \
                 it (or all of its children) to its parent block"
            ),
            DegeneracyError::TooDeep { depth } => write!(
                f,
                "nesting depth {depth} exceeds the unambiguity bound of {MAX_DIAGRAM_DEPTH}"
            ),
            DegeneracyError::HavingWithoutGrouping => write!(
                f,
                "HAVING predicates require grouping attributes on the root block"
            ),
        }
    }
}

impl std::error::Error for DegeneracyError {}

/// Check Properties 5.1 and 5.2 (plus the HAVING attachment rule).
/// Returns the first violation found.
pub fn check_non_degenerate(tree: &LogicTree) -> Result<(), DegeneracyError> {
    check_local_attributes(tree)?;
    check_connected_subqueries(tree)?;
    check_having_attachment(tree)?;
    Ok(())
}

/// HAVING conjuncts attach to the grouping block; a tree carrying them
/// without grouping attributes has no such block.
pub fn check_having_attachment(tree: &LogicTree) -> Result<(), DegeneracyError> {
    if !tree.having.is_empty() && tree.group_by.is_empty() {
        return Err(DegeneracyError::HavingWithoutGrouping);
    }
    Ok(())
}

/// Check non-degeneracy *and* the depth ≤ 3 bound — i.e. whether the tree
/// is a valid source for a provably unambiguous diagram (paper §5.2).
pub fn check_valid_diagram_source(tree: &LogicTree) -> Result<(), DegeneracyError> {
    let depth = tree.max_depth();
    if depth > MAX_DIAGRAM_DEPTH {
        return Err(DegeneracyError::TooDeep { depth });
    }
    check_non_degenerate(tree)
}

/// Non-degeneracy validation as a composable IR pass (read-only: fails the
/// pipeline on the first violated property instead of mutating).
///
/// `strict_depth` additionally enforces the depth ≤ 3 unambiguity bound —
/// the strict-mode configuration of `QueryVis::prepare`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidatePass {
    pub strict_depth: bool,
}

impl ValidatePass {
    /// [`queryvis_ir::PassContext`] fact key: the structured
    /// [`DegeneracyError`] behind a failed run (the [`queryvis_ir::PassError`]
    /// itself carries only the rendered message).
    pub const ERROR_FACT: &'static str = "validate.degeneracy_error";
}

impl queryvis_ir::Pass<LogicTree> for ValidatePass {
    fn name(&self) -> &'static str {
        "validate-non-degenerate"
    }

    fn run(
        &self,
        ir: &mut LogicTree,
        cx: &mut queryvis_ir::PassContext,
    ) -> Result<queryvis_ir::PassEffect, queryvis_ir::PassError> {
        let result = if self.strict_depth {
            check_valid_diagram_source(ir)
        } else {
            check_non_degenerate(ir)
        };
        if let Err(e) = result {
            let rendered = e.to_string();
            cx.put_fact(Self::ERROR_FACT, e);
            return Err(queryvis_ir::PassError::new(self.name(), rendered));
        }
        Ok(queryvis_ir::PassEffect::Unchanged)
    }
}

/// Property 5.1.
pub fn check_local_attributes(tree: &LogicTree) -> Result<(), DegeneracyError> {
    for node in tree.nodes() {
        for pred in &node.predicates {
            if !references_local(node, pred) {
                return Err(DegeneracyError::NonLocalPredicate {
                    node: node.id,
                    predicate: pred.to_string(),
                });
            }
        }
    }
    Ok(())
}

fn references_local(node: &LtNode, pred: &crate::lt::LtPredicate) -> bool {
    if node.defines(pred.lhs.binding) {
        return true;
    }
    match pred.rhs {
        LtOperand::Attr(a) => node.defines(a.binding),
        LtOperand::Const(_) => false,
    }
}

/// Property 5.2.
pub fn check_connected_subqueries(tree: &LogicTree) -> Result<(), DegeneracyError> {
    for node in tree.nodes() {
        let Some(parent) = node.parent else { continue };
        if references_node(tree, node, parent) {
            continue;
        }
        // Fallback: every direct child must reference both `node` and its
        // parent.
        let ok = !node.children.is_empty()
            && node.children.iter().all(|&c| {
                let child = tree.node(c);
                references_node(tree, child, node.id) && references_node(tree, child, parent)
            });
        if !ok {
            return Err(DegeneracyError::DisconnectedBlock { node: node.id });
        }
    }
    Ok(())
}

/// True if any predicate of `node` references an attribute of a table
/// introduced by block `target`.
fn references_node(tree: &LogicTree, node: &LtNode, target: NodeId) -> bool {
    let target_node = tree.node(target);
    node.predicates.iter().any(|p| {
        target_node.defines(p.lhs.binding)
            || matches!(p.rhs, LtOperand::Attr(a) if target_node.defines(a.binding))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use queryvis_sql::parse_query;

    fn lt(sql: &str) -> LogicTree {
        translate(&parse_query(sql).unwrap(), None).unwrap()
    }

    #[test]
    fn well_formed_query_passes() {
        let tree = lt("SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
             (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))");
        check_non_degenerate(&tree).unwrap();
        check_valid_diagram_source(&tree).unwrap();
    }

    #[test]
    fn paper_example_violates_local_attributes() {
        // §5.1: the predicate F.bar = 'Owl' sits in the Serves block but
        // references only the outer Frequents binding — a smuggled
        // disjunction.
        let tree = lt("SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND F.bar = 'Owl')");
        let err = check_non_degenerate(&tree).unwrap_err();
        assert!(
            matches!(err, DegeneracyError::NonLocalPredicate { node: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn non_local_join_predicate_detected() {
        // Both sides of the join live in ancestor blocks.
        let tree = lt("SELECT A.x FROM A, B WHERE A.x = B.x AND NOT EXISTS \
             (SELECT * FROM C WHERE A.y = B.y)");
        let err = check_local_attributes(&tree).unwrap_err();
        assert!(matches!(err, DegeneracyError::NonLocalPredicate { .. }));
    }

    #[test]
    fn disconnected_block_detected() {
        // The subquery never references the outer block.
        let tree = lt("SELECT A.x FROM A WHERE NOT EXISTS \
             (SELECT * FROM B WHERE B.y = 'z')");
        let err = check_connected_subqueries(&tree).unwrap_err();
        assert_eq!(err, DegeneracyError::DisconnectedBlock { node: 1 });
    }

    #[test]
    fn grandchild_bridge_satisfies_property_52() {
        // Block B does not reference A directly, but its only child C
        // references both B and A — the second arm of Property 5.2.
        let tree = lt("SELECT A.x FROM A WHERE NOT EXISTS( \
               SELECT * FROM B WHERE B.k = 1 AND NOT EXISTS( \
                 SELECT * FROM C WHERE C.u = B.u AND C.v = A.v))");
        check_connected_subqueries(&tree).unwrap();
    }

    #[test]
    fn grandchild_bridge_must_cover_all_children() {
        // Two children; only one bridges to the grandparent.
        let tree = lt("SELECT A.x FROM A WHERE NOT EXISTS( \
               SELECT * FROM B WHERE B.k = 1 \
               AND NOT EXISTS(SELECT * FROM C WHERE C.u = B.u AND C.v = A.v) \
               AND NOT EXISTS(SELECT * FROM D WHERE D.u = B.u))");
        let err = check_connected_subqueries(&tree).unwrap_err();
        assert_eq!(err, DegeneracyError::DisconnectedBlock { node: 1 });
    }

    #[test]
    fn depth_bound_enforced() {
        let tree = lt("SELECT A.a FROM A WHERE NOT EXISTS( \
              SELECT * FROM B WHERE B.a = A.a AND NOT EXISTS( \
               SELECT * FROM C WHERE C.b = B.b AND NOT EXISTS( \
                SELECT * FROM D WHERE D.c = C.c AND NOT EXISTS( \
                 SELECT * FROM E WHERE E.d = D.d))))");
        assert_eq!(
            check_valid_diagram_source(&tree).unwrap_err(),
            DegeneracyError::TooDeep { depth: 4 }
        );
        // Non-degeneracy itself holds; only the depth bound fails.
        check_non_degenerate(&tree).unwrap();
    }

    #[test]
    fn selection_predicate_is_local() {
        let tree = lt("SELECT B.bid FROM Boat B WHERE B.color = 'red'");
        check_non_degenerate(&tree).unwrap();
    }
}
