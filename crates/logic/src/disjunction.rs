//! Disjunction lowering: rewrite `OR` out of the AST before translation.
//!
//! QueryVis diagrams render *conjunctive* blocks; the follow-up work the
//! reproduction tracks (Principles of Query Visualization; the Tutorial on
//! Visual Representations of Relational Queries) handles disjunction by
//! normalizing it away. This module implements that convention,
//! **polarity-aware**:
//!
//! * Under an *even* number of negations (the root block, `EXISTS`, `IN`,
//!   `= ANY`, `NOT … ALL`), a disjunction distributes outward:
//!   `∃t(a ∨ b) ≡ ∃t(a) ∨ ∃t(b)`. The split propagates to the top and the
//!   query becomes a **union of conjunctive queries** — rendered exactly
//!   like a written `UNION`, one diagram per branch.
//! * Under an *odd* number of negations (`NOT EXISTS`, `NOT IN`, `ALL`,
//!   `NOT … ANY`), De Morgan turns the disjunction into a conjunction of
//!   sibling negated blocks: `¬∃t(a ∨ b) ≡ ¬∃t(a) ∧ ¬∃t(b)`. The block
//!   splits into **sibling ∄-groups** inside one diagram — the tutorial's
//!   sibling-group convention.
//!
//! Both rewrites preserve set semantics (the fragment's implied semantics;
//! under `UNION ALL` a root split may change multiplicities, which the
//! docs call out). The cross-product of independent disjunctions is capped
//! at [`MAX_DISJUNCTION_BRANCHES`] per block so an adversarial request
//! cannot blow up the service; grouped queries refuse root-level splits
//! (splitting a `GROUP BY` across branches would change aggregate results).

use crate::translate::TranslateError;
use queryvis_sql::{Predicate, Query};

/// Upper bound on the conjunctive branches any single block may expand
/// into (and on the final number of root branches).
pub const MAX_DISJUNCTION_BRANCHES: usize = 32;

/// True if the query contains any `OR` anywhere (cheap pre-check so
/// OR-free queries skip lowering entirely, clone included).
pub fn has_disjunction(query: &Query) -> bool {
    query.has_disjunction()
}

/// Lower every disjunction in `query`, returning the equivalent union of
/// OR-free conjunctive queries (in deterministic branch order: choices
/// expand left-to-right, textual order first). A query without `OR`
/// returns itself as the single branch.
pub fn lower_disjunctions(query: &Query) -> Result<Vec<Query>, TranslateError> {
    if !has_disjunction(query) {
        return Ok(vec![query.clone()]);
    }
    let branches = expand_query(query)?;
    if branches.len() > 1 && query.uses_grouping() {
        return Err(TranslateError::DisjunctiveAggregate);
    }
    Ok(branches)
}

/// Cross a running set of conjunctions with one conjunct's choices,
/// enforcing the branch cap **before** materializing the product — an
/// adversarial chain of independent disjunctions must fail in O(1), not
/// after cloning an exponential number of predicate vectors.
fn cross_capped(
    base: Vec<Vec<Predicate>>,
    choices: &[Vec<Predicate>],
) -> Result<Vec<Vec<Predicate>>, TranslateError> {
    let product = base.len().saturating_mul(choices.len());
    if product > MAX_DISJUNCTION_BRANCHES {
        return Err(TranslateError::DisjunctionTooWide { branches: product });
    }
    let mut next = Vec::with_capacity(product);
    for combination in &base {
        for choice in choices {
            let mut combined = combination.clone();
            combined.extend(choice.iter().cloned());
            next.push(combined);
        }
    }
    Ok(next)
}

/// Expand one block into OR-free queries whose union is equivalent.
fn expand_query(query: &Query) -> Result<Vec<Query>, TranslateError> {
    // Each conjunct contributes a *choice list*: the disjunctive
    // alternatives it expands to, each alternative being a conjunction
    // chunk. The block's expansions are the cross product of the choices.
    let mut wheres: Vec<Vec<Predicate>> = vec![Vec::new()];
    for conjunct in &query.where_clause {
        let choices = pred_choices(conjunct)?;
        wheres = cross_capped(wheres, &choices)?;
    }
    // Dedup identical branches (`a OR a`), preserving first-seen order.
    let mut unique: Vec<Vec<Predicate>> = Vec::with_capacity(wheres.len());
    for w in wheres {
        if !unique.contains(&w) {
            unique.push(w);
        }
    }
    Ok(unique
        .into_iter()
        .map(|where_clause| Query {
            select: query.select.clone(),
            from: query.from.clone(),
            where_clause,
            group_by: query.group_by.clone(),
            having: query.having.clone(),
        })
        .collect())
}

/// The disjunctive alternatives one conjunct expands to. A single-element
/// result means the conjunct does not split (possibly because its inner
/// disjunctions De-Morganed into a conjunction of siblings).
fn pred_choices(pred: &Predicate) -> Result<Vec<Vec<Predicate>>, TranslateError> {
    match pred {
        Predicate::Compare { .. } => Ok(vec![vec![pred.clone()]]),
        // ∃-flavored subqueries (positive polarity): the subquery's union
        // branches become alternatives of this conjunct.
        Predicate::Exists {
            negated: false,
            query,
        } => Ok(expand_query(query)?
            .into_iter()
            .map(|q| {
                vec![Predicate::Exists {
                    negated: false,
                    query: Box::new(q),
                }]
            })
            .collect()),
        // ∄-flavored subqueries (negative polarity): De Morgan — one
        // alternative holding a sibling negated block per union branch.
        Predicate::Exists {
            negated: true,
            query,
        } => Ok(vec![expand_query(query)?
            .into_iter()
            .map(|q| Predicate::Exists {
                negated: true,
                query: Box::new(q),
            })
            .collect()]),
        Predicate::InSubquery {
            column,
            negated,
            query,
        } => {
            let rebuilt = |q: Query| Predicate::InSubquery {
                column: *column,
                negated: *negated,
                query: Box::new(q),
            };
            let subs = expand_query(query)?;
            if *negated {
                Ok(vec![subs.into_iter().map(rebuilt).collect()])
            } else {
                Ok(subs.into_iter().map(|q| vec![rebuilt(q)]).collect())
            }
        }
        Predicate::Quantified {
            column,
            op,
            quantifier,
            negated,
            query,
        } => {
            use queryvis_sql::ast::SubqueryQuantifier as SQ;
            let rebuilt = |q: Query| Predicate::Quantified {
                column: *column,
                op: *op,
                quantifier: *quantifier,
                negated: *negated,
                query: Box::new(q),
            };
            // The quantifier's effective polarity mirrors the translator's
            // de-sugaring table: ANY ≈ ∃, ALL ≈ ∄, NOT flips.
            let positive = match (quantifier, negated) {
                (SQ::Any, false) | (SQ::All, true) => true,
                (SQ::Any, true) | (SQ::All, false) => false,
            };
            let subs = expand_query(query)?;
            if positive {
                Ok(subs.into_iter().map(|q| vec![rebuilt(q)]).collect())
            } else {
                Ok(vec![subs.into_iter().map(rebuilt).collect()])
            }
        }
        // A written disjunction: the alternatives of every branch, in
        // branch order. Branches are conjunctions, so each expands through
        // its own cross product first.
        Predicate::Or(branches) => {
            let mut choices = Vec::new();
            for branch in branches {
                let mut partial: Vec<Vec<Predicate>> = vec![Vec::new()];
                for conjunct in branch {
                    let conjunct_choices = pred_choices(conjunct)?;
                    partial = cross_capped(partial, &conjunct_choices)?;
                }
                choices.extend(partial);
                if choices.len() > MAX_DISJUNCTION_BRANCHES {
                    return Err(TranslateError::DisjunctionTooWide {
                        branches: choices.len(),
                    });
                }
            }
            Ok(choices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use queryvis_sql::parse_query;
    use queryvis_sql::printer::to_sql_one_line;

    fn branches(sql: &str) -> Vec<String> {
        lower_disjunctions(&parse_query(sql).unwrap())
            .unwrap()
            .iter()
            .map(to_sql_one_line)
            .collect()
    }

    #[test]
    fn or_free_query_is_untouched() {
        let q = parse_query("SELECT T.a FROM T WHERE T.a = 1").unwrap();
        let lowered = lower_disjunctions(&q).unwrap();
        assert_eq!(lowered, vec![q]);
    }

    #[test]
    fn root_or_splits_into_union_branches() {
        let bs = branches("SELECT T.a FROM T WHERE T.a = 1 OR T.b = 2");
        assert_eq!(bs.len(), 2);
        assert!(bs[0].contains("T.a = 1") && !bs[0].contains("T.b"));
        assert!(bs[1].contains("T.b = 2") && !bs[1].contains("T.a = 1"));
    }

    #[test]
    fn and_distributes_over_or() {
        let bs = branches("SELECT T.a FROM T WHERE T.x = 9 AND (T.a = 1 OR T.b = 2)");
        assert_eq!(bs.len(), 2);
        for b in &bs {
            assert!(b.contains("T.x = 9"), "{b}");
        }
    }

    #[test]
    fn two_disjunctions_cross_product() {
        let bs = branches("SELECT T.a FROM T WHERE (T.a = 1 OR T.b = 2) AND (T.c = 3 OR T.d = 4)");
        assert_eq!(bs.len(), 4);
    }

    #[test]
    fn not_exists_or_becomes_sibling_groups() {
        // ¬∃S(a ∨ b) ≡ ¬∃S(a) ∧ ¬∃S(b): one branch, two sibling blocks.
        let bs = branches(
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND \
              (S.drink = 'IPA' OR S.drink = 'Stout'))",
        );
        assert_eq!(bs.len(), 1, "{bs:?}");
        assert_eq!(bs[0].matches("NOT EXISTS").count(), 2, "{bs:?}");
    }

    #[test]
    fn exists_or_lifts_to_the_root() {
        let bs = branches(
            "SELECT F.person FROM Frequents F WHERE EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND \
              (S.drink = 'IPA' OR S.drink = 'Stout'))",
        );
        assert_eq!(bs.len(), 2, "{bs:?}");
    }

    #[test]
    fn all_quantifier_is_negative_polarity() {
        let bs = branches(
            "SELECT T.a FROM T WHERE T.a >= ALL \
             (SELECT S.b FROM S WHERE S.x = 1 OR S.y = 2)",
        );
        assert_eq!(bs.len(), 1, "{bs:?}");
        assert_eq!(bs[0].matches(">= ALL").count(), 2, "{bs:?}");
    }

    #[test]
    fn duplicate_disjuncts_dedup() {
        let bs = branches("SELECT T.a FROM T WHERE T.a = 1 OR T.a = 1");
        assert_eq!(bs.len(), 1);
    }

    #[test]
    fn grouped_query_refuses_root_split() {
        let q = parse_query("SELECT T.a, COUNT(T.b) FROM T WHERE T.a = 1 OR T.b = 2 GROUP BY T.a")
            .unwrap();
        assert_eq!(
            lower_disjunctions(&q).unwrap_err(),
            TranslateError::DisjunctiveAggregate
        );
        // But a negative-polarity OR under grouping is fine.
        let q = parse_query(
            "SELECT T.a, COUNT(T.b) FROM T WHERE NOT EXISTS \
             (SELECT * FROM S WHERE S.a = T.a AND (S.x = 1 OR S.y = 2)) \
             GROUP BY T.a",
        )
        .unwrap();
        assert_eq!(lower_disjunctions(&q).unwrap().len(), 1);
    }

    #[test]
    fn explosion_inside_an_or_branch_fails_fast() {
        // An OR whose branch is a conjunction of subqueries, each itself
        // expanding to many branches: the per-conjunct cap must fire on
        // the *product size* before materializing it (a few-hundred-token
        // request must never clone an exponential number of predicate
        // vectors — this returned after 32^4 clones before the cap moved
        // into the cross product).
        let exists = |i: usize| {
            format!(
                "EXISTS (SELECT * FROM E{i} WHERE E{i}.k = T.a AND {})",
                (0..5)
                    .map(|j| format!("(E{i}.a{j} = 1 OR E{i}.b{j} = 2)"))
                    .collect::<Vec<_>>()
                    .join(" AND ")
            )
        };
        let sql = format!(
            "SELECT T.a FROM T WHERE ({} OR T.x = 0)",
            (0..4).map(exists).collect::<Vec<_>>().join(" AND ")
        );
        let q = parse_query(&sql).unwrap();
        let start = std::time::Instant::now();
        assert!(matches!(
            lower_disjunctions(&q).unwrap_err(),
            TranslateError::DisjunctionTooWide { .. }
        ));
        assert!(
            start.elapsed() < std::time::Duration::from_millis(250),
            "cap fired only after materializing the cross product"
        );
    }

    #[test]
    fn explosion_is_capped() {
        // 2^6 = 64 > 32 branches.
        let sql = format!(
            "SELECT T.a FROM T WHERE {}",
            (0..6)
                .map(|i| format!("(T.a{i} = 1 OR T.b{i} = 2)"))
                .collect::<Vec<_>>()
                .join(" AND ")
        );
        let q = parse_query(&sql).unwrap();
        assert!(matches!(
            lower_disjunctions(&q).unwrap_err(),
            TranslateError::DisjunctionTooWide { .. }
        ));
    }
}
