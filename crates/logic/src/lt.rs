//! The Logic Tree (LT) representation — re-exported from the shared
//! pattern IR.
//!
//! The pattern node types ([`LogicTree`], [`LtNode`], [`LtTable`],
//! [`LtPredicate`], [`AttrRef`], …) moved to `queryvis-ir`: they are the
//! load-bearing data structure of the whole pipeline (the sql front end
//! lowers into them, this crate rewrites them, the diagram builder and the
//! serving layer's fingerprints consume them), so they live at the bottom
//! of the crate graph with interned [`queryvis_ir::Symbol`] names and
//! arena storage. This module keeps the historical `queryvis_logic::lt`
//! paths working.

pub use queryvis_ir::pattern::{
    AttrRef, LogicTree, LtHaving, LtNode, LtOperand, LtPredicate, LtTable, NodeId, Quantifier,
    SelectAttr,
};
