//! Tuple relational calculus rendering of a logic tree (paper Fig. 9).
//!
//! The LT *is* the TRC expression with nesting made explicit as a tree; this
//! module renders it back in the familiar set-builder notation, e.g. for the
//! unique-set query:
//!
//! ```text
//! {Q(L1.drinker) | ∃ L1 ∈ Likes [
//!   ∄ L2 ∈ Likes [(L1.drinker <> L2.drinker) ∧ ...]]}
//! ```

use crate::lt::{LogicTree, NodeId, SelectAttr};

/// Render the logic tree as a (pretty-printed, multi-line) TRC expression.
pub fn to_trc(tree: &LogicTree) -> String {
    let mut out = String::new();
    let head: Vec<String> = tree.select.iter().map(SelectAttr::to_string).collect();
    out.push_str("{Q(");
    out.push_str(&head.join(", "));
    out.push_str(") | ");
    render_node(tree, 0, 1, &mut out);
    out.push('}');
    out
}

fn indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_node(tree: &LogicTree, id: NodeId, level: usize, out: &mut String) {
    let node = tree.node(id);
    // Quantifier binder: `∃ L1 ∈ Likes, L2 ∈ Serves`.
    let quant = if node.is_root() {
        "\u{2203}".to_string()
    } else {
        node.quantifier.symbol().to_string()
    };
    let binders: Vec<String> = node
        .tables
        .iter()
        .map(|t| format!("{} \u{2208} {}", t.alias, t.table))
        .collect();
    out.push_str(&quant);
    out.push(' ');
    out.push_str(&binders.join(", "));
    out.push_str(" [");
    let mut first = true;
    for pred in &node.predicates {
        if !first {
            out.push_str(" \u{2227}"); // ∧
        }
        indent(out, level);
        out.push_str(&pred.to_string());
        first = false;
    }
    for &child in &node.children {
        if !first {
            out.push_str(" \u{2227}");
        }
        indent(out, level);
        render_node(tree, child, level + 1, out);
        first = false;
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use queryvis_sql::parse_query;

    #[test]
    fn trc_of_qonly() {
        let q = parse_query(
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
             (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))",
        )
        .unwrap();
        let tree = translate(&q, None).unwrap();
        let trc = to_trc(&tree);
        assert!(trc.starts_with("{Q(F.person) | \u{2203} F \u{2208} Frequents ["));
        assert!(trc.contains("\u{2204} S \u{2208} Serves ["));
        assert!(trc.contains("(S.bar = F.bar)"));
        assert!(trc.contains("\u{2227}")); // conjunction symbol present
        assert!(trc.ends_with('}'));
    }

    #[test]
    fn trc_balanced_brackets() {
        let q = parse_query(
            "SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
             SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker AND NOT EXISTS( \
             SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker))",
        )
        .unwrap();
        let trc = to_trc(&translate(&q, None).unwrap());
        let opens = trc.matches('[').count();
        let closes = trc.matches(']').count();
        assert_eq!(opens, closes);
        assert_eq!(opens, 3);
    }

    #[test]
    fn trc_multi_table_block() {
        let q = parse_query(
            "SELECT A.ArtistId FROM Artist A WHERE NOT EXISTS \
             (SELECT * FROM Album AL, Track T WHERE A.ArtistId = AL.ArtistId \
              AND AL.AlbumId = T.AlbumId AND T.Composer = A.Name)",
        )
        .unwrap();
        let trc = to_trc(&translate(&q, None).unwrap());
        assert!(trc.contains("AL \u{2208} Album, T \u{2208} Track"));
    }
}
