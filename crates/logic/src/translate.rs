//! SQL AST → Logic Tree translation (paper §4.7, Appendix A.1).
//!
//! Each query block becomes one [`LtNode`]. Subquery predicates are
//! de-sugared into quantified child nodes, removing the syntactic variance
//! of SQL (`IN`, `NOT IN`, `ANY`, `ALL` "do not add expressiveness"):
//!
//! | SQL predicate            | child quantifier | extra predicate in child |
//! |--------------------------|------------------|--------------------------|
//! | `EXISTS (Q)`             | ∃                | —                        |
//! | `NOT EXISTS (Q)`         | ∄                | —                        |
//! | `x IN (Q)`               | ∃                | `x = sel(Q)`             |
//! | `x NOT IN (Q)`           | ∄                | `x = sel(Q)`             |
//! | `x op ANY (Q)`           | ∃                | `x op sel(Q)`            |
//! | `NOT x op ANY (Q)`       | ∄                | `x op sel(Q)`            |
//! | `x op ALL (Q)`           | ∄                | `x ¬op sel(Q)`           |
//! | `NOT x op ALL (Q)`       | ∃                | `x ¬op sel(Q)`           |
//!
//! where `sel(Q)` is the single column of `Q`'s SELECT list and `¬op` is the
//! logical negation of `op` (`x op ALL Q ≡ ∄ t ∈ Q : x ¬op t`).

use crate::lt::{
    AttrRef, LogicTree, LtHaving, LtPredicate, LtTable, NodeId, Quantifier, SelectAttr,
};
use queryvis_ir::Symbol;
use queryvis_sql::{
    ColumnRef, CompareOp, Operand, Predicate, Query, Schema, SelectItem, SelectList,
};
use std::collections::HashMap;
use std::fmt;

/// Errors produced during SQL → LT translation.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// A qualified column names a binding that is not in scope.
    UnknownBinding { binding: String },
    /// An unqualified column cannot be resolved (no schema given and more
    /// than one candidate binding in scope, or schema lookup failed).
    UnresolvedColumn { column: String },
    /// An unqualified column matches several bindings.
    AmbiguousColumn { column: String },
    /// A FROM table is missing from the provided schema.
    UnknownTable { table: String },
    /// An `IN`/`ANY`/`ALL` subquery whose SELECT list is not one plain column.
    BadSubquerySelect,
    /// A predicate compares two constants (outside the fragment).
    ConstantComparison,
    /// Aggregates / GROUP BY in a nested block (the extension covers only
    /// the root block, matching the study stimuli).
    NestedAggregate,
    /// A positive-polarity disjunction reached [`translate`] unlowered:
    /// it splits the query into several union branches, so the caller must
    /// go through [`translate_branches`] (or the diagram pipeline).
    UnloweredDisjunction { branches: usize },
    /// Disjunction lowering exceeded
    /// [`crate::disjunction::MAX_DISJUNCTION_BRANCHES`] branches.
    DisjunctionTooWide { branches: usize },
    /// An `OR` that would split a grouped (GROUP BY / aggregate) root
    /// block into union branches — that changes aggregate semantics, so it
    /// stays outside the supported fragment.
    DisjunctiveAggregate,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownBinding { binding } => {
                write!(f, "unknown table alias `{binding}`")
            }
            TranslateError::UnresolvedColumn { column } => {
                write!(f, "cannot resolve unqualified column `{column}`")
            }
            TranslateError::AmbiguousColumn { column } => {
                write!(f, "unqualified column `{column}` is ambiguous")
            }
            TranslateError::UnknownTable { table } => write!(f, "unknown table `{table}`"),
            TranslateError::BadSubquerySelect => write!(
                f,
                "IN/ANY/ALL subqueries must SELECT exactly one plain column"
            ),
            TranslateError::ConstantComparison => {
                write!(f, "predicate compares two constants")
            }
            TranslateError::NestedAggregate => {
                write!(
                    f,
                    "aggregates/GROUP BY are only supported in the root block"
                )
            }
            TranslateError::UnloweredDisjunction { branches } => {
                write!(
                    f,
                    "disjunction splits the query into {branches} union branches; \
                     translate it with translate_branches (the pipeline does)"
                )
            }
            TranslateError::DisjunctionTooWide { branches } => {
                write!(
                    f,
                    "disjunction lowering would produce {branches} branches, \
                     beyond the supported bound of {}",
                    crate::disjunction::MAX_DISJUNCTION_BRANCHES
                )
            }
            TranslateError::DisjunctiveAggregate => {
                write!(
                    f,
                    "`OR` that splits a grouped query into union branches is \
                     outside the supported fragment (it would change aggregate \
                     results); only disjunctions under an odd number of \
                     negations are allowed with GROUP BY"
                )
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a parsed query into its logic tree.
///
/// If `schema` is given, unqualified column references are resolved through
/// it; without a schema, unqualified references resolve only when the
/// enclosing scope has a single binding.
///
/// Disjunctions are lowered first (see [`crate::disjunction`]); if the
/// lowering stays within one branch (negative-polarity `OR`s become
/// sibling ∄-groups) the tree comes back directly, otherwise the query is
/// a union of conjunctive branches and the caller must use
/// [`translate_branches`].
pub fn translate(query: &Query, schema: Option<&Schema>) -> Result<LogicTree, TranslateError> {
    if crate::disjunction::has_disjunction(query) {
        let mut trees = translate_branches(query, schema)?;
        if trees.len() != 1 {
            return Err(TranslateError::UnloweredDisjunction {
                branches: trees.len(),
            });
        }
        return Ok(trees.pop().expect("one branch"));
    }
    translate_conjunctive(query, schema)
}

/// Translate a query into one logic tree per union branch after lowering
/// its disjunctions. OR-free queries yield exactly one tree.
pub fn translate_branches(
    query: &Query,
    schema: Option<&Schema>,
) -> Result<Vec<LogicTree>, TranslateError> {
    crate::disjunction::lower_disjunctions(query)?
        .iter()
        .map(|q| translate_conjunctive(q, schema))
        .collect()
}

/// [`translate`] for a query already known to be OR-free.
fn translate_conjunctive(
    query: &Query,
    schema: Option<&Schema>,
) -> Result<LogicTree, TranslateError> {
    let mut translator = Translator {
        tree: LogicTree::with_root(),
        scopes: Vec::new(),
        schema,
        used_keys: HashMap::new(),
    };
    translator.block(query, 0, true)?;
    Ok(translator.tree)
}

/// One in-scope binding: (alias as written, unique key, base table name).
#[derive(Clone, Copy)]
struct Binding {
    alias: Symbol,
    key: Symbol,
    table: Symbol,
}

struct Translator<'a> {
    tree: LogicTree,
    /// Stack of per-block binding lists, innermost last.
    scopes: Vec<Vec<Binding>>,
    schema: Option<&'a Schema>,
    /// Disambiguation counters for shadowed aliases.
    used_keys: HashMap<Symbol, usize>,
}

impl<'a> Translator<'a> {
    /// Translate one query block into node `node_id`; returns the resolved
    /// single select attribute if the block selects exactly one plain column
    /// (used for `IN`/`ANY`/`ALL` de-sugaring).
    fn block(
        &mut self,
        query: &Query,
        node_id: NodeId,
        is_root: bool,
    ) -> Result<Option<AttrRef>, TranslateError> {
        if !is_root && query.uses_grouping() {
            return Err(TranslateError::NestedAggregate);
        }

        // Bind the FROM tables.
        let mut bindings = Vec::new();
        for table_ref in &query.from {
            let alias = table_ref.binding();
            let key = self.unique_key(alias);
            self.tree.node_mut(node_id).tables.push(LtTable {
                key,
                alias,
                table: table_ref.table,
            });
            bindings.push(Binding {
                alias,
                key,
                table: table_ref.table,
            });
        }
        self.scopes.push(bindings);

        let result = self.block_body(query, node_id, is_root);
        self.scopes.pop();
        result
    }

    fn block_body(
        &mut self,
        query: &Query,
        node_id: NodeId,
        is_root: bool,
    ) -> Result<Option<AttrRef>, TranslateError> {
        // Select list (root: recorded on the tree; nested: returned for
        // de-sugaring).
        let mut single_select = None;
        match &query.select {
            SelectList::Star => {}
            SelectList::Items(items) => {
                if is_root {
                    for item in items {
                        let attr = match item {
                            SelectItem::Column(c) => SelectAttr::Column(self.resolve(c)?),
                            SelectItem::Aggregate(agg) => SelectAttr::Aggregate {
                                func: agg.func,
                                arg: match &agg.arg {
                                    Some(c) => Some(self.resolve(c)?),
                                    None => None,
                                },
                            },
                        };
                        self.tree.select.push(attr);
                    }
                } else if let [SelectItem::Column(c)] = items.as_slice() {
                    single_select = Some(self.resolve(c)?);
                }
            }
        }
        if is_root {
            for c in &query.group_by {
                let attr = self.resolve(c)?;
                self.tree.group_by.push(attr);
            }
            for h in &query.having {
                let arg = match &h.agg.arg {
                    Some(c) => Some(self.resolve(c)?),
                    None => None,
                };
                self.tree.having.push(LtHaving {
                    func: h.agg.func,
                    arg,
                    op: h.op,
                    value: h.value,
                });
            }
        }

        // Predicates.
        for pred in &query.where_clause {
            match pred {
                Predicate::Compare { lhs, op, rhs } => {
                    let lt_pred = self.comparison(lhs, *op, rhs)?;
                    self.tree.node_mut(node_id).predicates.push(lt_pred);
                }
                Predicate::Exists { negated, query } => {
                    let quant = if *negated {
                        Quantifier::NotExists
                    } else {
                        Quantifier::Exists
                    };
                    let child = self.tree.add_child(node_id, quant);
                    self.block(query, child, false)?;
                }
                Predicate::InSubquery {
                    column,
                    negated,
                    query,
                } => {
                    let outer = self.resolve(column)?;
                    let quant = if *negated {
                        Quantifier::NotExists
                    } else {
                        Quantifier::Exists
                    };
                    self.desugar_subquery(node_id, quant, outer, CompareOp::Eq, query)?;
                }
                Predicate::Quantified {
                    column,
                    op,
                    quantifier,
                    negated,
                    query,
                } => {
                    let outer = self.resolve(column)?;
                    use queryvis_sql::ast::SubqueryQuantifier as SQ;
                    let (quant, child_op) = match (quantifier, negated) {
                        (SQ::Any, false) => (Quantifier::Exists, *op),
                        (SQ::Any, true) => (Quantifier::NotExists, *op),
                        (SQ::All, false) => (Quantifier::NotExists, op.negate()),
                        (SQ::All, true) => (Quantifier::Exists, op.negate()),
                    };
                    self.desugar_subquery(node_id, quant, outer, child_op, query)?;
                }
                // Lowering runs before translation (see `translate`); a
                // surviving disjunction means the caller skipped it.
                Predicate::Or(branches) => {
                    return Err(TranslateError::UnloweredDisjunction {
                        branches: branches.len(),
                    })
                }
            }
        }
        Ok(single_select)
    }

    /// Translate a membership/quantified subquery into a quantified child
    /// node carrying the linking predicate `outer op sel(child)`.
    fn desugar_subquery(
        &mut self,
        parent: NodeId,
        quant: Quantifier,
        outer: AttrRef,
        op: CompareOp,
        query: &Query,
    ) -> Result<(), TranslateError> {
        let child = self.tree.add_child(parent, quant);
        let sel = self
            .block(query, child, false)?
            .ok_or(TranslateError::BadSubquerySelect)?;
        self.tree
            .node_mut(child)
            .predicates
            .push(LtPredicate::join(outer, op, sel));
        Ok(())
    }

    fn comparison(
        &mut self,
        lhs: &Operand,
        op: CompareOp,
        rhs: &Operand,
    ) -> Result<LtPredicate, TranslateError> {
        match (lhs, rhs) {
            (Operand::Column(l), Operand::Column(r)) => {
                Ok(LtPredicate::join(self.resolve(l)?, op, self.resolve(r)?))
            }
            (Operand::Column(l), Operand::Value(v)) => {
                Ok(LtPredicate::selection(self.resolve(l)?, op, *v))
            }
            // Constant-first comparisons are flipped so the attribute leads.
            (Operand::Value(v), Operand::Column(r)) => {
                Ok(LtPredicate::selection(self.resolve(r)?, op.flip(), *v))
            }
            (Operand::Value(_), Operand::Value(_)) => Err(TranslateError::ConstantComparison),
        }
    }

    /// Resolve a column reference to a unique binding key, honoring SQL
    /// scope rules (innermost block first; inner aliases shadow outer ones).
    fn resolve(&self, column: &ColumnRef) -> Result<AttrRef, TranslateError> {
        match column.table {
            Some(alias) => {
                for scope in self.scopes.iter().rev() {
                    // Fast path: exact symbol match (the common case, since
                    // queries almost always spell an alias consistently).
                    if let Some(b) = scope.iter().find(|b| {
                        b.alias == alias || b.alias.as_str().eq_ignore_ascii_case(alias.as_str())
                    }) {
                        return Ok(AttrRef::new(b.key, column.column));
                    }
                }
                Err(TranslateError::UnknownBinding {
                    binding: alias.to_string(),
                })
            }
            None => {
                // Schema-aware resolution if available; otherwise only a
                // unique binding in the innermost non-empty scope works.
                for scope in self.scopes.iter().rev() {
                    let candidates: Vec<&Binding> = match self.schema {
                        Some(schema) => scope
                            .iter()
                            .filter(|b| {
                                schema
                                    .table(b.table.as_str())
                                    .is_some_and(|t| t.has_column(column.column.as_str()))
                            })
                            .collect(),
                        None => scope.iter().collect(),
                    };
                    match candidates.len() {
                        0 => continue,
                        1 => return Ok(AttrRef::new(candidates[0].key, column.column)),
                        _ => {
                            return Err(TranslateError::AmbiguousColumn {
                                column: column.column.to_string(),
                            })
                        }
                    }
                }
                Err(TranslateError::UnresolvedColumn {
                    column: column.column.to_string(),
                })
            }
        }
    }

    /// Produce a globally unique binding key for an alias (shadowed aliases
    /// get a numeric suffix: `L`, `L#2`, `L#3`, ...).
    fn unique_key(&mut self, alias: Symbol) -> Symbol {
        let count = self.used_keys.entry(alias).or_insert(0);
        *count += 1;
        if *count == 1 {
            alias
        } else {
            Symbol::intern(&format!("{alias}#{count}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lt::LtOperand;
    use queryvis_sql::parse_query;
    use queryvis_sql::schema::beers_schema;

    fn lt(sql: &str) -> LogicTree {
        translate(&parse_query(sql).unwrap(), None).unwrap()
    }

    #[test]
    fn conjunctive_query_single_node() {
        let tree = lt("SELECT F.person FROM Frequents F, Likes L, Serves S \
             WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink");
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.root().tables.len(), 3);
        assert_eq!(tree.root().predicates.len(), 3);
        assert_eq!(tree.select.len(), 1);
    }

    #[test]
    fn exists_becomes_child() {
        let tree = lt("SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)");
        assert_eq!(tree.node_count(), 2);
        assert_eq!(tree.node(1).quantifier, Quantifier::NotExists);
        assert_eq!(tree.node(1).depth, 1);
        assert_eq!(tree.node(1).predicates.len(), 1);
    }

    #[test]
    fn in_subquery_desugars_to_exists_with_equality() {
        let tree = lt("SELECT S.sname FROM Sailor S WHERE S.sid IN \
             (SELECT R.sid FROM Reserves R)");
        assert_eq!(tree.node(1).quantifier, Quantifier::Exists);
        let p = &tree.node(1).predicates[0];
        assert_eq!(p.lhs, AttrRef::new("S", "sid"));
        assert_eq!(p.op, CompareOp::Eq);
        assert_eq!(p.rhs, LtOperand::Attr(AttrRef::new("R", "sid")));
    }

    #[test]
    fn not_in_desugars_to_not_exists() {
        let tree = lt("SELECT S.sname FROM Sailor S WHERE S.sid NOT IN \
             (SELECT R.sid FROM Reserves R)");
        assert_eq!(tree.node(1).quantifier, Quantifier::NotExists);
    }

    #[test]
    fn all_desugars_to_not_exists_with_negated_op() {
        let tree = lt("SELECT T.TrackId FROM Track T WHERE T.ms >= ALL \
             (SELECT T2.ms FROM Track T2)");
        assert_eq!(tree.node(1).quantifier, Quantifier::NotExists);
        let p = &tree.node(1).predicates[0];
        assert_eq!(p.op, CompareOp::Lt); // ¬(>=) = <
    }

    #[test]
    fn negated_any_desugars_to_not_exists() {
        let tree = lt("SELECT S.sname FROM Sailor S WHERE NOT S.sid = ANY \
             (SELECT R.sid FROM Reserves R)");
        assert_eq!(tree.node(1).quantifier, Quantifier::NotExists);
        assert_eq!(tree.node(1).predicates[0].op, CompareOp::Eq);
    }

    #[test]
    fn fig24_variants_share_fingerprint() {
        let v1 = lt("SELECT S.sname FROM Sailor S WHERE NOT EXISTS( \
             SELECT * FROM Reserves R WHERE R.sid = S.sid AND NOT EXISTS( \
             SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))");
        let v2 = lt("SELECT S.sname FROM Sailor S WHERE S.sid NOT IN( \
             SELECT R.sid FROM Reserves R WHERE R.bid NOT IN( \
             SELECT B.bid FROM Boat B WHERE B.color = 'red'))");
        let v3 = lt("SELECT S.sname FROM Sailor S WHERE NOT S.sid = ANY( \
             SELECT R.sid FROM Reserves R WHERE NOT R.bid = ANY( \
             SELECT B.bid FROM Boat B WHERE B.color = 'red'))");
        assert!(v1.structural_eq(&v2), "\n{v1}\nvs\n{v2}");
        assert!(v2.structural_eq(&v3), "\n{v2}\nvs\n{v3}");
    }

    #[test]
    fn shadowed_alias_gets_unique_key() {
        let tree = lt("SELECT L.drinker FROM Likes L WHERE NOT EXISTS \
             (SELECT * FROM Serves L WHERE L.bar = 'Owl')");
        assert_eq!(tree.node(0).tables[0].key, "L");
        assert_eq!(tree.node(1).tables[0].key, "L#2");
        // The inner predicate must reference the inner (shadowing) binding.
        assert_eq!(tree.node(1).predicates[0].lhs.binding, "L#2");
    }

    #[test]
    fn constant_flipped_to_rhs() {
        let tree = lt("SELECT T.a FROM T WHERE 3 < T.a");
        let p = &tree.root().predicates[0];
        assert_eq!(p.lhs, AttrRef::new("T", "a"));
        assert_eq!(p.op, CompareOp::Gt);
    }

    #[test]
    fn unqualified_resolution_without_schema_single_binding() {
        let tree = lt("SELECT drinker FROM Likes WHERE beer = 'IPA'");
        assert_eq!(tree.select.len(), 1);
        assert_eq!(tree.root().predicates[0].lhs.binding, "Likes");
    }

    #[test]
    fn unqualified_resolution_with_schema() {
        let q =
            parse_query("SELECT drinker FROM Frequents F, Serves S WHERE F.bar = S.bar").unwrap();
        let tree = translate(&q, Some(&beers_schema())).unwrap();
        // `drinker` exists only on Frequents.
        match &tree.select[0] {
            SelectAttr::Column(a) => assert_eq!(a.binding, "F"),
            other => panic!("unexpected select {other:?}"),
        }
    }

    #[test]
    fn ambiguous_unqualified_without_schema_errors() {
        let q = parse_query("SELECT drinker FROM Likes L, Frequents F WHERE L.a = F.b").unwrap();
        let err = translate(&q, None).unwrap_err();
        assert_eq!(
            err,
            TranslateError::AmbiguousColumn {
                column: "drinker".into()
            }
        );
    }

    #[test]
    fn nested_aggregate_rejected() {
        let q =
            parse_query("SELECT T.a FROM T WHERE EXISTS (SELECT COUNT(S.x) FROM S GROUP BY S.x)")
                .unwrap();
        assert_eq!(
            translate(&q, None).unwrap_err(),
            TranslateError::NestedAggregate
        );
    }

    #[test]
    fn group_by_recorded_on_tree() {
        let tree = lt("SELECT T.AlbumId, MAX(T.ms) FROM Track T GROUP BY T.AlbumId");
        assert_eq!(tree.group_by.len(), 1);
        assert_eq!(tree.select.len(), 2);
        assert!(matches!(
            tree.select[1],
            SelectAttr::Aggregate {
                func: queryvis_sql::AggFunc::Max,
                ..
            }
        ));
    }
}
