//! Logic simplification: the ∄·∄ → ∀·∃ rewrite (paper §4.7).
//!
//! SQL has no universal quantifier, so "for all" intent is written as a
//! double negation (`NOT EXISTS ... NOT EXISTS ...`). The rewrite recovers
//! the ∀ through De Morgan's law plus implication introduction:
//!
//! ```text
//! ¬∃S.(p₁ ∧ … ∧ pₖ ∧ ¬∃T.(pₖ₊₁ ∧ … ∧ pₖ₊ₗ))            (1)
//! ≡ ∀S.¬((p₁ ∧ … ∧ pₖ) ∧ ¬∃T.(pₖ₊₁ ∧ … ∧ pₖ₊ₗ))        (2)
//! ≡ ∀S.((p₁ ∧ … ∧ pₖ) → ∃T.(pₖ₊₁ ∧ … ∧ pₖ₊ₗ))          (3)
//! ```
//!
//! The rule applies to an LT node ψ with quantifier ∄ whose **only** child
//! ψ′ is also ∄: ψ becomes ∀ and ψ′ becomes ∃.

use crate::lt::{LogicTree, Quantifier};
use queryvis_ir::{Pass, PassContext, PassEffect, PassError};

/// Return a simplified copy of the tree with all applicable ∄·∄ pairs
/// rewritten to ∀·∃. The rewrite is applied top-down, so chains of four ∄
/// nodes become ∀∃∀∃.
pub fn simplify(tree: &LogicTree) -> LogicTree {
    let mut out = tree.clone();
    simplify_in_place(&mut out);
    out
}

/// The in-place rewrite behind [`simplify`] and [`SimplifyPass`]; returns
/// the number of ∄·∄ pairs rewritten.
pub fn simplify_in_place(tree: &mut LogicTree) -> usize {
    let mut rewritten = 0;
    for id in tree.preorder() {
        let node = &tree.nodes[id];
        if node.quantifier != Quantifier::NotExists || node.children.len() != 1 {
            continue;
        }
        let child = node.children[0];
        if tree.nodes[child].quantifier == Quantifier::NotExists {
            tree.nodes[id].quantifier = Quantifier::ForAll;
            tree.nodes[child].quantifier = Quantifier::Exists;
            rewritten += 1;
        }
    }
    rewritten
}

/// The ∄·∄ → ∀·∃ rewrite as a composable IR pass. Publishes the number of
/// rewritten pairs under the [`SimplifyPass::PAIRS_FACT`] key.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplifyPass;

impl SimplifyPass {
    /// [`PassContext`] fact key: `usize` count of rewritten ∄·∄ pairs.
    pub const PAIRS_FACT: &'static str = "simplify.rewritten_pairs";
}

impl Pass<LogicTree> for SimplifyPass {
    fn name(&self) -> &'static str {
        "simplify-forall"
    }

    fn run(&self, ir: &mut LogicTree, cx: &mut PassContext) -> Result<PassEffect, PassError> {
        let rewritten = simplify_in_place(ir);
        cx.put_fact(Self::PAIRS_FACT, rewritten);
        Ok(if rewritten == 0 {
            PassEffect::Unchanged
        } else {
            PassEffect::Changed
        })
    }
}

/// Count how many ∄·∄ pairs the simplifier would rewrite — used by the
/// ablation bench to quantify the §4.8 visual-complexity reduction.
pub fn rewritable_pairs(tree: &LogicTree) -> usize {
    simplify_in_place(&mut tree.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use queryvis_sql::parse_query;

    fn lt(sql: &str) -> LogicTree {
        translate(&parse_query(sql).unwrap(), None).unwrap()
    }

    #[test]
    fn qonly_becomes_forall_exists() {
        let tree = lt("SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
             (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))");
        let s = simplify(&tree);
        assert_eq!(s.node(1).quantifier, Quantifier::ForAll);
        assert_eq!(s.node(2).quantifier, Quantifier::Exists);
        assert_eq!(rewritable_pairs(&tree), 1);
    }

    #[test]
    fn branching_not_exists_untouched() {
        // A ∄ node with two ∄ children must not be rewritten (paper Fig. 10b:
        // L2 keeps ∄ because it has two children).
        let tree = lt("SELECT A.a FROM A WHERE NOT EXISTS( \
               SELECT * FROM B WHERE B.a = A.a \
               AND NOT EXISTS(SELECT * FROM C WHERE C.b = B.b) \
               AND NOT EXISTS(SELECT * FROM D WHERE D.b = B.b))");
        let s = simplify(&tree);
        assert_eq!(s.node(1).quantifier, Quantifier::NotExists);
        // But the two grandchildren pairs are leaves, so they stay ∄ too.
        assert_eq!(s.node(2).quantifier, Quantifier::NotExists);
        assert_eq!(s.node(3).quantifier, Quantifier::NotExists);
    }

    #[test]
    fn unique_set_matches_fig10b() {
        let tree = lt("SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
               SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker \
               AND NOT EXISTS( \
                 SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker \
                 AND NOT EXISTS( \
                   SELECT * FROM Likes L4 WHERE L4.drinker = L1.drinker \
                   AND L4.beer = L3.beer)) \
               AND NOT EXISTS( \
                 SELECT * FROM Likes L5 WHERE L5.drinker = L1.drinker \
                 AND NOT EXISTS( \
                   SELECT * FROM Likes L6 WHERE L6.drinker = L2.drinker \
                   AND L6.beer = L5.beer)))");
        let s = simplify(&tree);
        let quant_of = |alias: &str| {
            let id = s.owner_of(alias).unwrap();
            s.node(id).quantifier
        };
        assert_eq!(quant_of("L2"), Quantifier::NotExists);
        assert_eq!(quant_of("L3"), Quantifier::ForAll);
        assert_eq!(quant_of("L4"), Quantifier::Exists);
        assert_eq!(quant_of("L5"), Quantifier::ForAll);
        assert_eq!(quant_of("L6"), Quantifier::Exists);
        assert_eq!(rewritable_pairs(&tree), 2);
    }

    #[test]
    fn four_chain_alternates() {
        let tree = lt("SELECT A.a FROM A WHERE NOT EXISTS( \
              SELECT * FROM B WHERE B.a = A.a AND NOT EXISTS( \
               SELECT * FROM C WHERE C.b = B.b AND NOT EXISTS( \
                SELECT * FROM D WHERE D.c = C.c AND NOT EXISTS( \
                 SELECT * FROM E WHERE E.d = D.d))))");
        let s = simplify(&tree);
        let quants: Vec<Quantifier> = (1..=4).map(|i| s.node(i).quantifier).collect();
        assert_eq!(
            quants,
            vec![
                Quantifier::ForAll,
                Quantifier::Exists,
                Quantifier::ForAll,
                Quantifier::Exists
            ]
        );
    }

    #[test]
    fn exists_chain_untouched() {
        let tree = lt("SELECT A.a FROM A WHERE EXISTS( \
             SELECT * FROM B WHERE B.a = A.a AND EXISTS( \
             SELECT * FROM C WHERE C.b = B.b))");
        let s = simplify(&tree);
        assert_eq!(s.node(1).quantifier, Quantifier::Exists);
        assert_eq!(s.node(2).quantifier, Quantifier::Exists);
        assert_eq!(rewritable_pairs(&tree), 0);
    }

    #[test]
    fn simplify_is_idempotent() {
        let tree = lt("SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
             (SELECT L.drink FROM Likes L WHERE L.person = F.person))");
        let once = simplify(&tree);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }
}
