//! # queryvis-diagram
//!
//! The QueryVis diagram model and its construction from a logic tree
//! (paper §4.3–§4.8 and Appendix A.3).
//!
//! A diagram consists of exactly the marks the paper proves minimal:
//!
//! * **table composite marks** — a header row (black background; gray for
//!   the special `SELECT` table) stacked over attribute rows, selection
//!   predicate rows (yellow), group-by rows (gray), and aggregate rows;
//! * **quantifier bounding boxes** — dashed for ∄, double-lined for ∀
//!   (∃ blocks and the root get no box);
//! * **edges** — lines between attribute rows; unlabeled means equijoin,
//!   arrowheads encode the nesting order via the arrow rules, labels carry
//!   non-equality operators.
//!
//! Submodules:
//! * [`model`] — the diagram data structures.
//! * [`build`] — LT → diagram construction (incl. the arrow rules).
//! * [`reading`] — the default reading order (DFS with restarts, §4.6) and
//!   a natural-language reading generator.
//! * [`stats`] — visual-element counting backing the §4.8 minimality
//!   numbers (+13 % for ∄-only nesting, +7 % with ∀ simplification).

pub mod build;
pub mod model;
pub mod reading;
pub mod stats;
pub mod verify;

pub use build::build_diagram;
pub use model::{
    Diagram, DiagramTable, Edge, EdgeEndpoint, QuantifierBox, RowKind, TableId, TableRow,
};
pub use reading::{reading_order, render_reading, ReadingStep};
pub use stats::{diagram_stats, DiagramStats};
pub use verify::{verify_diagram, DiagramDefect};
