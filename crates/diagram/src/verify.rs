//! Structural well-formedness checks for diagrams.
//!
//! [`verify_diagram`] enforces the invariants every QueryVis diagram must
//! satisfy regardless of the query it came from — useful as a debug
//! assertion after construction, as a guard before rendering diagrams
//! built by hand (e.g. the unambiguity harness's synthetic patterns), and
//! as a test oracle.

use crate::model::{Diagram, RowKind};
use std::fmt;

/// A violated diagram invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagramDefect {
    /// `tables[i].id != i`.
    MisnumberedTable { index: usize },
    /// No table marked `is_select`, or `select_table` points elsewhere.
    MissingSelectTable,
    /// More than one SELECT table.
    MultipleSelectTables,
    /// An edge endpoint references a table or row that does not exist.
    DanglingEndpoint { edge: usize },
    /// An edge endpoint lands on a selection-predicate row (edges may only
    /// attach to attribute/group-by/aggregate rows).
    EdgeIntoSelectionRow { edge: usize },
    /// A box is empty, contains the SELECT table, or shares a table with
    /// another box.
    MalformedBox { box_index: usize },
    /// An edge connects a table to itself.
    SelfLoop { edge: usize },
    /// An equijoin carries a label (labels are reserved for non-`=` ops).
    RedundantEqualityLabel { edge: usize },
}

impl fmt::Display for DiagramDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagramDefect::MisnumberedTable { index } => {
                write!(f, "table at position {index} has a mismatched id")
            }
            DiagramDefect::MissingSelectTable => write!(f, "no SELECT table"),
            DiagramDefect::MultipleSelectTables => write!(f, "more than one SELECT table"),
            DiagramDefect::DanglingEndpoint { edge } => {
                write!(f, "edge {edge} references a missing table or row")
            }
            DiagramDefect::EdgeIntoSelectionRow { edge } => {
                write!(f, "edge {edge} attaches to a selection-predicate row")
            }
            DiagramDefect::MalformedBox { box_index } => {
                write!(f, "box {box_index} is empty, overlaps, or encloses SELECT")
            }
            DiagramDefect::SelfLoop { edge } => write!(f, "edge {edge} is a self-loop"),
            DiagramDefect::RedundantEqualityLabel { edge } => {
                write!(f, "edge {edge} labels an equijoin with `=`")
            }
        }
    }
}

/// Check every structural invariant; returns all defects found.
pub fn verify_diagram(diagram: &Diagram) -> Vec<DiagramDefect> {
    let mut defects = Vec::new();

    for (i, table) in diagram.tables.iter().enumerate() {
        if table.id != i {
            defects.push(DiagramDefect::MisnumberedTable { index: i });
        }
    }

    let select_count = diagram.tables.iter().filter(|t| t.is_select).count();
    match select_count {
        0 => defects.push(DiagramDefect::MissingSelectTable),
        1 => {
            if diagram
                .tables
                .get(diagram.select_table)
                .is_none_or(|t| !t.is_select)
            {
                defects.push(DiagramDefect::MissingSelectTable);
            }
        }
        _ => defects.push(DiagramDefect::MultipleSelectTables),
    }

    for (i, edge) in diagram.edges.iter().enumerate() {
        let mut dangling = false;
        for end in [edge.from, edge.to] {
            match diagram.tables.get(end.table) {
                None => dangling = true,
                Some(table) => match table.rows.get(end.row) {
                    None => dangling = true,
                    Some(row) => {
                        if matches!(row.kind, RowKind::Selection { .. }) {
                            defects.push(DiagramDefect::EdgeIntoSelectionRow { edge: i });
                        }
                    }
                },
            }
        }
        if dangling {
            defects.push(DiagramDefect::DanglingEndpoint { edge: i });
            continue;
        }
        if edge.from.table == edge.to.table {
            defects.push(DiagramDefect::SelfLoop { edge: i });
        }
        if edge.label == Some(queryvis_sql::CompareOp::Eq) {
            defects.push(DiagramDefect::RedundantEqualityLabel { edge: i });
        }
    }

    let mut boxed = std::collections::HashSet::new();
    for (i, qbox) in diagram.boxes.iter().enumerate() {
        let mut bad = qbox.tables.is_empty();
        for &t in &qbox.tables {
            match diagram.tables.get(t) {
                Some(table) if !table.is_select => {
                    if !boxed.insert(t) {
                        bad = true; // shared with another box
                    }
                }
                _ => bad = true,
            }
        }
        if bad {
            defects.push(DiagramDefect::MalformedBox { box_index: i });
        }
    }

    defects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_diagram;
    use crate::model::{Edge, EdgeEndpoint};
    use queryvis_logic::translate;
    use queryvis_sql::parse_query;

    fn diagram(sql: &str) -> Diagram {
        build_diagram(&translate(&parse_query(sql).unwrap(), None).unwrap())
    }

    #[test]
    fn built_diagrams_are_clean() {
        for sql in [
            "SELECT L.drinker FROM Likes L WHERE L.beer = 'IPA'",
            "SELECT F.person FROM Frequents F, Likes L WHERE F.person = L.person",
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)",
            "SELECT T.a, COUNT(T.b) FROM T GROUP BY T.a",
        ] {
            assert!(verify_diagram(&diagram(sql)).is_empty(), "{sql}");
        }
    }

    #[test]
    fn detects_dangling_endpoint() {
        let mut d = diagram("SELECT L.drinker FROM Likes L");
        d.edges.push(Edge {
            from: EdgeEndpoint { table: 0, row: 99 },
            to: EdgeEndpoint { table: 42, row: 0 },
            directed: false,
            label: None,
        });
        let defects = verify_diagram(&d);
        assert!(defects
            .iter()
            .any(|x| matches!(x, DiagramDefect::DanglingEndpoint { .. })));
    }

    #[test]
    fn detects_self_loop() {
        let mut d = diagram("SELECT L.drinker, L.beer FROM Likes L");
        let likes = d.table_by_binding("L").unwrap().id;
        d.edges.push(Edge {
            from: EdgeEndpoint {
                table: likes,
                row: 0,
            },
            to: EdgeEndpoint {
                table: likes,
                row: 1,
            },
            directed: false,
            label: None,
        });
        assert!(verify_diagram(&d)
            .iter()
            .any(|x| matches!(x, DiagramDefect::SelfLoop { .. })));
    }

    #[test]
    fn detects_redundant_equality_label() {
        let mut d = diagram("SELECT F.person FROM Frequents F, Likes L WHERE F.person = L.person");
        // Force a `=` label onto the first join edge.
        let idx = d.edges.iter().position(|e| !e.directed).unwrap();
        d.edges[idx].label = Some(queryvis_sql::CompareOp::Eq);
        assert!(verify_diagram(&d)
            .iter()
            .any(|x| matches!(x, DiagramDefect::RedundantEqualityLabel { .. })));
    }

    #[test]
    fn detects_box_enclosing_select() {
        let mut d = diagram(
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)",
        );
        d.boxes[0].tables.push(d.select_table);
        assert!(verify_diagram(&d)
            .iter()
            .any(|x| matches!(x, DiagramDefect::MalformedBox { .. })));
    }

    #[test]
    fn detects_missing_select_table() {
        let mut d = diagram("SELECT L.drinker FROM Likes L");
        let sel = d.select_table;
        d.tables[sel].is_select = false;
        assert!(verify_diagram(&d).contains(&DiagramDefect::MissingSelectTable));
    }
}
