//! Logic tree → QueryVis diagram construction (paper §4.7, Appendix A.3).
//!
//! The construction follows Appendix A.3 step by step:
//!
//! 1. One diagram table per table bound in any LT node (BFS order).
//! 2. A quantifier bounding box per ∄ / ∀ node (∃ nodes and the root get
//!    none).
//! 3. Selection predicates written in place as highlighted rows.
//! 4. Edges for join predicates with the **arrow rules**: let `d1`, `d2` be
//!    the nesting depths of the two endpoint tables —
//!    * `d1 == d2` → undirected (an arrow is still drawn for ordered
//!      operators, whose operand order matters, §4.3.1);
//!    * `|d1 − d2| == 1` → arrow from the shallower to the deeper table;
//!    * `|d1 − d2| > 1` → arrow from the deeper to the shallower table.
//!
//!    Labels carry non-`=` operators, re-oriented so the edge reads
//!    `from op to` (§4.5.1: "we must rewrite the join with the
//!    equivalent condition"). Same-depth edges with ordered operators
//!    keep an arrowhead to show operand order.
//! 5. A SELECT table connected by undirected edges to the selected
//!    attributes (plus group-by/aggregate rows for the study extension).

use crate::model::{
    Diagram, DiagramTable, Edge, EdgeEndpoint, QuantifierBox, RowKind, TableId, TableRow,
};
use queryvis_ir::Symbol;
use queryvis_logic::{AttrRef, LogicTree, LtOperand, Quantifier, SelectAttr};
use std::collections::HashMap;

/// Build the QueryVis diagram of a logic tree.
///
/// Pass the *simplified* tree (see [`queryvis_logic::simplify`]) to obtain
/// ∀ boxes (paper Fig. 2c / Fig. 12b); the raw tree yields the nested-∄
/// form (Fig. 2b / Fig. 12a).
pub fn build_diagram(tree: &LogicTree) -> Diagram {
    Builder::new(tree).build()
}

struct Builder<'t> {
    tree: &'t LogicTree,
    tables: Vec<DiagramTable>,
    boxes: Vec<QuantifierBox>,
    edges: Vec<Edge>,
    by_binding: HashMap<Symbol, TableId>,
}

impl<'t> Builder<'t> {
    fn new(tree: &'t LogicTree) -> Self {
        Builder {
            tree,
            tables: Vec::new(),
            boxes: Vec::new(),
            edges: Vec::new(),
            by_binding: HashMap::new(),
        }
    }

    fn build(mut self) -> Diagram {
        // Step 1+2: tables in BFS node order, with quantifier boxes.
        for node_id in self.tree.bfs() {
            let node = self.tree.node(node_id);
            let mut group = Vec::new();
            for lt_table in &node.tables {
                let id = self.tables.len();
                self.tables.push(DiagramTable {
                    id,
                    binding: lt_table.key,
                    alias: lt_table.alias,
                    name: lt_table.table,
                    rows: Vec::new(),
                    node: Some(node_id),
                    depth: node.depth,
                    is_select: false,
                });
                self.by_binding.insert(lt_table.key, id);
                group.push(id);
            }
            if !node.is_root()
                && matches!(node.quantifier, Quantifier::NotExists | Quantifier::ForAll)
            {
                self.boxes.push(QuantifierBox {
                    node: node_id,
                    quantifier: node.quantifier,
                    tables: group,
                });
            }
        }

        // Step 3+4: rows and edges, node by node in BFS order so row order
        // is deterministic and mirrors the query's reading order.
        for node_id in self.tree.bfs() {
            let node = self.tree.node(node_id);
            for pred in &node.predicates {
                match pred.rhs {
                    LtOperand::Const(value) => {
                        let table = self.by_binding[&pred.lhs.binding];
                        self.tables[table].rows.push(TableRow {
                            column: pred.lhs.column,
                            kind: RowKind::Selection { op: pred.op, value },
                        });
                    }
                    LtOperand::Attr(rhs) => {
                        self.join_edge(pred.lhs, pred.op, rhs);
                    }
                }
            }
        }

        // Step 5: the SELECT table, wired to its source attributes.
        let select_table = self.build_select_table();

        // Group-by highlighting (study extension): mark grouped attributes
        // gray in their source tables.
        for attr in &self.tree.group_by {
            let table = self.by_binding[&attr.binding];
            let row = self.ensure_attr_row(table, attr.column);
            self.tables[table].rows[row].kind = RowKind::GroupBy;
        }

        // HAVING conjuncts: highlighted rows on the SELECT (grouping)
        // table, wired to the aggregated attribute's source table like
        // select-list aggregates.
        for h in &self.tree.having.clone() {
            let column = h
                .arg
                .map(|a| a.column)
                .unwrap_or_else(|| Symbol::intern("*"));
            self.tables[select_table].rows.push(TableRow {
                column,
                kind: RowKind::Having {
                    func: h.func,
                    op: h.op,
                    value: h.value,
                },
            });
            let having_row = self.tables[select_table].rows.len() - 1;
            if let Some(a) = h.arg {
                let source = self.by_binding[&a.binding];
                let source_row = self.ensure_attr_row(source, a.column);
                self.edges.push(Edge {
                    from: EdgeEndpoint {
                        table: select_table,
                        row: having_row,
                    },
                    to: EdgeEndpoint {
                        table: source,
                        row: source_row,
                    },
                    directed: false,
                    label: None,
                });
            }
        }

        Diagram {
            tables: self.tables,
            boxes: self.boxes,
            edges: self.edges,
            select_table,
        }
    }

    /// Row index of `column` in `table`, creating a plain attribute row on
    /// first reference (rows appear in order of first use).
    fn ensure_attr_row(&mut self, table: TableId, column: Symbol) -> usize {
        if let Some(idx) = self.tables[table].attr_row(column) {
            return idx;
        }
        self.tables[table].rows.push(TableRow {
            column,
            kind: RowKind::Attribute,
        });
        self.tables[table].rows.len() - 1
    }

    /// Create the edge for a join predicate `lhs op rhs`, applying the
    /// arrow rules.
    fn join_edge(&mut self, lhs: AttrRef, op: queryvis_sql::CompareOp, rhs: AttrRef) {
        let lhs_table = self.by_binding[&lhs.binding];
        let rhs_table = self.by_binding[&rhs.binding];
        let lhs_row = self.ensure_attr_row(lhs_table, lhs.column);
        let rhs_row = self.ensure_attr_row(rhs_table, rhs.column);
        let d1 = self.tables[lhs_table].depth;
        let d2 = self.tables[rhs_table].depth;

        // Decide which endpoint the edge starts from (arrow rules).
        let (from_is_lhs, directed) = if d1 == d2 {
            // Same depth: undirected for symmetric operators; ordered
            // operators keep an arrow indicating operand order.
            (true, !op.is_symmetric())
        } else {
            let diff = d1.abs_diff(d2);
            let lhs_first = if diff == 1 { d1 < d2 } else { d1 > d2 };
            (lhs_first, true)
        };

        let (from, to, oriented_op) = if from_is_lhs {
            (
                EdgeEndpoint {
                    table: lhs_table,
                    row: lhs_row,
                },
                EdgeEndpoint {
                    table: rhs_table,
                    row: rhs_row,
                },
                op,
            )
        } else {
            // The edge is drawn rhs → lhs, so the operator must be flipped
            // to read correctly along the edge.
            (
                EdgeEndpoint {
                    table: rhs_table,
                    row: rhs_row,
                },
                EdgeEndpoint {
                    table: lhs_table,
                    row: lhs_row,
                },
                op.flip(),
            )
        };
        let label = (oriented_op != queryvis_sql::CompareOp::Eq).then_some(oriented_op);
        self.edges.push(Edge {
            from,
            to,
            directed,
            label,
        });
    }

    fn build_select_table(&mut self) -> TableId {
        let select_id = self.tables.len();
        self.tables.push(DiagramTable {
            id: select_id,
            binding: "SELECT".into(),
            alias: "SELECT".into(),
            name: "SELECT".into(),
            rows: Vec::new(),
            node: None,
            depth: 0,
            is_select: true,
        });
        for attr in &self.tree.select.clone() {
            match attr {
                SelectAttr::Column(a) => {
                    let grouped = self.tree.group_by.contains(a);
                    let kind = if grouped {
                        RowKind::GroupBy
                    } else {
                        RowKind::Attribute
                    };
                    self.tables[select_id].rows.push(TableRow {
                        column: a.column,
                        kind,
                    });
                    let select_row = self.tables[select_id].rows.len() - 1;
                    let source = self.by_binding[&a.binding];
                    let source_row = self.ensure_attr_row(source, a.column);
                    self.edges.push(Edge {
                        from: EdgeEndpoint {
                            table: select_id,
                            row: select_row,
                        },
                        to: EdgeEndpoint {
                            table: source,
                            row: source_row,
                        },
                        directed: false,
                        label: None,
                    });
                }
                SelectAttr::Aggregate { func, arg } => {
                    let column = arg
                        .as_ref()
                        .map(|a| a.column)
                        .unwrap_or_else(|| Symbol::intern("*"));
                    self.tables[select_id].rows.push(TableRow {
                        column,
                        kind: RowKind::Aggregate { func: *func },
                    });
                    let select_row = self.tables[select_id].rows.len() - 1;
                    // The aggregate also appears as a row in the source
                    // table (tutorial page 6), connected to the SELECT copy.
                    if let Some(a) = arg {
                        let source = self.by_binding[&a.binding];
                        self.tables[source].rows.push(TableRow {
                            column: a.column,
                            kind: RowKind::Aggregate { func: *func },
                        });
                        let source_row = self.tables[source].rows.len() - 1;
                        self.edges.push(Edge {
                            from: EdgeEndpoint {
                                table: select_id,
                                row: select_row,
                            },
                            to: EdgeEndpoint {
                                table: source,
                                row: source_row,
                            },
                            directed: false,
                            label: None,
                        });
                    }
                }
            }
        }
        select_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use queryvis_logic::{simplify, translate};
    use queryvis_sql::{parse_query, CompareOp};

    fn diagram(sql: &str) -> Diagram {
        build_diagram(&translate(&parse_query(sql).unwrap(), None).unwrap())
    }

    fn diagram_simplified(sql: &str) -> Diagram {
        build_diagram(&simplify(
            &translate(&parse_query(sql).unwrap(), None).unwrap(),
        ))
    }

    const UNIQUE_SET: &str = "SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
        SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker \
        AND NOT EXISTS( \
          SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker \
          AND NOT EXISTS( \
            SELECT * FROM Likes L4 WHERE L4.drinker = L1.drinker \
            AND L4.beer = L3.beer)) \
        AND NOT EXISTS( \
          SELECT * FROM Likes L5 WHERE L5.drinker = L1.drinker \
          AND NOT EXISTS( \
            SELECT * FROM Likes L6 WHERE L6.drinker = L2.drinker \
            AND L6.beer = L5.beer)))";

    #[test]
    fn conjunctive_diagram_structure() {
        // Fig. 2a: Qsome — 3 base tables + SELECT, 4 edges, no boxes.
        let d = diagram(
            "SELECT F.person FROM Frequents F, Likes L, Serves S \
             WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink",
        );
        assert_eq!(d.tables.len(), 4);
        assert_eq!(d.boxes.len(), 0);
        assert_eq!(d.edges.len(), 4);
        assert!(d.edges.iter().all(|e| !e.directed));
        assert!(d.edges.iter().all(|e| e.label.is_none()));
    }

    #[test]
    fn unique_set_diagram_matches_fig1b() {
        let d = diagram(UNIQUE_SET);
        // 6 Likes tables + SELECT.
        assert_eq!(d.tables.len(), 7);
        // 5 dashed boxes (L2..L6 blocks), none for the root.
        assert_eq!(d.boxes.len(), 5);
        assert!(d
            .boxes
            .iter()
            .all(|b| b.quantifier == Quantifier::NotExists));
        // 7 join edges + 1 SELECT edge.
        assert_eq!(d.edges.len(), 8);
        // Exactly one labeled edge: the <> between L1 and L2.
        let labeled: Vec<&Edge> = d.edges.iter().filter(|e| e.label.is_some()).collect();
        assert_eq!(labeled.len(), 1);
        assert_eq!(labeled[0].label, Some(CompareOp::Ne));
    }

    #[test]
    fn unique_set_arrow_directions_match_appendix_a() {
        let d = diagram(UNIQUE_SET);
        let edge = |from: &str, to: &str| {
            let f = d.table_by_binding(from).unwrap().id;
            let t = d.table_by_binding(to).unwrap().id;
            d.edges
                .iter()
                .find(|e| e.directed && e.from.table == f && e.to.table == t)
                .unwrap_or_else(|| panic!("missing edge {from}->{to}\n{d}"))
        };
        // Appendix A.3 step 4 (with the SQL of Fig. 1a as ground truth):
        edge("L1", "L2"); // depth 0 -> 1 (diff 1)
        edge("L2", "L3"); // depth 1 -> 2 (diff 1): L3.drinker = L2.drinker
        edge("L3", "L4"); // depth 2 -> 3 (diff 1): L4.beer = L3.beer
        edge("L4", "L1"); // depth 3 -> 0 (diff 3): L4.drinker = L1.drinker
        edge("L5", "L1"); // depth 2 -> 0 (diff 2): L5.drinker = L1.drinker
        edge("L5", "L6"); // depth 2 -> 3 (diff 1): L6.beer = L5.beer
        edge("L6", "L2"); // depth 3 -> 1 (diff 2): L6.drinker = L2.drinker
    }

    #[test]
    fn qonly_boxes_dashed_then_forall_after_simplify() {
        const QONLY: &str = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
             (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))";
        let raw = diagram(QONLY);
        assert_eq!(raw.boxes.len(), 2);
        assert!(raw
            .boxes
            .iter()
            .all(|b| b.quantifier == Quantifier::NotExists));
        let simp = diagram_simplified(QONLY);
        // Fig. 2c: one ∀ box; the inner ∃ block loses its box.
        assert_eq!(simp.boxes.len(), 1);
        assert_eq!(simp.boxes[0].quantifier, Quantifier::ForAll);
    }

    #[test]
    fn selection_predicate_written_in_row() {
        let d = diagram("SELECT B.bid FROM Boat B WHERE B.color = 'red'");
        let boat = d.table_by_binding("B").unwrap();
        let sel_row = boat
            .rows
            .iter()
            .find(|r| matches!(r.kind, RowKind::Selection { .. }))
            .unwrap();
        assert_eq!(sel_row.display(), "color = 'red'");
    }

    #[test]
    fn ordered_op_same_depth_gets_arrow_and_label() {
        let d = diagram("SELECT A.x FROM T A, T B WHERE A.x < B.x");
        let e = d.edges.iter().find(|e| e.label.is_some()).unwrap();
        assert!(e.directed);
        assert_eq!(e.label, Some(CompareOp::Lt));
        assert_eq!(d.tables[e.from.table].binding, "A");
    }

    #[test]
    fn ordered_op_across_depth_is_reoriented() {
        // B is the parent of the subquery block; predicate is written
        // `S.y > B.x` but the arrow must go B -> S (diff 1), so the label
        // must flip to `<` to read `B.x < S.y`.
        let d = diagram(
            "SELECT B.x FROM T B WHERE NOT EXISTS \
             (SELECT * FROM U S WHERE S.y > B.x)",
        );
        let e = d.edges.iter().find(|e| e.label.is_some()).unwrap();
        assert_eq!(d.tables[e.from.table].binding, "B");
        assert_eq!(d.tables[e.to.table].binding, "S");
        assert_eq!(e.label, Some(CompareOp::Lt));
    }

    #[test]
    fn select_table_edges_are_undirected() {
        let d = diagram("SELECT L.drinker, L.beer FROM Likes L");
        let select = &d.tables[d.select_table];
        assert!(select.is_select);
        assert_eq!(select.rows.len(), 2);
        assert_eq!(d.edges.len(), 2);
        assert!(d.edges.iter().all(|e| !e.directed));
    }

    #[test]
    fn group_by_rows_marked() {
        let d = diagram("SELECT T.AlbumId, MAX(T.Milliseconds) FROM Track T GROUP BY T.AlbumId");
        let track = d.table_by_binding("T").unwrap();
        let album_row = &track.rows[track.attr_row("AlbumId").unwrap()];
        assert_eq!(album_row.kind, RowKind::GroupBy);
        // Aggregate rows exist on both SELECT and source tables.
        assert!(track
            .rows
            .iter()
            .any(|r| matches!(r.kind, RowKind::Aggregate { .. })));
        let select = &d.tables[d.select_table];
        assert!(select
            .rows
            .iter()
            .any(|r| r.display() == "MAX(Milliseconds)"));
        assert!(select
            .rows
            .iter()
            .any(|r| r.kind == RowKind::GroupBy && r.column == "AlbumId"));
    }

    #[test]
    fn count_star_has_no_source_edge() {
        let d = diagram("SELECT COUNT(*) FROM T GROUP BY T.a");
        let select = &d.tables[d.select_table];
        assert_eq!(select.rows[0].display(), "COUNT(*)");
        // Only edges: none for COUNT(*) (no source attribute).
        assert!(d.edges.iter().all(
            |e| e.from.table != d.select_table || d.tables[e.to.table].attr_row("a").is_some()
        ));
    }

    #[test]
    fn exists_block_has_no_box() {
        let d = diagram(
            "SELECT L.drinker FROM Likes L WHERE EXISTS \
             (SELECT * FROM Serves S WHERE S.beer = L.beer)",
        );
        assert_eq!(d.boxes.len(), 0);
        // But the join edge is still directed by depth (0 -> 1).
        let e = d.edges.iter().find(|e| e.directed).unwrap();
        assert_eq!(d.tables[e.from.table].binding, "L");
    }

    #[test]
    fn rows_appear_in_first_use_order() {
        let d = diagram(UNIQUE_SET);
        let l4 = d.table_by_binding("L4").unwrap();
        let cols: Vec<&str> = l4.rows.iter().map(|r| r.column.as_str()).collect();
        assert_eq!(cols, vec!["drinker", "beer"]);
    }
}
