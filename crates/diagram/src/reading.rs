//! The default reading order of a diagram (paper §4.6) and a mechanical
//! natural-language reading.
//!
//! > "QueryVis diagrams are read by starting from the SELECT table and
//! > following a depth-first traversal with restarts from unvisited source
//! > nodes (i.e. those without incoming arrows)."
//!
//! For the unique-set query (Fig. 1b) this produces L1→L2→L3→L4, then a
//! restart at the source L5 continuing L5→L6 — exactly the order the
//! paper's footnote 1 describes.

use crate::model::{Diagram, TableId};
use queryvis_logic::Quantifier;

/// One step of the reading order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadingStep {
    pub table: TableId,
    /// Quantifier of the enclosing box (`None` for root-block tables and
    /// boxless ∃ blocks).
    pub quantifier: Option<Quantifier>,
    /// True if this step began a restart at a source table.
    pub restart: bool,
}

/// Compute the reading order over the diagram's tables (the SELECT table is
/// the implicit origin and not included in the result).
pub fn reading_order(diagram: &Diagram) -> Vec<ReadingStep> {
    let n = diagram.tables.len();
    let mut visited = vec![false; n];
    let mut steps = Vec::new();
    visited[diagram.select_table] = true;

    // Incoming-arrow counts (for restart source detection).
    let mut incoming = vec![0usize; n];
    for edge in &diagram.edges {
        if edge.directed {
            incoming[edge.to.table] += 1;
        }
    }

    // Neighbors in edge-insertion order: directed edges forward only,
    // undirected edges both ways.
    let neighbors = |t: TableId| -> Vec<TableId> {
        let mut out = Vec::new();
        for edge in &diagram.edges {
            if edge.directed {
                if edge.from.table == t {
                    out.push(edge.to.table);
                }
            } else if edge.from.table == t {
                out.push(edge.to.table);
            } else if edge.to.table == t {
                out.push(edge.from.table);
            }
        }
        out
    };

    fn dfs(
        diagram: &Diagram,
        t: TableId,
        restart: bool,
        visited: &mut [bool],
        steps: &mut Vec<ReadingStep>,
        neighbors: &dyn Fn(TableId) -> Vec<TableId>,
    ) {
        visited[t] = true;
        steps.push(ReadingStep {
            table: t,
            quantifier: diagram.box_of(t).map(|b| b.quantifier),
            restart,
        });
        for next in neighbors(t) {
            if !visited[next] {
                dfs(diagram, next, false, visited, steps, neighbors);
            }
        }
    }

    // Phase 1: start from the SELECT table's neighbors.
    for start in neighbors(diagram.select_table) {
        if !visited[start] {
            dfs(diagram, start, false, &mut visited, &mut steps, &neighbors);
        }
    }
    // Phase 2: restarts at unvisited source tables, lowest id first; fall
    // back to any unvisited table (cycles) if no source remains.
    loop {
        let next_source = (0..n)
            .find(|&t| !visited[t] && incoming[t] == 0)
            .or_else(|| (0..n).find(|&t| !visited[t]));
        match next_source {
            Some(t) => dfs(diagram, t, true, &mut visited, &mut steps, &neighbors),
            None => break,
        }
    }
    steps
}

/// Render a mechanical natural-language reading of the diagram, following
/// the reading order and the interpretation rule of §4.6: an edge from
/// `S.attr1` to a ∄-quantified `T.attr2` labeled `<` reads "there does not
/// exist any tuple in T where S.attr1 < T.attr2".
pub fn render_reading(diagram: &Diagram) -> String {
    let steps = reading_order(diagram);
    let mut out = String::new();

    // Head: the SELECT clause (HAVING rows are conditions, not outputs —
    // they read at the end).
    let select = &diagram.tables[diagram.select_table];
    let cols: Vec<String> = select
        .rows
        .iter()
        .filter(|r| !matches!(r.kind, crate::model::RowKind::Having { .. }))
        .map(|r| r.display())
        .collect();
    out.push_str(&format!("Return {}", cols.join(", ")));

    for step in &steps {
        let table = &diagram.tables[step.table];
        let phrase = match step.quantifier {
            Some(Quantifier::NotExists) => "there does not exist a tuple",
            Some(Quantifier::ForAll) => "for all tuples",
            Some(Quantifier::Exists) | None => {
                if table.depth == 0 {
                    "taking a tuple"
                } else {
                    "there exists a tuple"
                }
            }
        };
        let connective = if step.restart { "; and" } else { "," };
        out.push_str(&format!(
            "{connective} {phrase} {} in {}",
            table.alias, table.name
        ));

        // Conditions: edges between this table and tables already read.
        let mut conds = Vec::new();
        for edge in diagram.edges_of(step.table) {
            let (here, there) = if edge.from.table == step.table {
                (edge.from, edge.to)
            } else {
                (edge.to, edge.from)
            };
            if there.table == diagram.select_table {
                continue;
            }
            let other = &diagram.tables[there.table];
            // Only mention edges to tables read strictly before this one.
            let read_before = steps
                .iter()
                .position(|s| s.table == there.table)
                .is_some_and(|p| p < steps.iter().position(|s| s.table == step.table).unwrap());
            if !read_before {
                continue;
            }
            let here_col = &diagram.tables[step.table].rows[here.row].column;
            let there_col = &other.rows[there.row].column;
            // Orient the operator so it reads here-first.
            let op = match edge.label {
                None => queryvis_sql::CompareOp::Eq,
                Some(op) => {
                    if edge.from.table == step.table {
                        op
                    } else {
                        op.flip()
                    }
                }
            };
            conds.push(format!(
                "{}.{here_col} {op} {}.{there_col}",
                table.alias, other.alias
            ));
        }
        // Selection rows read as in-place conditions.
        for row in &table.rows {
            if let crate::model::RowKind::Selection { .. } = row.kind {
                conds.push(format!("{}.{}", table.alias, row.display()));
            }
        }
        if !conds.is_empty() {
            out.push_str(&format!(" with {}", conds.join(" and ")));
        }
    }
    // HAVING rows read as group-level conditions after the traversal.
    let having: Vec<String> = select
        .rows
        .iter()
        .filter(|r| matches!(r.kind, crate::model::RowKind::Having { .. }))
        .map(|r| r.display())
        .collect();
    if !having.is_empty() {
        out.push_str(&format!(
            "; keeping only groups where {}",
            having.join(" and ")
        ));
    }
    out.push('.');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_diagram;
    use queryvis_logic::{simplify, translate};
    use queryvis_sql::parse_query;

    fn diagram(sql: &str) -> Diagram {
        build_diagram(&translate(&parse_query(sql).unwrap(), None).unwrap())
    }

    const UNIQUE_SET: &str = "SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
        SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker \
        AND NOT EXISTS( \
          SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker \
          AND NOT EXISTS( \
            SELECT * FROM Likes L4 WHERE L4.drinker = L1.drinker \
            AND L4.beer = L3.beer)) \
        AND NOT EXISTS( \
          SELECT * FROM Likes L5 WHERE L5.drinker = L1.drinker \
          AND NOT EXISTS( \
            SELECT * FROM Likes L6 WHERE L6.drinker = L2.drinker \
            AND L6.beer = L5.beer)))";

    #[test]
    fn unique_set_reading_matches_footnote_1() {
        // Expected: L1 → L2 → L3 → L4, restart at source L5, then L6.
        let d = diagram(UNIQUE_SET);
        let steps = reading_order(&d);
        let order: Vec<&str> = steps
            .iter()
            .map(|s| d.tables[s.table].binding.as_str())
            .collect();
        assert_eq!(order, vec!["L1", "L2", "L3", "L4", "L5", "L6"]);
        assert!(steps[4].restart, "L5 must begin a restart");
        assert!(!steps[1].restart);
    }

    #[test]
    fn conjunctive_reading_visits_everything() {
        let d = diagram(
            "SELECT F.person FROM Frequents F, Likes L, Serves S \
             WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink",
        );
        let steps = reading_order(&d);
        assert_eq!(steps.len(), 3);
        assert!(steps.iter().all(|s| s.quantifier.is_none()));
    }

    #[test]
    fn reading_text_mentions_quantifiers_in_order() {
        let q = parse_query(
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
             (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))",
        )
        .unwrap();
        let d = build_diagram(&simplify(&translate(&q, None).unwrap()));
        let text = render_reading(&d);
        assert!(text.starts_with("Return person"));
        let forall_pos = text.find("for all tuples").unwrap();
        let exists_pos = text.find("there exists a tuple").unwrap();
        assert!(forall_pos < exists_pos, "{text}");
        assert!(text.contains("S.bar = F.bar"), "{text}");
    }

    #[test]
    fn reading_includes_selection_conditions() {
        let d = diagram("SELECT B.bid FROM Boat B WHERE B.color = 'red'");
        let text = render_reading(&d);
        assert!(text.contains("B.color = 'red'"), "{text}");
    }

    #[test]
    fn reading_orients_operator_along_visit_order() {
        let d = diagram(
            "SELECT B.x FROM T B WHERE NOT EXISTS \
             (SELECT * FROM U S WHERE S.y > B.x)",
        );
        let text = render_reading(&d);
        // Reading visits B then S; when S is read the condition must be
        // stated from S's perspective: S.y > B.x.
        assert!(text.contains("S.y > B.x"), "{text}");
    }
}
