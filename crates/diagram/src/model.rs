//! Diagram data structures.
//!
//! These types capture the *topology* of a QueryVis diagram — tables, rows,
//! quantifier boxes, and edges — independently of geometry (positions come
//! from `queryvis-layout`) and of pixels (colors/strokes come from
//! `queryvis-render`).

use queryvis_ir::{Symbol, SymbolQuery};
use queryvis_logic::{NodeId, Quantifier};
use queryvis_sql::{AggFunc, CompareOp, Value};
use std::fmt;

/// Index of a table within [`Diagram::tables`].
pub type TableId = usize;

/// The kind of one row in a table composite mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowKind {
    /// A plain attribute row (participates in a join or the select list).
    Attribute,
    /// A selection predicate row, rendered highlighted (yellow): `attr op value`.
    Selection { op: CompareOp, value: Value },
    /// A group-by attribute row, rendered highlighted (gray).
    GroupBy,
    /// An aggregate row (`SUM(Quantity)`), in the SELECT table and the
    /// source table of the aggregated attribute.
    Aggregate { func: AggFunc },
    /// A HAVING predicate row, rendered highlighted like a selection:
    /// `AGG(attr) op value` on the SELECT (grouping) table.
    Having {
        func: AggFunc,
        op: CompareOp,
        value: Value,
    },
}

/// One row of a table composite mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// The attribute name (for aggregates, the argument attribute name, or
    /// `*` for `COUNT(*)`), interned.
    pub column: Symbol,
    pub kind: RowKind,
}

impl TableRow {
    /// The text displayed in the row (render-boundary resolution: this is
    /// where the interned name becomes a string again).
    pub fn display(&self) -> String {
        match &self.kind {
            RowKind::Attribute | RowKind::GroupBy => self.column.to_string(),
            RowKind::Selection { op, value } => format!("{} {op} {value}", self.column),
            RowKind::Aggregate { func } => format!("{func}({})", self.column),
            RowKind::Having { func, op, value } => {
                format!("{func}({}) {op} {value}", self.column)
            }
        }
    }
}

/// A table composite mark: black header + stacked rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagramTable {
    pub id: TableId,
    /// Unique binding key within the diagram (`SELECT` for the select table).
    pub binding: Symbol,
    /// Alias as written in the query (display; equals `binding` unless the
    /// alias was shadowed).
    pub alias: Symbol,
    /// Header text: the base table name, or `SELECT`.
    pub name: Symbol,
    pub rows: Vec<TableRow>,
    /// The logic-tree node that introduced this table; `None` for SELECT.
    pub node: Option<NodeId>,
    /// Nesting depth of the owning node (0 for the root and SELECT).
    pub depth: usize,
    pub is_select: bool,
}

impl DiagramTable {
    /// Index of the first attribute/group-by row for `column`, if present.
    /// String probes never intern (see [`SymbolQuery`]).
    pub fn attr_row(&self, column: impl SymbolQuery) -> Option<usize> {
        let column = column.find()?;
        self.rows.iter().position(|r| {
            r.column == column && matches!(r.kind, RowKind::Attribute | RowKind::GroupBy)
        })
    }
}

/// A quantifier bounding box around all tables of one query block.
///
/// Only ∄ (dashed) and ∀ (double-lined) produce boxes; ∃ blocks are drawn
/// without enclosure ("treated as if T has the ∃ quantifier applied", §4.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantifierBox {
    pub node: NodeId,
    pub quantifier: Quantifier,
    pub tables: Vec<TableId>,
}

/// One endpoint of an edge: a specific row of a specific table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEndpoint {
    pub table: TableId,
    pub row: usize,
}

/// An edge between two attribute rows.
///
/// `directed == true` draws an arrowhead at `to`. `label == None` denotes an
/// equijoin (the `=` label is omitted per the minimality argument, §4.3.1);
/// otherwise the label shows the comparison operator, oriented so the edge
/// reads `from.row  label  to.row`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: EdgeEndpoint,
    pub to: EdgeEndpoint,
    pub directed: bool,
    pub label: Option<CompareOp>,
}

/// A complete QueryVis diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagram {
    pub tables: Vec<DiagramTable>,
    pub boxes: Vec<QuantifierBox>,
    pub edges: Vec<Edge>,
    /// Id of the SELECT table (always present; every diagram has a root).
    pub select_table: TableId,
}

impl Diagram {
    pub fn table(&self, id: TableId) -> &DiagramTable {
        &self.tables[id]
    }

    /// Find a table by its binding key. String probes never intern.
    pub fn table_by_binding(&self, binding: impl SymbolQuery) -> Option<&DiagramTable> {
        let binding = binding.find()?;
        self.tables.iter().find(|t| t.binding == binding)
    }

    /// Find a table by its display alias (first match). String probes
    /// never intern.
    pub fn table_by_alias(&self, alias: impl SymbolQuery) -> Option<&DiagramTable> {
        let alias = alias.find()?;
        self.tables
            .iter()
            .find(|t| t.alias == alias && !t.is_select)
    }

    /// The quantifier box containing `table`, if any.
    pub fn box_of(&self, table: TableId) -> Option<&QuantifierBox> {
        self.boxes.iter().find(|b| b.tables.contains(&table))
    }

    /// Edges incident to `table` (either endpoint).
    pub fn edges_of(&self, table: TableId) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| e.from.table == table || e.to.table == table)
    }

    /// Directed edges leaving `table`.
    pub fn out_edges(&self, table: TableId) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| e.directed && e.from.table == table)
    }

    /// Directed edges entering `table`.
    pub fn in_edges(&self, table: TableId) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| e.directed && e.to.table == table)
    }
}

impl fmt::Display for Diagram {
    /// A compact text dump used in logs and golden tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for table in &self.tables {
            let boxed = match self.box_of(table.id) {
                Some(b) => format!(" [{}]", b.quantifier),
                None => String::new(),
            };
            writeln!(f, "table {} `{}`{}:", table.id, table.name, boxed)?;
            for row in &table.rows {
                writeln!(f, "  | {}", row.display())?;
            }
        }
        for edge in &self.edges {
            let arrow = if edge.directed { "->" } else { "--" };
            let label = edge.label.map(|op| format!(" [{op}]")).unwrap_or_default();
            writeln!(
                f,
                "edge {}.{} {arrow} {}.{}{label}",
                self.tables[edge.from.table].binding,
                self.tables[edge.from.table].rows[edge.from.row].column,
                self.tables[edge.to.table].binding,
                self.tables[edge.to.table].rows[edge.to.row].column,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_display_variants() {
        let attr = TableRow {
            column: "drinker".into(),
            kind: RowKind::Attribute,
        };
        assert_eq!(attr.display(), "drinker");
        let sel = TableRow {
            column: "color".into(),
            kind: RowKind::Selection {
                op: CompareOp::Eq,
                value: Value::Str("red".into()),
            },
        };
        assert_eq!(sel.display(), "color = 'red'");
        let agg = TableRow {
            column: "Quantity".into(),
            kind: RowKind::Aggregate { func: AggFunc::Sum },
        };
        assert_eq!(agg.display(), "SUM(Quantity)");
    }

    #[test]
    fn attr_row_lookup_skips_selection_rows() {
        let table = DiagramTable {
            id: 0,
            binding: "B".into(),
            alias: "B".into(),
            name: "Boat".into(),
            rows: vec![
                TableRow {
                    column: "color".into(),
                    kind: RowKind::Selection {
                        op: CompareOp::Eq,
                        value: Value::Str("red".into()),
                    },
                },
                TableRow {
                    column: "bid".into(),
                    kind: RowKind::Attribute,
                },
            ],
            node: Some(1),
            depth: 1,
            is_select: false,
        };
        assert_eq!(table.attr_row("bid"), Some(1));
        assert_eq!(table.attr_row("color"), None);
    }
}
