//! Visual-element counting for the minimality analysis (paper §4.8).
//!
//! The paper compares the visual complexity of diagrams against the textual
//! complexity of SQL: Fig. 2b (nested-∄ Qonly) has "13% more visual
//! elements" than Fig. 2a (conjunctive Qsome), which the ∀ simplification
//! reduces to 7% — while the SQL text itself grows far more.
//!
//! We count a **visual element** as one of: a table composite mark, a row
//! within a table, an edge, or a quantifier bounding box. With this
//! counting Fig. 2a has 15 elements, Fig. 2b has 17 (+13.3 %), and Fig. 2c
//! has 16 (+6.7 %) — reproducing the paper's numbers exactly. Arrowheads
//! and operator labels are *channels* on the line mark rather than separate
//! marks, so they are reported separately but not added to the total.

use crate::model::{Diagram, RowKind};

/// Mark/channel counts for one diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagramStats {
    /// Table composite marks (including the SELECT table).
    pub tables: usize,
    /// Total rows across all tables (headers excluded — one header per
    /// table is already counted by the table mark itself).
    pub rows: usize,
    /// Line marks.
    pub edges: usize,
    /// Quantifier bounding boxes.
    pub boxes: usize,
    /// Arrowhead channels (directed edges).
    pub arrowheads: usize,
    /// Operator-label channels (non-equijoin edges).
    pub labels: usize,
    /// Highlighted selection-predicate rows (subset of `rows`).
    pub selection_rows: usize,
    /// Highlighted group-by rows (subset of `rows`).
    pub group_rows: usize,
    /// Highlighted HAVING rows (subset of `rows`).
    pub having_rows: usize,
}

impl DiagramStats {
    /// The §4.8 visual-element count: tables + rows + edges + boxes.
    pub fn visual_elements(&self) -> usize {
        self.tables + self.rows + self.edges + self.boxes
    }

    /// Relative increase of `self` over `base` in visual elements.
    pub fn increase_over(&self, base: &DiagramStats) -> f64 {
        let a = self.visual_elements() as f64;
        let b = base.visual_elements() as f64;
        (a - b) / b
    }

    /// Field-wise sum — used to aggregate the stats of a multi-branch
    /// (UNION) rendering.
    pub fn combine(&self, other: &DiagramStats) -> DiagramStats {
        DiagramStats {
            tables: self.tables + other.tables,
            rows: self.rows + other.rows,
            edges: self.edges + other.edges,
            boxes: self.boxes + other.boxes,
            arrowheads: self.arrowheads + other.arrowheads,
            labels: self.labels + other.labels,
            selection_rows: self.selection_rows + other.selection_rows,
            group_rows: self.group_rows + other.group_rows,
            having_rows: self.having_rows + other.having_rows,
        }
    }
}

/// Count the marks and channels of a diagram.
pub fn diagram_stats(diagram: &Diagram) -> DiagramStats {
    let tables = diagram.tables.len();
    let rows = diagram.tables.iter().map(|t| t.rows.len()).sum();
    let edges = diagram.edges.len();
    let boxes = diagram.boxes.len();
    let arrowheads = diagram.edges.iter().filter(|e| e.directed).count();
    let labels = diagram.edges.iter().filter(|e| e.label.is_some()).count();
    let selection_rows = diagram
        .tables
        .iter()
        .flat_map(|t| t.rows.iter())
        .filter(|r| matches!(r.kind, RowKind::Selection { .. }))
        .count();
    let group_rows = diagram
        .tables
        .iter()
        .flat_map(|t| t.rows.iter())
        .filter(|r| matches!(r.kind, RowKind::GroupBy))
        .count();
    let having_rows = diagram
        .tables
        .iter()
        .flat_map(|t| t.rows.iter())
        .filter(|r| matches!(r.kind, RowKind::Having { .. }))
        .count();
    DiagramStats {
        tables,
        rows,
        edges,
        boxes,
        arrowheads,
        labels,
        selection_rows,
        group_rows,
        having_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_diagram;
    use queryvis_logic::{simplify, translate};
    use queryvis_sql::parse_query;

    const QSOME: &str = "SELECT F.person FROM Frequents F, Likes L, Serves S \
        WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink";

    const QONLY: &str = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
        (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
        (SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))";

    fn stats(sql: &str, simplified: bool) -> DiagramStats {
        let lt = translate(&parse_query(sql).unwrap(), None).unwrap();
        let lt = if simplified { simplify(&lt) } else { lt };
        diagram_stats(&build_diagram(&lt))
    }

    #[test]
    fn fig2a_element_count() {
        let s = stats(QSOME, false);
        assert_eq!(s.tables, 4);
        assert_eq!(s.rows, 7);
        assert_eq!(s.edges, 4);
        assert_eq!(s.boxes, 0);
        assert_eq!(s.visual_elements(), 15);
    }

    #[test]
    fn fig2b_is_13_percent_more_complex() {
        let base = stats(QSOME, false);
        let nested = stats(QONLY, false);
        assert_eq!(nested.visual_elements(), 17);
        let inc = nested.increase_over(&base);
        assert!((inc - 0.1333).abs() < 0.01, "got {inc:.4}");
    }

    #[test]
    fn fig2c_is_7_percent_more_complex() {
        let base = stats(QSOME, false);
        let simplified = stats(QONLY, true);
        assert_eq!(simplified.visual_elements(), 16);
        let inc = simplified.increase_over(&base);
        assert!((inc - 0.0667).abs() < 0.01, "got {inc:.4}");
    }

    #[test]
    fn channels_counted_separately() {
        let s = stats(QONLY, false);
        assert_eq!(s.arrowheads, 3); // three cross-depth join edges
        assert_eq!(s.labels, 0); // all equijoins
        let s2 = stats(
            "SELECT A.x FROM T A, T B WHERE A.x < B.x AND A.y = B.y",
            false,
        );
        assert_eq!(s2.labels, 1);
    }
}
