//! Register-once metric storage: append-only slots behind a name index.
//!
//! Registration (rare, startup/first-use) takes a mutex and scans a small
//! name vector; every later access is a single atomic load — `OnceLock`
//! slots are filled *before* their id is published, so a handed-out id
//! always points at initialized storage. Hot-path mutation never touches
//! the lock.
//!
//! Counters are sharded: each logical counter owns [`COUNTER_SHARDS`]
//! cache-line-padded relaxed atomics, and every thread picks a home shard
//! once (round-robin at first use), so concurrent increments from a
//! thread pool don't ping-pong one cache line. Reads sum the shards —
//! counters are monotone, so a racing read is merely a moment-in-time
//! floor, never a torn value.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard cap per metric kind. Registration panics beyond it — the metric
/// vocabulary is a small, developer-controlled set, and a run-away
/// registration loop is a bug worth failing loudly on.
pub const MAX_METRICS: usize = 256;

/// Per-counter shard fan-out (power of two).
pub const COUNTER_SHARDS: usize = 8;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's ordinal, assigned round-robin at first telemetry use;
    /// the low bits pick its counter shard, the full value labels its
    /// trace records.
    static THREAD_ORDINAL: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// A small stable id for the current thread (trace labeling).
pub fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|t| *t)
}

#[inline]
fn thread_shard() -> usize {
    THREAD_ORDINAL.with(|t| *t) & (COUNTER_SHARDS - 1)
}

/// One cache line per shard so neighboring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A sharded monotone counter.
#[derive(Default)]
pub struct CounterCell {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl CounterCell {
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed gauge (not sharded — gauges record *levels*, and a
/// sharded level cannot be set atomically; gauge traffic is cold).
#[derive(Default)]
pub struct GaugeCell(AtomicI64);

impl GaugeCell {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Append-only named storage for one metric kind.
pub struct Registry<T> {
    names: Mutex<Vec<String>>,
    slots: [OnceLock<T>; MAX_METRICS],
}

impl<T> Default for Registry<T> {
    fn default() -> Registry<T> {
        Registry::new()
    }
}

impl<T> Registry<T> {
    pub const fn new() -> Registry<T> {
        Registry {
            names: Mutex::new(Vec::new()),
            slots: [const { OnceLock::new() }; MAX_METRICS],
        }
    }

    /// Register `name`, initializing its slot with `init` on first sight;
    /// idempotent — re-registering a name returns the original id.
    pub fn register(&self, name: &str, init: impl FnOnce() -> T) -> u32 {
        let mut names = self.names.lock().expect("registry name index poisoned");
        if let Some(i) = names.iter().position(|n| n == name) {
            return i as u32;
        }
        let idx = names.len();
        assert!(idx < MAX_METRICS, "telemetry registry full ({name})");
        if self.slots[idx].set(init()).is_err() {
            unreachable!("slot {idx} initialized before its id was published");
        }
        names.push(name.to_string());
        idx as u32
    }

    /// The slot behind a previously registered id. Lock-free.
    #[inline]
    pub fn get(&self, id: u32) -> &T {
        self.slots[id as usize]
            .get()
            .expect("metric id from a different registry")
    }

    /// `(name, &slot)` pairs in registration order.
    pub fn entries(&self) -> Vec<(String, &T)> {
        let names = self.names.lock().expect("registry name index poisoned");
        names
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), self.slots[i].get().expect("registered slot")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let r: Registry<CounterCell> = Registry::new();
        let a = r.register("a", CounterCell::default);
        let b = r.register("b", CounterCell::default);
        assert_ne!(a, b);
        assert_eq!(r.register("a", CounterCell::default), a);
        r.get(a).add(2);
        r.get(a).add(3);
        assert_eq!(r.get(a).value(), 5);
        assert_eq!(r.get(b).value(), 0);
        let names: Vec<String> = r.entries().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn counter_shards_sum() {
        let c = CounterCell::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = GaugeCell::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }
}
