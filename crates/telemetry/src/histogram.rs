//! A fixed-bucket log-linear latency histogram (HDR-style).
//!
//! Values are unsigned integers (the pipeline records nanoseconds). The
//! bucket layout is *log-linear*: the first [`BASE`] values (0–31) get one
//! exact bucket each, and every power-of-two octave above that is split
//! into [`BASE`] equal-width sub-buckets, so the relative quantization
//! error is bounded by `1/BASE` (≈3.1%) across the whole `u64` range. No
//! value is ever out of range — `u64::MAX` lands in the last bucket — and
//! no bucket is ever allocated lazily, so recording is a handful of
//! relaxed atomic adds with no branches on sizes.
//!
//! Concurrency model: [`Histogram`] is the shared, writable form — any
//! number of threads `record` into the same instance (relaxed atomics;
//! counts never decrease, so concurrent [`Histogram::snapshot`]s observe
//! monotonically non-decreasing totals). [`HistogramSnapshot`] is the
//! owned, queryable form: percentiles, mean, merge (exact and
//! associative — bucket-wise addition), and windowed `diff`s between two
//! snapshots of the same histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave: 2^5 = 32, bounding relative error at 1/32.
const SUB_BITS: u32 = 5;
/// Width of the exact range and of each octave's sub-bucket fan-out.
pub const BASE: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`: the exact range plus 59
/// octaves (msb 5 through 63) of `BASE` sub-buckets each.
pub const BUCKET_COUNT: usize = (BASE as usize) * 60;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < BASE {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let offset = msb - SUB_BITS;
    let sub = (value >> offset) - BASE;
    ((BASE as usize) * (offset as usize + 1)) + sub as usize
}

/// The smallest value mapping to `index`.
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    if index < BASE as usize {
        return index as u64;
    }
    let offset = (index / BASE as usize - 1) as u32;
    let sub = (index % BASE as usize) as u64;
    (BASE + sub) << offset
}

/// The largest value mapping to `index` (inclusive).
#[inline]
pub fn bucket_high(index: usize) -> u64 {
    if index < BASE as usize {
        return index as u64;
    }
    let offset = (index / BASE as usize - 1) as u32;
    let width = 1u64 << offset;
    bucket_low(index).saturating_add(width - 1)
}

/// A concurrently writable log-linear histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKET_COUNT]),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free: four relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// An owned copy of the current state. The total count is derived from
    /// the bucket counts themselves (not a separate counter), so counts in
    /// a snapshot always sum to its `count` even while writers race, and
    /// successive snapshots never report a decreasing total.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, queryable histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record into an owned snapshot (single-threaded accumulation — the
    /// bench harness path).
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`). The returned value is
    /// the upper bound of the bucket holding the rank, clamped to the
    /// exactly tracked `[min, max]` — so `percentile(0) == min()` and
    /// `percentile(100) == max()` hold exactly, and any quantile is within
    /// one bucket width (≤ `1/BASE` relative) of the true order statistic.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        // The extreme order statistics are tracked exactly — report them
        // exactly instead of through bucket quantization.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merge another snapshot into this one. Bucket-wise addition —
    /// exact, commutative, and associative, so per-thread histograms can
    /// be combined in any order with identical results.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The window between an earlier snapshot of the *same* histogram and
    /// this one: bucket-wise saturating subtraction. Used for per-pass
    /// latency windows in the service binary's `--stats` output.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count: u64 = counts.iter().sum();
        // True window extremes are not tracked; bound them by the window's
        // own occupied buckets, clamped to the lifetime extremes.
        let (min, max) = if count == 0 {
            (u64::MAX, 0)
        } else {
            let first = counts.iter().position(|&c| c > 0).unwrap();
            let last = counts.iter().rposition(|&c| c > 0).unwrap();
            (
                bucket_low(first).max(self.min),
                bucket_high(last).min(self.max),
            )
        };
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_range_is_exact() {
        for v in 0..BASE {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous() {
        // Every bucket's high + 1 is the next bucket's low — no gaps, no
        // overlaps, across the whole index space.
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(
                bucket_high(i).saturating_add(1),
                bucket_low(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_high(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn extremes_land_in_range() {
        for v in [0, 1, 31, 32, 33, 63, 64, 1 << 20, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v = {v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in 6..63 {
            let v = (1u64 << shift) + (1 << (shift - 1)) + 17;
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                (width as f64) / (v as f64) <= 1.0 / BASE as f64 + 1e-9,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        // ≤3.2% quantization error on every quantile.
        for (p, expected) in [(50.0, 500u64), (90.0, 900), (99.0, 990), (99.9, 999)] {
            let got = s.percentile(p);
            let err = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(err <= 0.032, "p{p}: got {got}, want ≈{expected}");
        }
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn diff_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1000);
        let window = h.snapshot().diff(&before);
        assert_eq!(window.count(), 1);
        assert!(window.percentile(50.0) >= 1000 - 32);
    }
}
