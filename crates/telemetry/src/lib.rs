//! # queryvis-telemetry
//!
//! The workspace's vendored observability layer (no crates.io): one
//! process-wide [`Telemetry`] instance holding
//!
//! * a metrics registry of **sharded relaxed-atomic counters** and gauges
//!   ([`registry`]) — register-once by name, `Copy`-cheap static handles
//!   ([`CounterDef`], [`GaugeDef`]), ~zero cost on the warm path;
//! * **log-linear latency histograms** ([`histogram`]) — fixed buckets,
//!   ≤3.1% relative quantization error over all of `u64`, mergeable,
//!   exact-extreme p50/p90/p99/p999 queries;
//! * a lightweight **span API** ([`StageDef::span`]) — an RAII guard that
//!   times a pipeline stage into the stage's histogram and, when tracing
//!   is on, appends a per-request [`TraceRecord`] to the trace sink.
//!
//! ## The disabled path
//!
//! Everything is gated on one relaxed [`Telemetry::enabled`] flag, off by
//! default: a disabled counter bump or span is a single atomic load and a
//! predictable branch — no clock reads, no atomics written, no
//! allocation — which is what keeps the service's 2.3µs `warm_hit`
//! budget intact (enforced by `bench_guard`'s `warm_hit_telemetry_off`
//! row). Enabling at runtime (`--stats`, `--trace-jsonl`) costs a few
//! sharded increments and two `Instant` reads per span.
//!
//! ## Who records what
//!
//! Stage spans live where the stages live: `queryvis-sql` times lex and
//! parse, `queryvis` (core) times lowering/diagram/scene, `queryvis-ir`'s
//! `PassManager` publishes per-pass durations and fact counts, and
//! `queryvis-service` times canonicalization, per-format rendering, and
//! end-to-end request latency, folding in its L1/L2 hit/miss/eviction and
//! in-flight-dedup counters. The service exports everything as one JSON
//! document via its own `json` writer (`stats_json` module there); this
//! crate deliberately has no serialization and no dependencies.

pub mod histogram;
pub mod registry;

pub use histogram::{Histogram, HistogramSnapshot};

use registry::{CounterCell, GaugeCell, Registry};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Sentinel request id for spans recorded outside any request scope.
pub const NO_REQUEST: u64 = u64::MAX;

/// Upper bound on buffered trace records; beyond it records are counted
/// as dropped instead of growing without bound.
const MAX_TRACE_RECORDS: usize = 1 << 20;

/// One completed span, for offline analysis (`service --trace-jsonl`).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The request id active when the span closed ([`NO_REQUEST`] if none).
    pub request: u64,
    /// Stage name (the owning [`StageDef`]'s name).
    pub stage: &'static str,
    /// Span start, nanoseconds since the trace epoch (first telemetry use
    /// in the process).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Stable per-thread ordinal.
    pub thread: u32,
}

/// The process-wide telemetry state. Use [`global()`]; the struct is
/// public only so its methods can be documented and called through the
/// global reference.
pub struct Telemetry {
    enabled: AtomicBool,
    tracing: AtomicBool,
    counters: Registry<CounterCell>,
    gauges: Registry<GaugeCell>,
    histograms: Registry<Histogram>,
    trace: Mutex<Vec<TraceRecord>>,
    trace_dropped: AtomicU64,
    epoch: OnceLock<Instant>,
}

static GLOBAL: Telemetry = Telemetry {
    enabled: AtomicBool::new(false),
    tracing: AtomicBool::new(false),
    counters: Registry::new(),
    gauges: Registry::new(),
    histograms: Registry::new(),
    trace: Mutex::new(Vec::new()),
    trace_dropped: AtomicU64::new(0),
    epoch: OnceLock::new(),
};

/// The process-wide telemetry instance.
#[inline]
pub fn global() -> &'static Telemetry {
    &GLOBAL
}

/// Whether telemetry is recording (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    GLOBAL.enabled.load(Ordering::Relaxed)
}

/// `Instant::now()` only when telemetry is recording — the pattern for
/// call sites that time a region without a [`StageDef`] (e.g. the batch
/// executor's per-request service-time attribution).
#[inline]
pub fn now_if_enabled() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

impl Telemetry {
    /// Turn recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn span tracing on or off. Tracing implies nothing about
    /// `enabled` — callers that want traces enable both.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
        if on {
            self.epoch(); // pin the epoch before the first span
        }
    }

    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    fn epoch(&self) -> Instant {
        *self.epoch.get_or_init(Instant::now)
    }

    /// Drain every buffered trace record (oldest first).
    pub fn drain_trace(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.trace.lock().expect("trace sink poisoned"))
    }

    /// Records dropped because the trace sink was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    fn push_trace(&self, record: TraceRecord) {
        let mut sink = self.trace.lock().expect("trace sink poisoned");
        if sink.len() >= MAX_TRACE_RECORDS {
            drop(sink);
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        sink.push(record);
    }

    fn counter_id(&self, def: &CounterDef) -> u32 {
        *def.id
            .get_or_init(|| self.counters.register(def.name, CounterCell::default))
    }

    fn gauge_id(&self, def: &GaugeDef) -> u32 {
        *def.id
            .get_or_init(|| self.gauges.register(def.name, GaugeCell::default))
    }

    fn histogram_id(&self, def: &StageDef) -> u32 {
        *def.id
            .get_or_init(|| self.histograms.register(def.name, Histogram::new))
    }

    /// Record a duration into a histogram registered by *runtime* name
    /// (the `PassManager` path: pass names compose as `pass.<name>`).
    /// Registration-by-name costs a short mutex section; call sites with
    /// static stages should use a [`StageDef`] instead.
    pub fn record_named_ns(&self, name: &str, ns: u64) {
        if !self.enabled() {
            return;
        }
        let id = self.histograms.register(name, Histogram::new);
        self.histograms.get(id).record(ns);
    }

    /// A full snapshot of every counter, gauge, and histogram, sorted by
    /// name so exports are schema-stable.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .entries()
            .into_iter()
            .map(|(name, cell)| (name, cell.value()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .entries()
            .into_iter()
            .map(|(name, cell)| (name, cell.value()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .entries()
            .into_iter()
            .map(|(name, h)| (name, h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        TelemetrySnapshot {
            enabled: self.enabled(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of every metric, sorted by name.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    pub enabled: bool,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

// ---------------------------------------------------------------------
// Static metric handles
// ---------------------------------------------------------------------

/// A register-once counter handle, declared `static` at its use site:
///
/// ```
/// use queryvis_telemetry::CounterDef;
/// static HITS: CounterDef = CounterDef::new("l2_hits");
/// HITS.add(1); // no-op unless telemetry is enabled
/// ```
pub struct CounterDef {
    name: &'static str,
    id: OnceLock<u32>,
}

impl CounterDef {
    pub const fn new(name: &'static str) -> CounterDef {
        CounterDef {
            name,
            id: OnceLock::new(),
        }
    }

    /// Add `n` when telemetry is enabled; a load and a branch otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        let t = global();
        if !t.enabled() {
            return;
        }
        t.counters.get(t.counter_id(self)).add(n);
    }

    /// Current total (registers the counter if it never incremented).
    pub fn value(&self) -> u64 {
        let t = global();
        t.counters.get(t.counter_id(self)).value()
    }
}

/// A register-once gauge handle (see [`CounterDef`] for the pattern).
pub struct GaugeDef {
    name: &'static str,
    id: OnceLock<u32>,
}

impl GaugeDef {
    pub const fn new(name: &'static str) -> GaugeDef {
        GaugeDef {
            name,
            id: OnceLock::new(),
        }
    }

    #[inline]
    pub fn add(&self, d: i64) {
        let t = global();
        if !t.enabled() {
            return;
        }
        t.gauges.get(t.gauge_id(self)).add(d);
    }

    pub fn set(&self, v: i64) {
        let t = global();
        if !t.enabled() {
            return;
        }
        t.gauges.get(t.gauge_id(self)).set(v);
    }

    pub fn value(&self) -> i64 {
        let t = global();
        t.gauges.get(t.gauge_id(self)).value()
    }
}

/// A named pipeline stage backed by a latency histogram. Declared
/// `static` where the stage is implemented:
///
/// ```
/// use queryvis_telemetry::StageDef;
/// static PARSE: StageDef = StageDef::new("stage.parse");
/// let _span = PARSE.span(); // records on drop; inert when disabled
/// ```
pub struct StageDef {
    name: &'static str,
    id: OnceLock<u32>,
}

impl StageDef {
    pub const fn new(name: &'static str) -> StageDef {
        StageDef {
            name,
            id: OnceLock::new(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Open an RAII span over this stage. When telemetry is disabled the
    /// guard is inert (no clock read happens at all).
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        if !enabled() {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some((Instant::now(), self)),
        }
    }

    /// Record an externally measured duration into this stage's histogram.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        let t = global();
        if !t.enabled() {
            return;
        }
        t.histograms.get(t.histogram_id(self)).record(ns);
    }

    /// This stage's histogram so far (registers it when never recorded).
    pub fn snapshot(&'static self) -> HistogramSnapshot {
        let t = global();
        t.histograms.get(t.histogram_id(self)).snapshot()
    }
}

/// The RAII guard returned by [`StageDef::span`]: on drop it records the
/// elapsed nanoseconds into the stage histogram and, when tracing is on,
/// appends a [`TraceRecord`] tagged with the current request id.
pub struct SpanGuard {
    active: Option<(Instant, &'static StageDef)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((start, stage)) = self.active.take() else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let t = global();
        // `enabled` may have flipped mid-span; record anyway — the guard
        // already paid for the clock reads, and a histogram point from the
        // enable/disable boundary is harmless.
        t.histograms.get(t.histogram_id(stage)).record(dur_ns);
        if t.tracing() {
            let start_ns = start.duration_since(t.epoch()).as_nanos() as u64;
            t.push_trace(TraceRecord {
                request: current_request(),
                stage: stage.name,
                start_ns,
                dur_ns,
                thread: registry::thread_ordinal() as u32,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Per-request context (trace attribution)
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(NO_REQUEST) };
}

/// The request id spans on this thread are currently attributed to.
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(Cell::get)
}

/// Attribute spans on this thread to `request` until the guard drops
/// (restores the previous attribution, so scopes nest).
pub fn request_scope(request: u64) -> RequestScope {
    let prev = CURRENT_REQUEST.with(|c| c.replace(request));
    RequestScope { prev }
}

pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global telemetry instance is process-wide, so tests use
    // uniquely named metrics, only assert deltas they created, and
    // serialize on ENABLE_LOCK because they toggle the shared flag.
    static ENABLE_LOCK: Mutex<()> = Mutex::new(());

    fn enable_lock() -> std::sync::MutexGuard<'static, ()> {
        ENABLE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_counters_do_not_count() {
        static C: CounterDef = CounterDef::new("test.disabled_counter");
        let _serial = enable_lock();
        global().set_enabled(false);
        C.add(5);
        assert_eq!(C.value(), 0);
        global().set_enabled(true);
        C.add(5);
        assert_eq!(C.value(), 5);
        global().set_enabled(false);
        C.add(5);
        assert_eq!(C.value(), 5);
    }

    #[test]
    fn spans_record_into_stage_histograms() {
        static S: StageDef = StageDef::new("test.span_stage");
        let _serial = enable_lock();
        global().set_enabled(true);
        {
            let _span = S.span();
            std::hint::black_box(1 + 1);
        }
        let snap = S.snapshot();
        assert_eq!(snap.count(), 1);
        global().set_enabled(false);
        {
            let _span = S.span();
        }
        assert_eq!(S.snapshot().count(), 1, "disabled span must not record");
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request(), NO_REQUEST);
        {
            let _outer = request_scope(7);
            assert_eq!(current_request(), 7);
            {
                let _inner = request_scope(9);
                assert_eq!(current_request(), 9);
            }
            assert_eq!(current_request(), 7);
        }
        assert_eq!(current_request(), NO_REQUEST);
    }

    #[test]
    fn tracing_captures_request_tagged_records() {
        static S: StageDef = StageDef::new("test.trace_stage");
        let _serial = enable_lock();
        let t = global();
        t.set_enabled(true);
        t.set_tracing(true);
        t.drain_trace();
        {
            let _scope = request_scope(42);
            let _span = S.span();
        }
        t.set_tracing(false);
        t.set_enabled(false);
        let records: Vec<TraceRecord> = t
            .drain_trace()
            .into_iter()
            .filter(|r| r.stage == "test.trace_stage")
            .collect();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].request, 42);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        static CB: CounterDef = CounterDef::new("test.snap_b");
        static CA: CounterDef = CounterDef::new("test.snap_a");
        let _serial = enable_lock();
        global().set_enabled(true);
        CB.add(2);
        CA.add(1);
        global().set_enabled(false);
        let snap = global().snapshot();
        assert_eq!(snap.counter("test.snap_a"), Some(1));
        assert_eq!(snap.counter("test.snap_b"), Some(2));
        let names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counters must be name-sorted");
    }

    #[test]
    fn named_histograms_register_on_demand() {
        let _serial = enable_lock();
        let t = global();
        t.set_enabled(true);
        t.record_named_ns("pass.test_pass", 1234);
        t.set_enabled(false);
        t.record_named_ns("pass.test_pass", 5678); // ignored
        let snap = t.snapshot();
        let h = snap.histogram("pass.test_pass").expect("registered");
        assert_eq!(h.count(), 1);
    }
}
