//! Property tests for the log-linear histogram, via the vendored
//! `proptest` shim. The properties pin the contract the rest of the
//! workspace builds on:
//!
//! * **bucket boundary exactness** — every value round-trips into a
//!   bucket that contains it, bucket edges are their own fixed points
//!   (`bucket_index(bucket_low(i)) == i`), adjacent buckets tile the
//!   `u64` line with no gaps or overlaps, and bucket width never exceeds
//!   `1/BASE` of the bucket's low edge (the ≤3.2% relative-error bound
//!   quoted everywhere percentiles are reported);
//! * **merge algebra** — merge is bucket-wise addition: commutative,
//!   associative, with `empty` as identity, and equal to having recorded
//!   the concatenated value stream in the first place;
//! * **percentile behaviour** — percentiles are monotone in `p`, clamped
//!   to the exactly-tracked `[min, max]`, exact at both extremes, and
//!   within one bucket of the true nearest-rank order statistic;
//! * **snapshot equivalence** — the atomic [`Histogram`] and the owned
//!   [`HistogramSnapshot`] accumulator agree on identical input, so bench
//!   rows and service stats are directly comparable;
//! * **diff windows** — `later.diff(earlier)` recovers exactly the
//!   bucket counts of the values recorded in between, with min/max
//!   bounds that bracket the window's true extremes.

use proptest::prelude::*;
use queryvis_telemetry::histogram::{bucket_high, bucket_index, bucket_low, BASE, BUCKET_COUNT};
use queryvis_telemetry::{Histogram, HistogramSnapshot};

/// Log-uniform-ish `u64` values: a uniform 64-bit draw shifted right by a
/// uniform amount, so every magnitude (and every octave of the bucket
/// layout) is exercised, not just the astronomically large values a plain
/// uniform draw would produce. `u64::MAX` is mixed in explicitly — it is
/// the last bucket's saturating edge case.
fn values() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u32..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift),
        Just(u64::MAX),
        0u64..(2 * BASE),
    ]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let mut s = HistogramSnapshot::empty();
    for &v in values {
        s.record(v);
    }
    s
}

/// True nearest-rank percentile of a raw sample (the reference the
/// histogram approximates).
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as u64;
    sorted[(rank.clamp(1, sorted.len() as u64) - 1) as usize]
}

proptest! {
    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(v in values()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
        prop_assert!(
            bucket_low(i) <= v && v <= bucket_high(i),
            "{v} outside bucket {i}: [{}, {}]",
            bucket_low(i),
            bucket_high(i)
        );
    }

    #[test]
    fn bucket_edges_are_fixed_points(i in 0usize..BUCKET_COUNT) {
        prop_assert_eq!(bucket_index(bucket_low(i)), i);
        prop_assert_eq!(bucket_index(bucket_high(i)), i);
    }

    #[test]
    fn adjacent_buckets_tile_without_gaps(i in 0usize..BUCKET_COUNT - 1) {
        prop_assert_eq!(bucket_high(i).saturating_add(1), bucket_low(i + 1));
    }

    #[test]
    fn bucket_width_bounds_relative_error(v in values()) {
        let i = bucket_index(v);
        if i >= BASE as usize {
            // Octave buckets: width ≤ low / BASE, hence percentile
            // quantization error ≤ 1/BASE relative.
            let width = bucket_high(i) - bucket_low(i) + 1;
            prop_assert!(
                width <= bucket_low(i) / BASE,
                "bucket {i} width {width} exceeds 1/{BASE} of low {}",
                bucket_low(i)
            );
        } else {
            // Exact range: one value per bucket, zero error.
            prop_assert_eq!(bucket_low(i), bucket_high(i));
            prop_assert_eq!(bucket_low(i), v);
        }
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in proptest::collection::vec(values(), 0..20),
        b in proptest::collection::vec(values(), 0..20),
        c in proptest::collection::vec(values(), 0..20),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        // empty is the identity.
        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &sa);
        // Merging equals having recorded the concatenated stream.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    #[test]
    fn percentiles_are_monotone_and_clamped(
        samples in proptest::collection::vec(values(), 1..40),
    ) {
        let s = snapshot_of(&samples);
        let mut previous = 0u64;
        for tenth in 0..=100u64 {
            let p = tenth as f64;
            let got = s.percentile(p);
            prop_assert!(
                got >= previous,
                "percentile not monotone: p{p} = {got} < {previous}"
            );
            prop_assert!(s.min() <= got && got <= s.max());
            previous = got;
        }
        prop_assert_eq!(s.percentile(0.0), s.min());
        prop_assert_eq!(s.percentile(100.0), s.max());
    }

    #[test]
    fn percentile_is_within_one_bucket_of_truth(
        samples in proptest::collection::vec(values(), 1..40),
        tenth in 0u64..=1000,
    ) {
        let s = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let p = tenth as f64 / 10.0;
        let truth = exact_percentile(&sorted, p);
        let got = s.percentile(p);
        // The reported quantile never undershoots the true order
        // statistic and never overshoots its bucket's upper edge (or the
        // exact max, whichever is tighter).
        prop_assert!(
            got >= truth,
            "p{p}: reported {got} undershoots true {truth}"
        );
        prop_assert!(
            got <= bucket_high(bucket_index(truth)).min(s.max()),
            "p{p}: reported {got} beyond bucket of true {truth}"
        );
    }

    #[test]
    fn atomic_and_owned_accumulators_agree(
        samples in proptest::collection::vec(values(), 0..40),
    ) {
        // The atomic histogram's sum wraps (fetch_add) while the owned one
        // saturates; nanosecond totals never approach u64::MAX in practice,
        // so the equivalence claim is scoped to non-overflowing streams.
        prop_assume!(
            samples.iter().map(|&v| u128::from(v)).sum::<u128>() <= u128::from(u64::MAX)
        );
        let atomic = Histogram::new();
        for &v in &samples {
            atomic.record(v);
        }
        prop_assert_eq!(&atomic.snapshot(), &snapshot_of(&samples));
    }

    #[test]
    fn diff_recovers_the_window(
        before in proptest::collection::vec(values(), 0..20),
        after in proptest::collection::vec(values(), 1..20),
    ) {
        prop_assume!(
            before
                .iter()
                .chain(&after)
                .map(|&v| u128::from(v))
                .sum::<u128>()
                <= u128::from(u64::MAX)
        );
        let h = Histogram::new();
        for &v in &before {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &after {
            h.record(v);
        }
        let window = h.snapshot().diff(&earlier);
        let expected = snapshot_of(&after);
        prop_assert_eq!(window.count(), expected.count());
        prop_assert_eq!(window.sum(), expected.sum());
        // Bucket counts match the standalone window exactly; min/max are
        // conservative bounds that bracket the true window extremes.
        prop_assert!(window.min() <= expected.min());
        prop_assert!(window.max() >= expected.max());
        for tenth in 0..=10u64 {
            let p = tenth as f64 * 10.0;
            prop_assert!(
                window.percentile(p) >= expected.percentile(p) / 2
                    || window.percentile(p) + BASE >= expected.percentile(p),
                "window p{p} wildly off"
            );
        }
    }
}
