//! Concurrency stress: 12 writer threads hammer a shared counter and a
//! shared stage histogram while a reader thread takes `snapshot()`s the
//! whole time. The contract under test is the one `--stats` depends on:
//!
//! * snapshots taken mid-flight are never *torn* — a histogram
//!   snapshot's per-bucket counts always sum to its reported `count`
//!   (the total is derived from the buckets, not a separate counter);
//! * successive snapshots never report a decreasing counter value,
//!   histogram count, or histogram sum (relaxed atomics, but counts
//!   only ever increase);
//! * after all writers join, the totals are exact — no lost updates
//!   across the sharded counter cells or histogram buckets;
//! * per-thread owned snapshots merge to the same result in any order.
//!
//! This test is its own integration binary: it flips the process-global
//! telemetry flag, which must not race other tests' expectations.

use queryvis_telemetry::{CounterDef, HistogramSnapshot, StageDef};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

static C_OPS: CounterDef = CounterDef::new("stress.ops");
static STAGE_WORK: StageDef = StageDef::new("stress.work");

const WRITERS: usize = 12;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn concurrent_writers_and_snapshots_stay_consistent() {
    queryvis_telemetry::global().set_enabled(true);

    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_ops = 0u64;
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = queryvis_telemetry::global().snapshot();
                let ops = snap.counter("stress.ops").unwrap_or(0);
                assert!(
                    ops >= last_ops,
                    "counter went backwards: {ops} < {last_ops}"
                );
                last_ops = ops;
                if let Some(h) = snap.histogram("stress.work") {
                    assert!(
                        h.count() >= last_count,
                        "histogram count went backwards: {} < {last_count}",
                        h.count()
                    );
                    assert!(
                        h.sum() >= last_sum,
                        "histogram sum went backwards: {} < {last_sum}",
                        h.sum()
                    );
                    // Not torn: percentiles of a mid-flight snapshot stay
                    // inside its own [min, max] envelope.
                    if !h.is_empty() {
                        assert!(h.min() <= h.p50() && h.p50() <= h.max());
                        assert!(h.p50() <= h.p999());
                    }
                    last_count = h.count();
                    last_sum = h.sum();
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            thread::spawn(move || {
                let mut local = HistogramSnapshot::empty();
                for i in 0..OPS_PER_WRITER {
                    // Deterministic per-thread values spanning several
                    // octaves, so merges exercise many buckets.
                    let value = (w as u64 + 1) * 100 + (i % 1000);
                    C_OPS.add(1);
                    STAGE_WORK.record_ns(value);
                    local.record(value);
                }
                local
            })
        })
        .collect();

    let locals: Vec<HistogramSnapshot> = writers.into_iter().map(|w| w.join().unwrap()).collect();
    done.store(true, Ordering::Release);
    let snapshots_taken = reader.join().unwrap();
    assert!(snapshots_taken > 0, "reader never ran");

    // Exact final totals: no lost updates.
    let total = WRITERS as u64 * OPS_PER_WRITER;
    assert_eq!(C_OPS.value(), total);
    let global = STAGE_WORK.snapshot();
    assert_eq!(global.count(), total);

    // Per-thread histograms merge to the global one (counts and sum;
    // min/max too — same value stream), in any merge order.
    let mut forward = HistogramSnapshot::empty();
    for local in &locals {
        forward.merge(local);
    }
    let mut reverse = HistogramSnapshot::empty();
    for local in locals.iter().rev() {
        reverse.merge(local);
    }
    assert_eq!(forward, reverse, "merge must be order-independent");
    assert_eq!(forward.count(), global.count());
    assert_eq!(forward.sum(), global.sum());
    assert_eq!(forward.min(), global.min());
    assert_eq!(forward.max(), global.max());

    queryvis_telemetry::global().set_enabled(false);
}
