//! Vendored stand-in for the tiny slice of the `rand` crate this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer and float ranges.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! its own deterministic generator instead of the real `rand` crate. The
//! stream differs from upstream `StdRng` (which is ChaCha12): all in-repo
//! consumers assert *statistical* properties or seed-reproducibility, never
//! upstream byte streams, so any high-quality deterministic PRNG suffices.
//! The engine is xoshiro256++ seeded through SplitMix64 — both public-domain
//! algorithms with well-studied equidistribution.

use std::ops::Range;

/// Low-level source of random 64-bit words. Object-safe so range sampling
/// can be written once over `dyn RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the subset the workspace calls).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range, matching
    /// upstream `rand` behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that [`Rng::gen_range`] can sample from. The output type is an
/// independent parameter (as in upstream `rand`) so integer-literal ranges
/// unify with the expected result type instead of falling back to `i32`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a raw word to an integer in `[0, width)` without modulo bias
/// (Lemire's multiply-shift; the tiny residual bias at 2^64 scale is far
/// below anything the statistical tests can see).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                // Route through i128 so signed ranges (and usize on 64-bit)
                // can't overflow while computing the width.
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, width) as i128) as $t
            }
        }
    )+};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = self.start + (self.end - self.start) * unit;
        // Floating-point rounding can in principle land on the excluded
        // upper endpoint; fold it back to keep the half-open contract.
        if value >= self.end {
            self.start
        } else {
            value
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is the one degenerate orbit of xoshiro; SplitMix64
            // cannot produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn float_ranges_stay_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.5f64..3.25);
            assert!((2.5..3.25).contains(&v));
        }
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2020);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
