//! The 12 multiple-choice study questions of Appendix F.
//!
//! Q1–Q3: conjunctive without self-joins; Q4–Q6: conjunctive with
//! self-joins; Q7–Q9: grouping (the extension excluded from the paper's
//! main 9-question analysis); Q10–Q12: nested. Within each category the
//! three questions are designated simple / medium / complex "based on the
//! number of joins and number of table aliases referenced" (§6.1).
//!
//! The SQL is transcribed verbatim except for one typo fix: Q7's
//! `I.InvocieId` (sic) is corrected to `I.InvoiceId` so the query
//! validates against the Chinook schema.

/// The paper's three main question categories plus the grouping extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionCategory {
    /// Conjunctive queries without self-joins (Q1–Q3).
    Conjunctive,
    /// Conjunctive queries with self-joins (Q4–Q6).
    SelfJoin,
    /// GROUP BY / aggregate queries (Q7–Q9; extension).
    Grouping,
    /// Nested queries (Q10–Q12).
    Nested,
}

/// Per-category difficulty designation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Complexity {
    Simple,
    Medium,
    Complex,
}

/// One multiple-choice question: a query plus four closely-worded
/// interpretations, exactly one of which is correct.
#[derive(Debug, Clone)]
pub struct McqQuestion {
    /// "Q1" … "Q12".
    pub id: &'static str,
    /// 1-based question number (presentation order).
    pub number: usize,
    pub category: QuestionCategory,
    pub complexity: Complexity,
    pub sql: &'static str,
    pub choices: [&'static str; 4],
    /// Index into `choices` of the correct interpretation.
    pub correct: usize,
}

impl McqQuestion {
    /// True if the question is part of the paper's main 9-question
    /// analysis (everything except the grouping extension).
    pub fn in_core_nine(&self) -> bool {
        self.category != QuestionCategory::Grouping
    }
}

/// All 12 study questions in presentation order.
pub fn study_questions() -> Vec<McqQuestion> {
    vec![
        McqQuestion {
            id: "Q1",
            number: 1,
            category: QuestionCategory::Conjunctive,
            complexity: Complexity::Simple,
            sql: "SELECT A.Name\n\
                  FROM Artist A, Album AL, Track T\n\
                  WHERE AL.AlbumId = T.AlbumId\n\
                  AND A.ArtistId = AL.ArtistId\n\
                  AND A.Name = T.Composer",
            choices: [
                "Find artists who have an album with a track that is composed by themselves.",
                "Find artists who have an album with a track whose composer has the same name as the artists themselves.",
                "Find artists whose names are the same as the composer of some track in some album.",
                "Find artists whose names are the same as the composer of some track in an album by an artist other than themselves.",
            ],
            correct: 1,
        },
        McqQuestion {
            id: "Q2",
            number: 2,
            category: QuestionCategory::Conjunctive,
            complexity: Complexity::Medium,
            sql: "SELECT E1.EmployeeId\n\
                  FROM Employee E1, Employee E2, Customer C, Invoice I, InvoiceLine IL, Track T, Genre G\n\
                  WHERE E1.ReportsTo = E2.EmployeeId\n\
                  AND E1.Country <> E2.Country\n\
                  AND E2.EmployeeId = C.SupportRepId\n\
                  AND I.CustomerId = C.CustomerId\n\
                  AND I.InvoiceId = IL.InvoiceId\n\
                  AND T.TrackId = IL.TrackId\n\
                  AND T.GenreId = G.GenreId\n\
                  AND G.Name = 'Rock'",
            choices: [
                "Find employees who report to an employee in a different country and the former employee supports at least one customer that has bought a 'Rock' track.",
                "Find employees who report to an employee in a different country and the former employee supports only support customers that have bought a 'Rock' track.",
                "Find employees who report to an employee in a different country and the latter employee only supports customers that have bought a 'Rock' track.",
                "Find employees who report to an employee in a different country and the latter employee supports at least one customer that has bought a 'Rock' track.",
            ],
            correct: 3,
        },
        McqQuestion {
            id: "Q3",
            number: 3,
            category: QuestionCategory::Conjunctive,
            complexity: Complexity::Complex,
            sql: "SELECT A.Name\n\
                  FROM Artist A, Album AL, Track T,\n\
                  PlaylistTrack PT, Playlist P, MediaType MT, Genre G,\n\
                  InvoiceLine IL, Invoice I, Customer C\n\
                  WHERE AL.ArtistId = A.ArtistId\n\
                  AND AL.AlbumId = T.AlbumId\n\
                  AND T.TrackId = PT.TrackId\n\
                  AND P.PlaylistId = PT.PlaylistId\n\
                  AND T.MediaTypeId = MT.MediaTypeId\n\
                  AND G.GenreId = T.GenreId\n\
                  AND T.TrackId = IL.TrackId\n\
                  AND I.InvoiceId = IL.InvoiceId\n\
                  AND I.CustomerId = C.CustomerId\n\
                  AND MT.Name = 'AAC audio file'\n\
                  AND G.Name = 'Rock'",
            choices: [
                "Find artists who have an album that has a 'Rock' track that is available as 'ACC audio file', and the album has a track that is in a playlist and was purchased by a customer.",
                "Find artists who have an album that has a 'Rock' track that is available as 'ACC audio file', is in a playlist, and was purchased by a customer.",
                "Find artists who have an album that has a track that is in a playlist and was purchased by a customer, and a 'Rock' track that is available as 'ACC audio file'.",
                "Find artists who have an album that has a track that is in a playlist, is available as 'ACC audio file', and was purchased by a customer who also bought a 'Rock' track from the same artist.",
            ],
            correct: 1,
        },
        McqQuestion {
            id: "Q4",
            number: 4,
            category: QuestionCategory::SelfJoin,
            complexity: Complexity::Simple,
            sql: "SELECT A.ArtistId, A.Name\n\
                  FROM Artist A, Album AL1, Album AL2, Track T1, Track T2, Genre G1, Genre G2,\n\
                  PlaylistTrack PT1, PlaylistTrack PT2\n\
                  WHERE A.ArtistId = AL1.ArtistId\n\
                  AND A.ArtistId = AL2.ArtistId\n\
                  AND AL1.AlbumId = T1.AlbumId\n\
                  AND AL2.AlbumId = T2.AlbumId\n\
                  AND T1.GenreId = G1.GenreId\n\
                  AND T2.GenreId = G2.GenreId\n\
                  AND PT1.PlaylistId = PT2.PlaylistId\n\
                  AND PT1.TrackId = T1.TrackId\n\
                  AND PT2.TrackId = T2.TrackId\n\
                  AND G1.Name = 'Rock'\n\
                  AND G2.Name = 'Pop'",
            choices: [
                "Find artists who have an album with a 'Pop' track and an album with a 'Rock' track and both tracks are in the same playlist.",
                "Find artists who have an album with a 'Pop' track and a 'Rock' track and each track is in at least one playlist.",
                "Find artists who have an album with a 'Pop' track and an album with a 'Rock' track and each track is in at least one playlist.",
                "Find artists who have an album with a 'Pop' track and a 'Rock' track and both tracks are in the same playlist.",
            ],
            correct: 0,
        },
        McqQuestion {
            id: "Q5",
            number: 5,
            category: QuestionCategory::SelfJoin,
            complexity: Complexity::Medium,
            sql: "SELECT C.CustomerId, C.FirstName, C.LastName\n\
                  FROM Customer C, Invoice I1, Invoice I2\n\
                  WHERE C.State = 'Michigan'\n\
                  AND C.CustomerId = I1.CustomerId\n\
                  AND C.CustomerId = I2.CustomerId\n\
                  AND I1.BillingState <> I2.BillingState",
            choices: [
                "Find customers from 'Michigan' that have two invoices billed at two different states where one of them is 'Michigan'.",
                "Find customers from 'Michigan' that have two invoices billed at two different states where none of them is 'Michigan'.",
                "Find customers from 'Michigan' that have two invoices billed at two different states.",
                "Find customers from 'Michigan' that have two invoices billed at 'Michigan'.",
            ],
            correct: 2,
        },
        McqQuestion {
            id: "Q6",
            number: 6,
            category: QuestionCategory::SelfJoin,
            complexity: Complexity::Complex,
            sql: "SELECT P.PlaylistId, P.Name\n\
                  FROM Playlist P, PlaylistTrack PT1,\n\
                  PlaylistTrack PT2, PlaylistTrack PT3,\n\
                  Track T1, Track T2, Track T3\n\
                  WHERE P.PlaylistId = PT1.PlaylistId\n\
                  AND P.PlaylistId = PT2.PlaylistId\n\
                  AND P.PlaylistId = PT3.PlaylistId\n\
                  AND PT1.TrackId <> PT2.TrackId\n\
                  AND PT2.TrackId <> PT3.TrackId\n\
                  AND PT1.TrackId <> PT3.TrackId\n\
                  AND PT1.TrackId = T1.TrackId\n\
                  AND PT2.TrackId = T2.TrackId\n\
                  AND PT3.TrackId = T3.TrackId\n\
                  AND T1.AlbumId = T2.AlbumId\n\
                  AND T2.AlbumId = T3.AlbumId\n\
                  AND T2.Composer = T3.Composer",
            choices: [
                "Find playlists that have at least 3 different tracks that are in the same album and they are all made by the same composer.",
                "Find playlists that have at least 3 different tracks so that at least 2 of them are in the same album but all 3 tracks are made by the same composer.",
                "Find playlists that have at least 3 different tracks so that at least 2 of them are in the same album and made by the same composer.",
                "Find playlists that have at least 3 different tracks that are in the same album and at least 2 of them are made by the same composer.",
            ],
            correct: 3,
        },
        McqQuestion {
            id: "Q7",
            number: 7,
            category: QuestionCategory::Grouping,
            complexity: Complexity::Simple,
            sql: "SELECT I.CustomerId, SUM(IL.Quantity)\n\
                  FROM Artist A, Album AL, Track T, InvoiceLine IL, Invoice I\n\
                  WHERE A.ArtistId = AL.ArtistId\n\
                  AND AL.AlbumId = T.AlbumId\n\
                  AND T.TrackId = IL.TrackId\n\
                  AND IL.InvoiceId = I.InvoiceId\n\
                  AND A.Name = 'Carlos'\n\
                  GROUP BY I.CustomerId",
            choices: [
                "For each customer who bought a track from an artist named 'Carlos', find the number of tracks they bought that are by that same artist named 'Carlos'.",
                "For each customer who bought a track from an artist named 'Carlos', find the number of tracks they bought that are part of invoices that include a track by that same artist named 'Carlos'.",
                "For each customer who bought a track from an artist named 'Carlos', find the total number of tracks that customer has purchased.",
                "For each customer who bought a track from an artist named 'Carlos', find the total number of invoices they have.",
            ],
            correct: 0,
        },
        McqQuestion {
            id: "Q8",
            number: 8,
            category: QuestionCategory::Grouping,
            complexity: Complexity::Medium,
            sql: "SELECT T.AlbumId, MAX(T.Milliseconds)\n\
                  FROM Track T, Playlist P, PlaylistTrack PT, Genre G\n\
                  WHERE T.TrackId = PT.TrackId\n\
                  AND P.PlaylistId = PT.PlaylistId\n\
                  AND T.GenreId = G.GenreId\n\
                  AND G.Name = 'Classical'\n\
                  GROUP BY T.AlbumId",
            choices: [
                "For each album that has a 'Classical' track, find the maximum duration of any track that is listed in at least one playlist.",
                "For each album that has a 'Classical' track, find the maximum duration of any track that is listed in some playlist that includes a 'Classical' track.",
                "For each album that has a 'Classical' track, find the maximum duration of any 'Classical' track that is listed in at least one playlist.",
                "For each album that has a 'Classical' track listed in at least one playlist, find the maximum duration of any track in that album.",
            ],
            correct: 2,
        },
        McqQuestion {
            id: "Q9",
            number: 9,
            category: QuestionCategory::Grouping,
            complexity: Complexity::Complex,
            sql: "SELECT G.Name, MAX(T.Milliseconds)\n\
                  FROM Playlist P, PlaylistTrack PT, Track T, Genre G, InvoiceLine IL, Invoice I, Customer C\n\
                  WHERE T.GenreId = G.GenreId\n\
                  AND T.TrackId = IL.TrackId\n\
                  AND IL.InvoiceId = I.InvoiceId\n\
                  AND I.CustomerId = C.CustomerId\n\
                  AND PT.TrackId = T.TrackId\n\
                  AND P.PlaylistId = PT.PlaylistId\n\
                  AND P.Name = 'workout'\n\
                  AND C.Country = 'France'\n\
                  GROUP BY G.Name",
            choices: [
                "For each genre, find the maximum duration of any track that is sold to at least one customer from France who bought some track that is listed in a playlist named 'workout'.",
                "For each genre, find the maximum duration of any track that is sold to at least one customer from France and is listed in a playlist named 'workout'.",
                "For each genre that has a track listed in a playlist named 'workout', find the maximum duration of any track that is sold to at least one customer from France.",
                "For each genre that has a track sold to at least one customer from France, find the maximum duration of any track that is listed in a playlist named 'workout'.",
            ],
            correct: 1,
        },
        McqQuestion {
            id: "Q10",
            number: 10,
            category: QuestionCategory::Nested,
            complexity: Complexity::Simple,
            sql: "SELECT A.ArtistId, A.Name\n\
                  FROM Artist A\n\
                  WHERE NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Album AL, Track T\n\
                  WHERE A.ArtistId = AL.ArtistId\n\
                  AND AL.AlbumId = T.AlbumId\n\
                  AND T.Composer = A.Name)",
            choices: [
                "Find artists who do not have any album that has a track that is composed by someone with the same name as the artist.",
                "Find artists who have an album that does not have any track that is composed by someone with the same name as the artist.",
                "Find artists who do not have any album where all its tracks are composed by someone with the same name as the artist.",
                "Find artists so that all their albums have a track that is not composed by someone with the same name as the artist.",
            ],
            correct: 0,
        },
        McqQuestion {
            id: "Q11",
            number: 11,
            category: QuestionCategory::Nested,
            complexity: Complexity::Medium,
            sql: "SELECT A.ArtistId, A.Name\n\
                  FROM Artist A, Album AL1, Album AL2\n\
                  WHERE A.ArtistId = AL1.ArtistId\n\
                  AND A.ArtistId = AL2.ArtistId\n\
                  AND AL1.AlbumId <> AL2.AlbumId\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T1, Genre G1\n\
                  WHERE AL1.AlbumId = T1.AlbumId\n\
                  AND T1.GenreId = G1.GenreId\n\
                  AND G1.Name = 'Rock')\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T2\n\
                  WHERE AL2.AlbumId = T2.AlbumId\n\
                  AND T2.Milliseconds < 270000)",
            choices: [
                "Find artists that have at least two albums such that they both do not have any track in the 'Rock' genre and all their tracks are shorter than 270000 milliseconds.",
                "Find artists that have at least two albums such that one of their albums does not have any track in the 'Rock' genre and another of their albums only has tracks shorter than 270000 milliseconds.",
                "Find artists that have at least two albums such that they both do not have any track in the 'Rock' genre and none of their track is shorter than 270000 milliseconds.",
                "Find artists that have at least two albums such that one of their albums does not have any track in the 'Rock' genre and another of their albums does not have any track shorter than 270000 milliseconds.",
            ],
            correct: 3,
        },
        McqQuestion {
            id: "Q12",
            number: 12,
            category: QuestionCategory::Nested,
            complexity: Complexity::Complex,
            sql: "SELECT A.ArtistId, A.Name\n\
                  FROM Artist A, Album AL\n\
                  WHERE A.ArtistId = AL.ArtistId\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T, Genre G\n\
                  WHERE AL.AlbumId = T.AlbumId\n\
                  AND T.GenreId = G.GenreId\n\
                  AND G.Name = 'Jazz'\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Playlist P, PlaylistTrack PT\n\
                  WHERE P.PlaylistId = PT.PlaylistId\n\
                  AND PT.TrackId = T.TrackId)\n\
                  )",
            choices: [
                "Find artists that have an album such that none of its tracks that are in the 'Jazz' genre are individually in at least one playlist.",
                "Find artists that have an album such that at least one of its tracks that are in the 'Jazz' genre are in all playlists.",
                "Find artists that have an album such that each its tracks that are in the 'Jazz' genre are in all playlists.",
                "Find artists that have an album such that each of its tracks that are in the 'Jazz' genre are individually in at least one playlist.",
            ],
            correct: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_questions_three_per_category() {
        let questions = study_questions();
        assert_eq!(questions.len(), 12);
        for cat in [
            QuestionCategory::Conjunctive,
            QuestionCategory::SelfJoin,
            QuestionCategory::Grouping,
            QuestionCategory::Nested,
        ] {
            let in_cat: Vec<&McqQuestion> =
                questions.iter().filter(|q| q.category == cat).collect();
            assert_eq!(in_cat.len(), 3, "{cat:?}");
            // One of each complexity per category.
            let mut levels: Vec<Complexity> = in_cat.iter().map(|q| q.complexity).collect();
            levels.sort();
            assert_eq!(
                levels,
                vec![Complexity::Simple, Complexity::Medium, Complexity::Complex]
            );
        }
    }

    #[test]
    fn core_nine_excludes_grouping() {
        let nine: Vec<&'static str> = study_questions()
            .iter()
            .filter(|q| q.in_core_nine())
            .map(|q| q.id)
            .collect();
        assert_eq!(nine.len(), 9);
        assert!(!nine.contains(&"Q7"));
        assert!(!nine.contains(&"Q8"));
        assert!(!nine.contains(&"Q9"));
    }

    #[test]
    fn each_question_has_four_distinct_choices() {
        for q in study_questions() {
            let mut set = std::collections::HashSet::new();
            for c in &q.choices {
                assert!(set.insert(*c), "{}: duplicate choice", q.id);
            }
            assert!(q.correct < 4);
        }
    }

    #[test]
    fn numbers_are_presentation_order() {
        let qs = study_questions();
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.number, i + 1);
        }
    }
}
