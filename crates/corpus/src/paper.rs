//! The paper's running example queries (Figs. 1, 3, 23–26).

use crate::schemas::{actors_schema, sailors_schema, students_schema};
use queryvis_sql::Schema;

/// The unique-set query of Fig. 1a: *find drinkers who like a unique set of
/// beers* — the paper's flagship depth-3 example.
pub fn unique_set_sql() -> &'static str {
    "SELECT L1.drinker\n\
     FROM Likes L1\n\
     WHERE NOT EXISTS(\n\
       SELECT *\n\
       FROM Likes L2\n\
       WHERE L1.drinker <> L2.drinker\n\
       AND NOT EXISTS(\n\
         SELECT *\n\
         FROM Likes L3\n\
         WHERE L3.drinker = L2.drinker\n\
         AND NOT EXISTS(\n\
           SELECT *\n\
           FROM Likes L4\n\
           WHERE L4.drinker = L1.drinker\n\
           AND L4.beer = L3.beer))\n\
       AND NOT EXISTS(\n\
         SELECT *\n\
         FROM Likes L5\n\
         WHERE L5.drinker = L1.drinker\n\
         AND NOT EXISTS(\n\
           SELECT *\n\
           FROM Likes L6\n\
           WHERE L6.drinker = L2.drinker\n\
           AND L6.beer = L5.beer)))"
}

/// Fig. 3a — Qsome: *find persons who frequent some bar that serves some
/// drink they like* (a plain conjunctive query).
pub fn qsome_sql() -> &'static str {
    "SELECT F.person\n\
     FROM Frequents F, Likes L, Serves S\n\
     WHERE F.person = L.person\n\
     AND F.bar = S.bar\n\
     AND L.drink = S.drink"
}

/// Fig. 3b — Qonly: *find persons who frequent some bar that serves only
/// drinks they like* (double-negated nesting).
pub fn qonly_sql() -> &'static str {
    "SELECT F.person\n\
     FROM Frequents F\n\
     WHERE not exists\n\
       (SELECT *\n\
        FROM Serves S\n\
        WHERE S.bar = F.bar\n\
        AND not exists\n\
          (SELECT L.drink\n\
           FROM Likes L\n\
           WHERE L.person = F.person\n\
           AND S.drink = L.drink))"
}

/// Fig. 24 — three syntactically different but semantically equivalent SQL
/// queries for "sailors who reserve only red boats". All three map to the
/// same logic tree and hence the same diagram.
pub fn sailors_only_variants() -> [&'static str; 3] {
    [
        // NOT EXISTS / NOT EXISTS
        "SELECT S.sname FROM Sailor S WHERE NOT EXISTS(\n\
           SELECT * FROM Reserves R WHERE R.sid = S.sid AND NOT EXISTS(\n\
             SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))",
        // NOT IN / NOT IN
        "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN(\n\
           SELECT R.sid FROM Reserves R WHERE R.bid NOT IN(\n\
             SELECT B.bid FROM Boat B WHERE B.color = 'red'))",
        // NOT = ANY / NOT = ANY
        "SELECT S.sname FROM Sailor S WHERE NOT S.sid = ANY(\n\
           SELECT R.sid FROM Reserves R WHERE NOT R.bid = ANY(\n\
             SELECT B.bid FROM Boat B WHERE B.color = 'red'))",
    ]
}

/// The three logical patterns of Appendix G (Figs. 23/25).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// "… reserve **no** red boat": ∄ · ∃.
    No,
    /// "… reserve **only** red boats": ∄ · ∄ (≡ ∀ · ∃).
    Only,
    /// "… reserve **all** red boats": ∄ · ∄ with the blocks swapped.
    All,
}

/// One cell of the Appendix G pattern grid: a pattern applied to a schema.
#[derive(Debug, Clone)]
pub struct PatternQuery {
    pub kind: PatternKind,
    pub schema: Schema,
    /// Human description, e.g. "sailors who reserve only red boats".
    pub description: String,
    pub sql: String,
}

struct GridSchema {
    schema: fn() -> Schema,
    entity: &'static str,          // Sailor
    entity_attr: &'static str,     // sname
    entity_key: &'static str,      // sid
    link: &'static str,            // Reserves
    link_entity_key: &'static str, // sid
    link_target_key: &'static str, // bid
    target: &'static str,          // Boat
    target_key: &'static str,      // bid
    filter_attr: &'static str,     // color
    filter_value: &'static str,    // red
    noun: &'static str,
    verb: &'static str,
    object: &'static str,
}

const GRID: [GridSchema; 3] = [
    GridSchema {
        schema: sailors_schema,
        entity: "Sailor",
        entity_attr: "sname",
        entity_key: "sid",
        link: "Reserves",
        link_entity_key: "sid",
        link_target_key: "bid",
        target: "Boat",
        target_key: "bid",
        filter_attr: "color",
        filter_value: "red",
        noun: "sailors",
        verb: "reserve",
        object: "red boats",
    },
    GridSchema {
        schema: students_schema,
        entity: "Student",
        entity_attr: "sname",
        entity_key: "sid",
        link: "Takes",
        link_entity_key: "sid",
        link_target_key: "cid",
        target: "Class",
        target_key: "cid",
        filter_attr: "department",
        filter_value: "art",
        noun: "students",
        verb: "take",
        object: "art classes",
    },
    GridSchema {
        schema: actors_schema,
        entity: "Actor",
        entity_attr: "aname",
        entity_key: "aid",
        link: "Casts",
        link_entity_key: "aid",
        link_target_key: "mid",
        target: "Movie",
        target_key: "mid",
        filter_attr: "director",
        filter_value: "Hitchcock",
        noun: "actors",
        verb: "play in",
        object: "movies by Hitchcock",
    },
];

/// The full 3 × 3 grid of Appendix G: {no, only, all} × {sailors,
/// students, actors}, transcribed from Fig. 25. Each pattern produces the
/// same canonical diagram across schemas.
pub fn pattern_grid() -> Vec<PatternQuery> {
    let mut grid = Vec::with_capacity(9);
    for gs in &GRID {
        for kind in [PatternKind::No, PatternKind::Only, PatternKind::All] {
            grid.push(build_pattern(gs, kind));
        }
    }
    grid
}

fn build_pattern(gs: &GridSchema, kind: PatternKind) -> PatternQuery {
    let GridSchema {
        entity,
        entity_attr,
        entity_key,
        link,
        link_entity_key,
        link_target_key,
        target,
        target_key,
        filter_attr,
        filter_value,
        noun,
        verb,
        object,
        ..
    } = gs;
    // Single-letter aliases matching Fig. 25: E(ntity), L(ink), T(arget).
    let (sql, wording) = match kind {
        PatternKind::No => (
            format!(
                "SELECT E.{entity_attr} FROM {entity} E WHERE NOT EXISTS(\n\
                   SELECT * FROM {link} L WHERE L.{link_entity_key} = E.{entity_key} AND EXISTS(\n\
                     SELECT * FROM {target} T WHERE T.{filter_attr} = '{filter_value}' \
                      AND L.{link_target_key} = T.{target_key}))"
            ),
            format!("{noun} who {verb} no {object}"),
        ),
        PatternKind::Only => (
            format!(
                "SELECT E.{entity_attr} FROM {entity} E WHERE NOT EXISTS(\n\
                   SELECT * FROM {link} L WHERE L.{link_entity_key} = E.{entity_key} AND NOT EXISTS(\n\
                     SELECT * FROM {target} T WHERE T.{filter_attr} = '{filter_value}' \
                      AND L.{link_target_key} = T.{target_key}))"
            ),
            format!("{noun} who {verb} only {object}"),
        ),
        PatternKind::All => (
            format!(
                "SELECT E.{entity_attr} FROM {entity} E WHERE NOT EXISTS(\n\
                   SELECT * FROM {target} T WHERE T.{filter_attr} = '{filter_value}' AND NOT EXISTS(\n\
                     SELECT * FROM {link} L WHERE L.{link_target_key} = T.{target_key} \
                      AND L.{link_entity_key} = E.{entity_key}))"
            ),
            format!("{noun} who {verb} all {object}"),
        ),
    };
    PatternQuery {
        kind,
        schema: (gs.schema)(),
        description: wording,
        sql,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use queryvis_logic::translate;
    use queryvis_sql::parse_query;

    #[test]
    fn grid_has_nine_cells() {
        let grid = pattern_grid();
        assert_eq!(grid.len(), 9);
        let only: Vec<&PatternQuery> = grid
            .iter()
            .filter(|q| q.kind == PatternKind::Only)
            .collect();
        assert_eq!(only.len(), 3);
    }

    #[test]
    fn fig24_variants_have_identical_logic_trees() {
        let fps: Vec<String> = sailors_only_variants()
            .iter()
            .map(|sql| {
                translate(&parse_query(sql).unwrap(), None)
                    .unwrap()
                    .fingerprint()
            })
            .collect();
        assert_eq!(fps[0], fps[1]);
        assert_eq!(fps[1], fps[2]);
    }

    #[test]
    fn no_vs_only_differ_in_inner_quantifier() {
        let grid = pattern_grid();
        let no = grid
            .iter()
            .find(|q| q.kind == PatternKind::No && q.schema.name == "sailors")
            .unwrap();
        let only = grid
            .iter()
            .find(|q| q.kind == PatternKind::Only && q.schema.name == "sailors")
            .unwrap();
        assert!(no.sql.contains("AND EXISTS"));
        assert!(only.sql.contains("AND NOT EXISTS"));
    }

    #[test]
    fn unique_set_is_depth_three() {
        let q = parse_query(unique_set_sql()).unwrap();
        assert_eq!(q.nesting_depth(), 3);
        assert_eq!(q.table_ref_count(), 6);
    }

    #[test]
    fn descriptions_are_human_readable() {
        let grid = pattern_grid();
        assert!(grid
            .iter()
            .any(|q| q.description == "sailors who reserve only red boats"));
        assert!(grid
            .iter()
            .any(|q| q.description == "actors who play in all movies by Hitchcock"));
    }
}
