//! # queryvis-corpus
//!
//! Every schema and query that appears in the paper, transcribed verbatim
//! (modulo whitespace) and exposed as typed data:
//!
//! * [`schemas`] — the beer-drinkers schema (Ullman [78]), the three
//!   Appendix G schemas (sailors, students, actors, Fig. 22), and the
//!   Chinook music-store schema used by the study (tutorial page 2).
//! * [`paper`] — the running examples: the unique-set query (Fig. 1a),
//!   Qsome / Qonly (Fig. 3), the three syntactically different but
//!   semantically equal variants of "sailors who reserve only red boats"
//!   (Fig. 24), and the 3 × 3 not/only/all pattern grid (Figs. 23/25).
//! * [`study`] — the 12 multiple-choice study questions of Appendix F,
//!   with their four answer choices, category, and complexity level.
//! * [`qualification`] — the 6 qualification-exam questions of Appendix D.
//!
//! Correct answer indices were re-derived by manual interpretation of each
//! query (the paper's appendix does not mark them); they feed the study
//! simulator, whose analysis depends only on correctness as a bit.

pub mod paper;
pub mod qualification;
pub mod schemas;
pub mod study;
pub mod tutorial;

pub use paper::{
    pattern_grid, qonly_sql, qsome_sql, sailors_only_variants, unique_set_sql, PatternKind,
    PatternQuery,
};
pub use qualification::{qualification_questions, QUALIFICATION_PASS_THRESHOLD};
pub use schemas::{actors_schema, beers_schema, chinook_schema, sailors_schema, students_schema};
pub use study::{study_questions, Complexity, McqQuestion, QuestionCategory};
pub use tutorial::{tutorial_examples, TutorialExample};

#[cfg(test)]
mod tests {
    use super::*;
    use queryvis_sql::parse_and_check;

    #[test]
    fn every_study_question_parses_and_checks() {
        let schema = chinook_schema();
        for q in study_questions() {
            parse_and_check(q.sql, &schema)
                .unwrap_or_else(|e| panic!("study {} failed: {e}", q.id));
        }
    }

    #[test]
    fn every_qualification_question_parses_and_checks() {
        let schema = chinook_schema();
        for q in qualification_questions() {
            parse_and_check(q.sql, &schema)
                .unwrap_or_else(|e| panic!("qualification {} failed: {e}", q.id));
        }
    }

    #[test]
    fn every_pattern_query_parses_and_checks() {
        for q in pattern_grid() {
            parse_and_check(&q.sql, &q.schema)
                .unwrap_or_else(|e| panic!("pattern {}/{:?} failed: {e}", q.schema.name, q.kind));
        }
    }

    #[test]
    fn running_examples_parse() {
        let beers = beers_schema();
        parse_and_check(unique_set_sql(), &beers).unwrap();
        parse_and_check(qsome_sql(), &beers).unwrap();
        parse_and_check(qonly_sql(), &beers).unwrap();
        let sailors = sailors_schema();
        for v in sailors_only_variants() {
            parse_and_check(v, &sailors).unwrap();
        }
    }
}
