//! The 6 qualification-exam questions of Appendix D.
//!
//! Workers had to answer at least 4 of these 6 correctly (within 10
//! minutes) to qualify for the study, ensuring basic SQL proficiency.

use crate::study::McqQuestion;
use crate::study::{Complexity, QuestionCategory};

/// Minimum number of correct answers (out of 6) to pass qualification.
pub const QUALIFICATION_PASS_THRESHOLD: usize = 4;

/// All 6 qualification questions in presentation order.
pub fn qualification_questions() -> Vec<McqQuestion> {
    vec![
        McqQuestion {
            id: "QQ1",
            number: 1,
            category: QuestionCategory::Conjunctive,
            complexity: Complexity::Simple,
            sql: "SELECT P.PlaylistId, P.Name\n\
                  FROM Playlist P, PlaylistTrack PT, Track T, Album AL, Artist A\n\
                  WHERE P.PlaylistId = PT.PlaylistId\n\
                  AND PT.TrackId = T.TrackId\n\
                  AND T.AlbumId = AL.AlbumId\n\
                  AND AL.ArtistId = A.ArtistId\n\
                  AND A.Name = 'AC/DC'",
            choices: [
                "Find playlists that have all tracks from all albums by artists with the name 'AC/DC'.",
                "Find playlists that have all tracks from an album by an artist with the name 'AC/DC'.",
                "Find playlists that only have tracks from albums by artists with the name 'AC/DC'.",
                "Find playlists that have at least one track from an album by an artist with the name 'AC/DC'.",
            ],
            correct: 3,
        },
        McqQuestion {
            id: "QQ2",
            number: 2,
            category: QuestionCategory::SelfJoin,
            complexity: Complexity::Medium,
            sql: "SELECT C.CustomerId, C.FirstName, C.LastName\n\
                  FROM Customer C, Invoice I,\n\
                  InvoiceLine IL1, InvoiceLine IL2,\n\
                  Track T1, Track T2\n\
                  WHERE C.CustomerId = I.CustomerId\n\
                  AND I.InvoiceId = IL1.InvoiceId\n\
                  AND I.InvoiceId = IL2.InvoiceId\n\
                  AND IL1.TrackId = T1.TrackId\n\
                  AND IL2.TrackId = T2.TrackId\n\
                  AND T1.GenreId <> T2.GenreId",
            choices: [
                "Find customers who have at least two invoices and for each invoice there are at least two tracks of different genres.",
                "Find customers who have an invoice with at least two tracks of different genres.",
                "Find customers who have at least two invoices with tracks of different genres.",
                "Find customers who have an invoice with only two tracks that are of different genres.",
            ],
            correct: 1,
        },
        McqQuestion {
            id: "QQ3",
            number: 3,
            category: QuestionCategory::Grouping,
            complexity: Complexity::Simple,
            sql: "SELECT P.PlaylistId, G.Name, COUNT(T.TrackId)\n\
                  FROM Playlist P, PlaylistTrack PT, Track T, Genre G\n\
                  WHERE P.PlaylistId = PT.PlaylistId\n\
                  AND PT.TrackId = T.TrackId\n\
                  AND T.GenreId = G.GenreId\n\
                  GROUP BY P.PlaylistId, G.Name",
            choices: [
                "For each playlist, find the number of tracks per genre.",
                "For each genre, find the number of tracks in the genre.",
                "For each playlist find the number of tracks in the playlist.",
                "For each playlist and genre, find the number of tracks in each playlist.",
            ],
            correct: 0,
        },
        McqQuestion {
            id: "QQ4",
            number: 4,
            category: QuestionCategory::Nested,
            complexity: Complexity::Medium,
            sql: "SELECT A.ArtistId, A.Name\n\
                  FROM Artist A\n\
                  WHERE NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Album AL\n\
                  WHERE AL.ArtistId = A.ArtistId\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T, MediaType MT\n\
                  WHERE AL.AlbumId = T.AlbumId\n\
                  AND T.MediaTypeId = MT.MediaTypeId\n\
                  AND MT.Name = 'ACC audio file')\n\
                  )",
            choices: [
                "Find artists where all tracks in all their albums are available in 'ACC audio file' type.",
                "Find artists where all their albums have a track that is available in 'ACC audio file' type.",
                "Find artists where none of their albums have a track that is available in 'ACC audio file' type.",
                "Find artists where none of their albums have all their tracks available in 'ACC audio file' type.",
            ],
            correct: 1,
        },
        McqQuestion {
            id: "QQ5",
            number: 5,
            category: QuestionCategory::Nested,
            complexity: Complexity::Complex,
            sql: "SELECT C1.CustomerId, C1.FirstName, C1.LastName\n\
                  FROM Customer C1, Invoice I1, InvoiceLine IL1,\n\
                  Track T1, Album AL1, Artist A1\n\
                  WHERE C1.CustomerId = I1.CustomerId\n\
                  AND I1.InvoiceId = IL1.InvoiceId\n\
                  AND IL1.TrackId = T1.TrackId\n\
                  AND T1.AlbumId = AL1.AlbumId\n\
                  AND AL1.ArtistId = A1.ArtistId\n\
                  AND A1.Name = 'AC/DC'\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Customer C2, Invoice I2, InvoiceLine IL2,\n\
                  Track T2, Album AL2, Artist A2\n\
                  WHERE C2.CustomerId <> C1.CustomerId\n\
                  AND C1.City = C2.City\n\
                  AND C2.CustomerId = I2.CustomerId\n\
                  AND I2.InvoiceId = IL2.InvoiceId\n\
                  AND IL2.TrackId = T2.TrackId\n\
                  AND T2.AlbumId = AL2.AlbumId\n\
                  AND AL2.ArtistId = A2.ArtistId\n\
                  AND A2.Name = 'AC/DC')",
            choices: [
                "Find customers who were not the only ones in their city to buy every track from an album by an artist with the name 'AC/DC'.",
                "Find customers who were the only ones in their city to buy every track from an album by an artist with the name 'AC/DC'.",
                "Find customers who were not the only ones in their city to buy a track from an album by an artist with the name 'AC/DC'.",
                "Find customers who were the only ones in their city to buy a track from an album by an artist with the name 'AC/DC'.",
            ],
            correct: 3,
        },
        McqQuestion {
            id: "QQ6",
            number: 6,
            category: QuestionCategory::Grouping,
            complexity: Complexity::Complex,
            sql: "SELECT E1.EmployeeId, COUNT(C.CustomerId), AVG(I.Total)\n\
                  FROM Employee E1, Employee E2, Customer C, Invoice I\n\
                  WHERE E1.ReportsTo = E2.EmployeeId\n\
                  AND E1.Country <> E2.Country\n\
                  AND E1.EmployeeId = C.SupportRepId\n\
                  AND E1.Country = C.Country\n\
                  AND C.CustomerId = I.CustomerId\n\
                  GROUP BY E1.EmployeeId",
            choices: [
                "For each employee that reports to an employee in another country, find the number of customers the former employee services in a different country than theirs and the average invoice total of those customers.",
                "For each employee that reports to an employee in another country, find the number of customers the former employee services in their country and the average invoice total of those customers.",
                "For each employee that reports to an employee in another country, find the number of customers the latter employee services in a different country than theirs and the average invoice total of those customers.",
                "For each employee that reports to an employee in another country, find the number of customers the latter employee services in their country and the average invoice total of those customers.",
            ],
            correct: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_questions() {
        assert_eq!(qualification_questions().len(), 6);
    }

    #[test]
    fn pass_threshold_matches_paper() {
        // §6.1: "workers needed at least 4/6 correct answers".
        assert_eq!(QUALIFICATION_PASS_THRESHOLD, 4);
    }

    #[test]
    fn choices_distinct_and_correct_in_range() {
        for q in qualification_questions() {
            let mut set = std::collections::HashSet::new();
            for c in &q.choices {
                assert!(set.insert(*c), "{}: duplicate choice", q.id);
            }
            assert!(q.correct < 4);
        }
    }
}
