//! The database schemas used throughout the paper.

use queryvis_sql::{Schema, Table};

/// The beer-drinkers schema of Ullman [78] (paper §1.1):
/// `Likes(drinker, beer)`, `Frequents(drinker, bar)`, `Serves(bar, beer)`.
///
/// Different figures of the paper use `person`/`drinker` and
/// `drink`/`beer` interchangeably; the superset is included so that every
/// figure's SQL validates unchanged.
pub fn beers_schema() -> Schema {
    Schema::new("beers")
        .with_table(Table::new("Likes", &["drinker", "person", "beer", "drink"]))
        .with_table(Table::new("Frequents", &["drinker", "person", "bar"]))
        .with_table(Table::new("Serves", &["bar", "beer", "drink"]))
}

/// The sailors schema of Fig. 22a (Ramakrishnan & Gehrke [65]):
/// `Sailor(sid, sname, rating, age)`, `Reserves(sid, bid, day)`,
/// `Boat(bid, bname, color)`.
pub fn sailors_schema() -> Schema {
    Schema::new("sailors")
        .with_table(Table::new("Sailor", &["sid", "sname", "rating", "age"]))
        .with_table(Table::new("Reserves", &["sid", "bid", "day"]))
        .with_table(Table::new("Boat", &["bid", "bname", "color"]))
}

/// The students schema of Fig. 22b. Appendix G's SQL names the course
/// table `Class`; Fig. 22 names it `Course` — both are provided.
pub fn students_schema() -> Schema {
    Schema::new("students")
        .with_table(Table::new("Student", &["sid", "sname"]))
        .with_table(Table::new("Takes", &["sid", "cid", "semester"]))
        .with_table(Table::new("Course", &["cid", "cname", "department"]))
        .with_table(Table::new("Class", &["cid", "cname", "department"]))
}

/// The actors schema of Fig. 22c. Appendix G's SQL names the cast table
/// `Casts`; Fig. 22 names it `Plays` — both are provided.
pub fn actors_schema() -> Schema {
    Schema::new("actors")
        .with_table(Table::new("Actor", &["aid", "aname"]))
        .with_table(Table::new("Plays", &["aid", "mid", "role"]))
        .with_table(Table::new("Casts", &["aid", "mid", "role"]))
        .with_table(Table::new("Movie", &["mid", "mname", "director"]))
}

/// The Chinook digital-media-store schema [20] used for all study and
/// qualification questions (tutorial page 2).
pub fn chinook_schema() -> Schema {
    Schema::new("chinook")
        .with_table(Table::new("Artist", &["ArtistId", "Name"]))
        .with_table(Table::new("Album", &["AlbumId", "Title", "ArtistId"]))
        .with_table(Table::new(
            "Track",
            &[
                "TrackId",
                "Name",
                "AlbumId",
                "MediaTypeId",
                "GenreId",
                "Composer",
                "Milliseconds",
                "Bytes",
                "UnitPrice",
            ],
        ))
        .with_table(Table::new(
            "Employee",
            &[
                "EmployeeId",
                "LastName",
                "FirstName",
                "Title",
                "ReportsTo",
                "BirthDate",
                "HireDate",
                "Address",
                "City",
                "State",
                "Country",
                "PostalCode",
                "Phone",
                "Fax",
                "Email",
            ],
        ))
        .with_table(Table::new(
            "Customer",
            &[
                "CustomerId",
                "FirstName",
                "LastName",
                "Company",
                "Address",
                "City",
                "State",
                "Country",
                "PostalCode",
                "Phone",
                "Fax",
                "Email",
                "SupportRepId",
            ],
        ))
        .with_table(Table::new("MediaType", &["MediaTypeId", "Name"]))
        .with_table(Table::new("Genre", &["GenreId", "Name"]))
        .with_table(Table::new(
            "Invoice",
            &[
                "InvoiceId",
                "CustomerId",
                "InvoiceDate",
                "BillingAddress",
                "BillingCity",
                "BillingState",
                "BillingCountry",
                "BillingPostalCode",
                "Total",
            ],
        ))
        .with_table(Table::new(
            "InvoiceLine",
            &[
                "InvoiceLineId",
                "InvoiceId",
                "TrackId",
                "UnitPrice",
                "Quantity",
            ],
        ))
        .with_table(Table::new("Playlist", &["PlaylistId", "Name"]))
        .with_table(Table::new("PlaylistTrack", &["PlaylistId", "TrackId"]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chinook_has_eleven_tables() {
        assert_eq!(chinook_schema().tables.len(), 11);
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let s = chinook_schema();
        assert!(s.table("track").is_some());
        assert!(s.table("TRACK").unwrap().has_column("milliseconds"));
    }

    #[test]
    fn all_schemas_have_unique_table_names() {
        for schema in [
            beers_schema(),
            sailors_schema(),
            students_schema(),
            actors_schema(),
            chinook_schema(),
        ] {
            let mut names: Vec<&str> = schema.tables.iter().map(|t| t.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "duplicates in {}", schema.name);
        }
    }
}
