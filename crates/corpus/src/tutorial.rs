//! The six worked examples of the study tutorial (Appendix E).
//!
//! Participants saw a self-paced tutorial (mean time ≈ 3 minutes)
//! introducing the visual notation through six annotated SQL/diagram
//! pairs over the Chinook schema. The SQL is transcribed from the
//! tutorial pages; page 6's query references `T.TrackId` without binding
//! `T` (a paper typo) — fixed here to `IL.TrackId`.

/// One tutorial page: a query, its intended interpretation, and which
/// notational feature the page introduces.
#[derive(Debug, Clone)]
pub struct TutorialExample {
    /// Tutorial page number (3–9 of the 10-page deck).
    pub page: usize,
    pub title: &'static str,
    pub sql: &'static str,
    /// The interpretation printed under the diagram in the tutorial.
    pub interpretation: &'static str,
    /// True if the page shows the ∀-simplified diagram of its query.
    pub uses_forall: bool,
}

/// All six tutorial examples in page order.
pub fn tutorial_examples() -> Vec<TutorialExample> {
    vec![
        TutorialExample {
            page: 3,
            title: "Basic conjunctive query",
            sql: "SELECT T.TrackId FROM Track T WHERE T.UnitPrice > 2",
            interpretation: "Find TrackId of Tracks whose UnitPrice is greater than 2.",
            uses_forall: false,
        },
        TutorialExample {
            page: 5,
            title: "Basic query with joins",
            sql: "SELECT T.TrackId\n\
                  FROM Track T, PlaylistTrack PT, Playlist P, Genre G\n\
                  WHERE T.GenreId = G.GenreId\n\
                  AND T.TrackId = PT.TrackId\n\
                  AND PT.PlaylistId = P.PlaylistId\n\
                  AND G.Name <> P.Name",
            interpretation: "Find the TrackId of Tracks that are in some Playlist whose name \
                             is different from the Genre of the Track.",
            uses_forall: false,
        },
        TutorialExample {
            page: 6,
            title: "Group By queries with aggregates",
            sql: "SELECT IL.TrackId, SUM(IL.Quantity)\n\
                  FROM InvoiceLine IL, Invoice I\n\
                  WHERE IL.InvoiceId = I.InvoiceId\n\
                  AND I.CustomerId = 123\n\
                  GROUP BY IL.TrackId",
            interpretation: "For each TrackId find the total sale quantity bought by the \
                             customer with ID = 123.",
            uses_forall: false,
        },
        TutorialExample {
            page: 7,
            title: "Basic nested (NOT EXISTS) query",
            sql: "SELECT AL.AlbumId, AL.Title\n\
                  FROM Album AL\n\
                  WHERE NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T, MediaType MT\n\
                  WHERE AL.AlbumId = T.AlbumId\n\
                  AND T.MediaTypeId = MT.MediaTypeId\n\
                  AND MT.Name = 'ACC audio file')",
            interpretation: "Find AlbumId and Title of Albums for which no Track is available \
                             as 'ACC audio file' MediaType.",
            uses_forall: false,
        },
        TutorialExample {
            page: 8,
            title: "Double-nested SQL query",
            sql: "SELECT A.Name, A.ArtistId\n\
                  FROM Artist A\n\
                  WHERE NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Album AL\n\
                  WHERE AL.ArtistId = A.ArtistId\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T, MediaType MT\n\
                  WHERE AL.AlbumId = T.AlbumId\n\
                  AND T.MediaTypeId = MT.MediaTypeId\n\
                  AND MT.Name = 'ACC audio file'))",
            interpretation: "Find Name and ArtistId of Artists who have no Album that does not \
                             have any Track whose MediaType name is 'ACC audio file'.",
            uses_forall: false,
        },
        TutorialExample {
            page: 9,
            title: "Double-nested query with the FOR-ALL simplification",
            sql: "SELECT A.Name, A.ArtistId\n\
                  FROM Artist A\n\
                  WHERE NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Album AL\n\
                  WHERE AL.ArtistId = A.ArtistId\n\
                  AND NOT EXISTS\n\
                  (SELECT *\n\
                  FROM Track T, MediaType MT\n\
                  WHERE AL.AlbumId = T.AlbumId\n\
                  AND T.MediaTypeId = MT.MediaTypeId\n\
                  AND MT.Name = 'ACC audio file'))",
            interpretation: "Find Name and ArtistId of Artists for whom all their Albums \
                             contain at least one Track whose MediaType name is 'ACC audio \
                             file'.",
            uses_forall: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::chinook_schema;
    use queryvis_sql::parse_and_check;

    #[test]
    fn six_examples_in_page_order() {
        let examples = tutorial_examples();
        assert_eq!(examples.len(), 6);
        for w in examples.windows(2) {
            assert!(w[0].page < w[1].page);
        }
    }

    #[test]
    fn all_examples_parse_and_check() {
        let schema = chinook_schema();
        for ex in tutorial_examples() {
            parse_and_check(ex.sql, &schema)
                .unwrap_or_else(|e| panic!("tutorial page {}: {e}", ex.page));
        }
    }

    #[test]
    fn pages_8_and_9_share_sql_but_differ_in_rendering() {
        let examples = tutorial_examples();
        let p8 = examples.iter().find(|e| e.page == 8).unwrap();
        let p9 = examples.iter().find(|e| e.page == 9).unwrap();
        assert_eq!(p8.sql, p9.sql);
        assert!(!p8.uses_forall);
        assert!(p9.uses_forall);
    }

    #[test]
    fn feature_coverage() {
        // The tutorial demonstrates, in order: selection predicates,
        // non-equijoins, grouping, single nesting, and double nesting —
        // everything the test questions need.
        let examples = tutorial_examples();
        assert!(examples[0].sql.contains("> 2"));
        assert!(examples[1].sql.contains("<>"));
        assert!(examples[2].sql.contains("GROUP BY"));
        assert!(examples[3].sql.contains("NOT EXISTS"));
        assert_eq!(examples[4].sql.matches("NOT EXISTS").count(), 2);
    }
}
