//! The **Scene display-list IR** — the single product of layout and the
//! single input to every geometric render backend.
//!
//! "Principles of Query Visualization" argues the visual encoding should
//! be specified once, independent of the output medium. Before this
//! module existed, each backend re-derived geometry on its own: ASCII ran
//! a private grid layout, SVG walked [`Layout`] directly, and the union
//! (multi-branch) stacking logic was triplicated per format. A [`Scene`]
//! fixes that: [`build_scene`] resolves one diagram + one layout into a
//! flat, ordered list of *marks* — rectangles, text runs, and edges with
//! every label already a string — and [`compose_union`] stacks branch
//! scenes (offsets, badges, total extent) exactly once. Backends are
//! then thin walkers: they *project* mark coordinates into their medium
//! (px for SVG, char cells for ASCII, JSON for machine clients) but never
//! invent geometry.
//!
//! Mark order is paint order (painter's algorithm): quantifier boxes
//! first (beneath everything), then edges (beneath tables so lines
//! visually attach to row borders), then tables — for each table a
//! [`MarkRole::Frame`] rect followed by its header, title, rows, and row
//! texts. A sequential consumer (the ASCII rasterizer, a browser canvas)
//! can therefore rebuild per-table structure without lookups: content
//! between one `Frame` and the next belongs to that frame.

use crate::engine::Layout;
use crate::geometry::{Point, Rect};
use queryvis_diagram::{Diagram, RowKind};
use queryvis_logic::Quantifier;

/// Abstract style classes. Backends resolve them to their medium: the SVG
/// theme maps classes to fills/strokes, ASCII to marker glyphs, DOT to
/// HTML-label `bgcolor`s. The class vocabulary — not any backend — is
/// what the diagram model's semantics (selection/group/aggregate rows,
/// ∄ vs ∀ boxes) compile down to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StyleClass {
    /// Black table header (base tables).
    HeaderTable,
    /// Light header of the special `SELECT` table.
    HeaderSelect,
    /// Plain attribute / aggregate row.
    Row,
    /// Selection or HAVING predicate row (yellow in the paper).
    RowSelection,
    /// Group-by row (gray in the paper).
    RowGroup,
    /// ∄ box (dashed).
    BoxNotExists,
    /// ∀ box, outer line (double-lined in the paper).
    BoxForAll,
    /// ∀ box, inner line.
    BoxForAllInner,
    /// Table outline (char-medium border; vector media tile header+rows).
    Frame,
}

/// What a rectangle mark *is* (independent of how it is styled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkRole {
    /// Full table outline (header + rows). Vector backends skip it — the
    /// header and row rects tile the same area — while char backends draw
    /// the border from it.
    Frame,
    /// Table header band.
    Header,
    /// One attribute row band.
    Row,
    /// Quantifier bounding box.
    QuantifierBox,
}

/// What a text run *is*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextRole {
    /// Table header text (the base-table name, or `SELECT`).
    Title,
    /// Char-medium title addendum: `(alias) ∄`. Vector backends skip it —
    /// they encode the quantifier as box style and omit the alias, exactly
    /// like the paper's figures.
    TitleAnnotation,
    /// One row's display text.
    RowText,
    /// An edge's comparison-operator label.
    EdgeLabel,
}

/// A rectangle mark.
#[derive(Debug, Clone, PartialEq)]
pub struct RectMark {
    /// Stable structural identity (see [`build_scene`]): equal across
    /// rebuilds of edited queries whenever the mark plays the same
    /// structural role, which is what scene diffing keys on.
    pub id: u32,
    pub rect: Rect,
    pub role: MarkRole,
    pub class: StyleClass,
    /// Corner radius (0 for sharp corners; quantifier boxes are rounded).
    pub radius: f64,
}

/// A text run, anchored at the *center* of the band it labels (backends
/// apply their own baseline/centering projection).
#[derive(Debug, Clone, PartialEq)]
pub struct TextMark {
    /// Stable structural identity (see [`build_scene`]).
    pub id: u32,
    pub text: String,
    pub anchor: Point,
    pub role: TextRole,
    /// Style class of the band this text sits on (header/row classes); lets
    /// char backends derive row markers and vector backends pick text color.
    pub class: StyleClass,
}

/// Whether an edge draws an arrowhead at its `to` end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Arrowhead at `to` (the paper's arrow rules, §4.5).
    Directed,
    /// Plain line (equijoin / SELECT membership).
    Undirected,
}

/// An edge mark: a straight polyline between two row anchors, plus the
/// resolved endpoint names every non-geometric medium needs (ASCII's edge
/// legend, a browser client's tooltips).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeMark {
    /// Stable structural identity (see [`build_scene`]).
    pub id: u32,
    pub from: Point,
    pub to: Point,
    pub kind: EdgeKind,
    /// Operator label text (`<>`, `<`, …); `None` for the unlabeled
    /// equijoin (§4.3.1 minimality).
    pub label: Option<String>,
    /// Where the label is anchored, when present.
    pub label_pos: Point,
    /// Qualified source endpoint, e.g. `F.bar`.
    pub from_text: String,
    /// Qualified target endpoint, e.g. `S.bar`.
    pub to_text: String,
}

/// One mark of the display list.
#[derive(Debug, Clone, PartialEq)]
pub enum Mark {
    Rect(RectMark),
    Text(TextMark),
    Edge(EdgeMark),
}

impl Mark {
    /// The mark's stable structural identity (unique within its branch).
    pub fn id(&self) -> u32 {
        match self {
            Mark::Rect(m) => m.id,
            Mark::Text(m) => m.id,
            Mark::Edge(m) => m.id,
        }
    }
}

/// Assigns mark ids within one branch: FNV-1a over a structural path
/// string (`"rowr:<alias>:<i>"`, `"edge:<from><op><to>"`, …) plus an
/// occurrence counter for repeated paths (duplicate aliases), linearly
/// probed to uniqueness. Purely deterministic — two builds of the same
/// diagram assign identical ids, and a mark that survives an edit in the
/// same structural role keeps its id, which is what lets scene diffs pair
/// marks across recompiles.
struct MarkIds {
    used: std::collections::HashSet<u32>,
    seen: std::collections::HashMap<String, u32>,
}

impl MarkIds {
    fn new() -> MarkIds {
        MarkIds {
            used: std::collections::HashSet::new(),
            seen: std::collections::HashMap::new(),
        }
    }

    fn id(&mut self, path: String) -> u32 {
        let occurrence = self.seen.entry(path.clone()).or_insert(0);
        *occurrence += 1;
        let mut h: u32 = 0x811c_9dc5;
        for &b in path.as_bytes() {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        h ^= *occurrence;
        h = h.wrapping_mul(0x0100_0193);
        while !self.used.insert(h) {
            h = h.wrapping_mul(0x0100_0193) ^ 0x9e37;
        }
        h
    }
}

/// One diagram's marks within a (possibly multi-branch) scene, already
/// offset-assigned by [`compose_union`].
#[derive(Debug, Clone, PartialEq)]
pub struct SceneBranch {
    /// Vertical offset of this branch within the composed scene. Mark
    /// coordinates are branch-local; backends add `dy` (SVG via a group
    /// transform, ASCII by stacking).
    pub dy: f64,
    pub width: f64,
    pub height: f64,
    pub marks: Vec<Mark>,
}

/// The separator band between two union branches: `badges[i]` sits
/// between `branches[i]` and `branches[i + 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneBadge {
    /// Vertical midpoint of the band, in composed-scene coordinates.
    pub y_mid: f64,
    /// `UNION` or `UNION ALL`.
    pub label: String,
}

/// A fully resolved diagram drawing: flat marks, one or more branches,
/// union badges, total extent. Everything any backend needs; nothing any
/// backend may re-derive.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    pub width: f64,
    pub height: f64,
    pub branches: Vec<SceneBranch>,
    pub badges: Vec<SceneBadge>,
    /// True when the branches combine under `UNION ALL`.
    pub union_all: bool,
}

impl Scene {
    /// All marks of all branches, with each branch's offset. (Convenience
    /// for consumers that don't care about branch structure.)
    pub fn marks(&self) -> impl Iterator<Item = (&Mark, f64)> {
        self.branches
            .iter()
            .flat_map(|b| b.marks.iter().map(move |m| (m, b.dy)))
    }
}

/// Scene construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct SceneOptions {
    /// Emit [`TextRole::TitleAnnotation`] runs (`(alias) ∄`) for char
    /// media. Vector backends skip them either way.
    pub title_annotations: bool,
}

impl Default for SceneOptions {
    fn default() -> Self {
        SceneOptions {
            title_annotations: true,
        }
    }
}

/// Height of the separator band between branches of a union scene.
pub const UNION_BADGE_HEIGHT: f64 = 28.0;

/// Inset of the inner line of a ∀ box relative to the outer line.
const FORALL_INNER_INSET: f64 = 3.0;

/// Corner radii of quantifier boxes (outer / ∀-inner).
const BOX_RADIUS: f64 = 8.0;
const BOX_RADIUS_INNER: f64 = 6.0;

/// The style class of one table row — the single row-semantics → style
/// mapping every backend shares (SVG fills, ASCII markers, DOT bgcolors).
pub fn row_class(kind: &RowKind) -> StyleClass {
    match kind {
        RowKind::Selection { .. } | RowKind::Having { .. } => StyleClass::RowSelection,
        RowKind::GroupBy => StyleClass::RowGroup,
        RowKind::Attribute | RowKind::Aggregate { .. } => StyleClass::Row,
    }
}

/// The style class of a table header.
pub fn header_class(is_select: bool) -> StyleClass {
    if is_select {
        StyleClass::HeaderSelect
    } else {
        StyleClass::HeaderTable
    }
}

/// The char-medium title annotation for a table: `(alias)` when the alias
/// differs from the base name, plus the quantifier symbol when the table
/// sits in a box. Empty for plain tables.
pub fn title_annotation(diagram: &Diagram, table: queryvis_diagram::TableId) -> String {
    let t = &diagram.tables[table];
    let mut out = String::new();
    if t.alias != t.name && !t.is_select {
        out.push('(');
        out.push_str(t.alias.as_str());
        out.push(')');
    }
    if let Some(qbox) = diagram.box_of(table) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&qbox.quantifier.to_string());
    }
    out
}

/// Resolve one laid-out diagram into a single-branch [`Scene`].
///
/// This is the only place diagram topology meets geometry: every label is
/// resolved from its interned [`Symbol`](queryvis_diagram::model) here,
/// every derived rect (the ∀ inner line, text anchors) is computed here,
/// and backends downstream only project.
pub fn build_scene(diagram: &Diagram, layout: &Layout, options: &SceneOptions) -> Scene {
    let mut marks: Vec<Mark> = Vec::with_capacity(
        layout.boxes.len() * 2 + layout.edges.len() * 2 + layout.tables.len() * 4,
    );
    let mut ids = MarkIds::new();

    // Quantifier boxes first (beneath tables). Box identity keys on the
    // first table's alias — content-addressed, so box ids survive edits
    // that add or remove *other* boxes (positional indices would shift).
    let box_key = |qbox: &queryvis_diagram::QuantifierBox| {
        qbox.tables
            .first()
            .map_or("", |&t| diagram.tables[t].alias.as_str())
            .to_string()
    };
    for bl in &layout.boxes {
        let qbox = &diagram.boxes[bl.box_index];
        match qbox.quantifier {
            Quantifier::NotExists => marks.push(Mark::Rect(RectMark {
                id: ids.id(format!("box:{}:ne", box_key(qbox))),
                rect: bl.rect,
                role: MarkRole::QuantifierBox,
                class: StyleClass::BoxNotExists,
                radius: BOX_RADIUS,
            })),
            Quantifier::ForAll => {
                marks.push(Mark::Rect(RectMark {
                    id: ids.id(format!("box:{}:fa", box_key(qbox))),
                    rect: bl.rect,
                    role: MarkRole::QuantifierBox,
                    class: StyleClass::BoxForAll,
                    radius: BOX_RADIUS,
                }));
                marks.push(Mark::Rect(RectMark {
                    id: ids.id(format!("boxi:{}", box_key(qbox))),
                    rect: Rect::new(
                        bl.rect.x + FORALL_INNER_INSET,
                        bl.rect.y + FORALL_INNER_INSET,
                        bl.rect.w - 2.0 * FORALL_INNER_INSET,
                        bl.rect.h - 2.0 * FORALL_INNER_INSET,
                    ),
                    role: MarkRole::QuantifierBox,
                    class: StyleClass::BoxForAllInner,
                    radius: BOX_RADIUS_INNER,
                }));
            }
            Quantifier::Exists => {}
        }
    }

    // Edges beneath tables so lines visually attach to row borders.
    for el in &layout.edges {
        let edge = &diagram.edges[el.edge_index];
        let from_table = &diagram.tables[edge.from.table];
        let to_table = &diagram.tables[edge.to.table];
        let from_text = format!(
            "{}.{}",
            from_table.alias, from_table.rows[edge.from.row].column
        );
        let to_text = format!("{}.{}", to_table.alias, to_table.rows[edge.to.row].column);
        let op = edge.label.map_or("-", |op| op.as_str());
        marks.push(Mark::Edge(EdgeMark {
            id: ids.id(format!("edge:{from_text}{op}{to_text}")),
            from: el.from,
            to: el.to,
            kind: if edge.directed {
                EdgeKind::Directed
            } else {
                EdgeKind::Undirected
            },
            label: edge.label.map(|op| op.as_str().to_string()),
            label_pos: el.label_pos,
            from_text,
            to_text,
        }));
    }

    // Tables: frame, header band + title, then row bands + texts.
    for tl in &layout.tables {
        let table = &diagram.tables[tl.table];
        let alias = table.alias.as_str();
        let header = header_class(table.is_select);
        marks.push(Mark::Rect(RectMark {
            id: ids.id(format!("frame:{alias}")),
            rect: tl.rect,
            role: MarkRole::Frame,
            class: StyleClass::Frame,
            radius: 0.0,
        }));
        marks.push(Mark::Rect(RectMark {
            id: ids.id(format!("hdr:{alias}")),
            rect: tl.header,
            role: MarkRole::Header,
            class: header,
            radius: 0.0,
        }));
        marks.push(Mark::Text(TextMark {
            id: ids.id(format!("title:{alias}")),
            text: table.name.to_string(),
            anchor: tl.header.center(),
            role: TextRole::Title,
            class: header,
        }));
        if options.title_annotations {
            let annotation = title_annotation(diagram, tl.table);
            if !annotation.is_empty() {
                marks.push(Mark::Text(TextMark {
                    id: ids.id(format!("ann:{alias}")),
                    text: annotation,
                    anchor: tl.header.right_mid(),
                    role: TextRole::TitleAnnotation,
                    class: header,
                }));
            }
        }
        for (i, row) in table.rows.iter().enumerate() {
            let class = row_class(&row.kind);
            let rect = tl.row_rects[i];
            marks.push(Mark::Rect(RectMark {
                id: ids.id(format!("rowr:{alias}:{i}")),
                rect,
                role: MarkRole::Row,
                class,
                radius: 0.0,
            }));
            marks.push(Mark::Text(TextMark {
                id: ids.id(format!("rowt:{alias}:{i}")),
                text: row.display(),
                anchor: rect.center(),
                role: TextRole::RowText,
                class,
            }));
        }
    }

    Scene {
        width: layout.width,
        height: layout.height,
        branches: vec![SceneBranch {
            dy: 0.0,
            width: layout.width,
            height: layout.height,
            marks,
        }],
        badges: Vec::new(),
        union_all: false,
    }
}

/// Stack branch scenes into one: branches in written order, separated by
/// labeled union badges. This is the **only** place in the workspace that
/// computes union offsets and extents — every backend renders the same
/// stacking because none of them owns it.
pub fn compose_union(scenes: Vec<Scene>, all: bool) -> Scene {
    if scenes.len() == 1 {
        return scenes.into_iter().next().expect("checked length");
    }
    let width = scenes.iter().map(|s| s.width).fold(0.0f64, f64::max);
    let height = scenes.iter().map(|s| s.height).sum::<f64>()
        + UNION_BADGE_HEIGHT * scenes.len().saturating_sub(1) as f64;
    let label = if all { "UNION ALL" } else { "UNION" };
    let mut branches = Vec::with_capacity(scenes.len());
    let mut badges = Vec::with_capacity(scenes.len().saturating_sub(1));
    let mut y = 0.0f64;
    for (i, scene) in scenes.into_iter().enumerate() {
        if i > 0 {
            badges.push(SceneBadge {
                y_mid: y + UNION_BADGE_HEIGHT / 2.0,
                label: label.to_string(),
            });
            y += UNION_BADGE_HEIGHT;
        }
        // Nested compositions flatten: each inner branch (and each inner
        // badge) keeps its own offset relative to the outer stack. Badges
        // are pushed in ascending-y order, preserving the walkers'
        // invariant that `badges[i - 1]` separates branches `i - 1`/`i`.
        for badge in scene.badges {
            badges.push(SceneBadge {
                y_mid: y + badge.y_mid,
                ..badge
            });
        }
        for branch in scene.branches {
            branches.push(SceneBranch {
                dy: y + branch.dy,
                ..branch
            });
        }
        y += scene.height;
    }
    Scene {
        width,
        height,
        branches,
        badges,
        union_all: all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{layout_diagram, LayoutOptions};
    use queryvis_diagram::build_diagram;
    use queryvis_logic::translate;
    use queryvis_sql::parse_query;

    fn scene(sql: &str) -> Scene {
        let d = build_diagram(&translate(&parse_query(sql).unwrap(), None).unwrap());
        let l = layout_diagram(&d, &LayoutOptions::default());
        build_scene(&d, &l, &SceneOptions::default())
    }

    const QNEG: &str = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
         (SELECT * FROM Serves S WHERE S.bar = F.bar)";

    #[test]
    fn scene_marks_cover_the_diagram() {
        let s = scene(QNEG);
        assert_eq!(s.branches.len(), 1);
        let marks = &s.branches[0].marks;
        let frames = marks
            .iter()
            .filter(|m| matches!(m, Mark::Rect(r) if r.role == MarkRole::Frame))
            .count();
        assert_eq!(frames, 3, "SELECT + F + S");
        let boxes = marks
            .iter()
            .filter(|m| matches!(m, Mark::Rect(r) if r.role == MarkRole::QuantifierBox))
            .count();
        assert_eq!(boxes, 1, "one dashed ∄ box");
        let edges: Vec<&EdgeMark> = marks
            .iter()
            .filter_map(|m| match m {
                Mark::Edge(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(edges.len(), 2);
        assert!(edges
            .iter()
            .any(|e| e.from_text == "F.bar" && e.to_text == "S.bar"));
    }

    #[test]
    fn paint_order_is_boxes_edges_tables() {
        let s = scene(QNEG);
        let marks = &s.branches[0].marks;
        let first_box = marks
            .iter()
            .position(|m| matches!(m, Mark::Rect(r) if r.role == MarkRole::QuantifierBox))
            .unwrap();
        let first_edge = marks
            .iter()
            .position(|m| matches!(m, Mark::Edge(_)))
            .unwrap();
        let first_frame = marks
            .iter()
            .position(|m| matches!(m, Mark::Rect(r) if r.role == MarkRole::Frame))
            .unwrap();
        assert!(first_box < first_edge && first_edge < first_frame);
    }

    #[test]
    fn title_annotation_carries_alias_and_quantifier() {
        let s = scene(QNEG);
        let annotations: Vec<&str> = s.branches[0]
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Text(t) if t.role == TextRole::TitleAnnotation => Some(t.text.as_str()),
                _ => None,
            })
            .collect();
        assert!(annotations.contains(&"(S) \u{2204}"), "{annotations:?}");
        assert!(annotations.contains(&"(F)"));
    }

    #[test]
    fn forall_box_emits_inner_line() {
        let d = build_diagram(&queryvis_logic::simplify(
            &translate(
                &parse_query(
                    "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
                     (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
                     (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                      AND S.drink = L.drink))",
                )
                .unwrap(),
                None,
            )
            .unwrap(),
        ));
        let l = layout_diagram(&d, &LayoutOptions::default());
        let s = build_scene(&d, &l, &SceneOptions::default());
        let boxes: Vec<&RectMark> = s.branches[0]
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect(r) if r.role == MarkRole::QuantifierBox => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(boxes.len(), 2, "outer + inner ∀ lines");
        assert_eq!(boxes[0].class, StyleClass::BoxForAll);
        assert_eq!(boxes[1].class, StyleClass::BoxForAllInner);
        assert!(boxes[1].rect.x > boxes[0].rect.x);
        assert!(boxes[1].rect.w < boxes[0].rect.w);
    }

    #[test]
    fn compose_union_stacks_and_badges() {
        let a = scene("SELECT F.person FROM Frequents F");
        let b = scene("SELECT L.person FROM Likes L");
        let (ha, hb) = (a.height, b.height);
        let (wa, wb) = (a.width, b.width);
        let composed = compose_union(vec![a, b], false);
        assert_eq!(composed.branches.len(), 2);
        assert_eq!(composed.badges.len(), 1);
        assert_eq!(composed.badges[0].label, "UNION");
        assert_eq!(composed.width, wa.max(wb));
        assert_eq!(composed.height, ha + hb + UNION_BADGE_HEIGHT);
        assert_eq!(composed.branches[0].dy, 0.0);
        assert_eq!(composed.branches[1].dy, ha + UNION_BADGE_HEIGHT);
        assert_eq!(composed.badges[0].y_mid, ha + UNION_BADGE_HEIGHT / 2.0);
        assert!(!composed.union_all);
    }

    #[test]
    fn nested_composition_flattens_badges_with_branches() {
        let scene_of = |sql: &str| scene(sql);
        let inner = compose_union(
            vec![
                scene_of("SELECT F.person FROM Frequents F"),
                scene_of("SELECT L.person FROM Likes L"),
            ],
            false,
        );
        let inner_heights: Vec<f64> = inner.branches.iter().map(|b| b.height).collect();
        let outer = compose_union(vec![inner, scene_of("SELECT S.bar FROM Serves S")], false);
        // Every consecutive branch pair is separated by exactly one badge:
        // the walkers index `badges[i - 1]` for branch `i`.
        assert_eq!(outer.branches.len(), 3);
        assert_eq!(outer.badges.len(), outer.branches.len() - 1);
        // Badges sit strictly between their neighboring branches, in
        // ascending order.
        for (i, badge) in outer.badges.iter().enumerate() {
            let above = &outer.branches[i];
            let below = &outer.branches[i + 1];
            assert!(
                above.dy + above.height <= badge.y_mid && badge.y_mid <= below.dy,
                "badge {i} not between branches {i}/{}",
                i + 1
            );
        }
        // The inner badge survived the flattening (shifted, not dropped).
        assert_eq!(
            outer.badges[0].y_mid,
            inner_heights[0] + UNION_BADGE_HEIGHT / 2.0
        );
    }

    #[test]
    fn compose_union_single_branch_is_identity() {
        let a = scene(QNEG);
        let composed = compose_union(vec![a.clone()], true);
        assert_eq!(composed, a);
    }
}
