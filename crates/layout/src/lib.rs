//! # queryvis-layout
//!
//! A from-scratch layered layout engine for QueryVis diagrams — the
//! substitute for GraphViz, which the paper uses for rendering
//! (Appendix A.4) but which is not available to this reproduction.
//!
//! Only the diagram's *topology* carries meaning (enclosure, arrows,
//! labels — paper §4); the layout's job is to place it legibly:
//!
//! * tables are arranged in **columns by nesting depth** (SELECT leftmost,
//!   root block next, deeper blocks further right), which makes the
//!   default left-to-right reading order follow the arrows;
//! * tables of one query block stay **contiguous**, so its quantifier box
//!   is a simple padded rectangle;
//! * vertical order within a column is refined by a few **barycenter**
//!   passes (the classic Sugiyama crossing-reduction heuristic);
//! * edges attach to the left/right midpoint of their attribute rows and
//!   carry an optional operator label at the midpoint.

pub mod engine;
pub mod geometry;
pub mod scene;

pub use engine::{
    crossing_count, layout_diagram, BoxLayout, EdgeLayout, Layout, LayoutOptions, TableLayout,
};
pub use geometry::{Point, Rect};
pub use scene::{
    build_scene, compose_union, EdgeKind, EdgeMark, Mark, MarkRole, RectMark, Scene, SceneBadge,
    SceneBranch, SceneOptions, StyleClass, TextMark, TextRole, UNION_BADGE_HEIGHT,
};
