//! The layered layout algorithm.
//!
//! Pipeline: measure tables → assign columns (SELECT, then nesting depth)
//! → group tables by query block → order groups within each column by
//! barycenter passes → assign coordinates → compute quantifier-box rects
//! → anchor edges at row midpoints.

use crate::geometry::{segments_cross, Point, Rect};
use queryvis_diagram::{Diagram, TableId};
use std::collections::HashMap;

/// Tunable layout constants (defaults mirror the paper's visual density).
#[derive(Debug, Clone, Copy)]
pub struct LayoutOptions {
    /// Estimated width of one character of row text, in px.
    pub char_width: f64,
    /// Height of the table header row.
    pub header_height: f64,
    /// Height of one attribute row.
    pub row_height: f64,
    /// Horizontal padding inside a row.
    pub cell_padding: f64,
    /// Minimum table width.
    pub min_table_width: f64,
    /// Padding between a quantifier box and its tables.
    pub box_padding: f64,
    /// Horizontal gap between columns.
    pub column_gap: f64,
    /// Vertical gap between stacked groups in a column.
    pub group_gap: f64,
    /// Vertical gap between tables within one group.
    pub table_gap: f64,
    /// Outer margin of the drawing.
    pub margin: f64,
    /// Number of barycenter ordering sweeps (0 disables the refinement —
    /// kept configurable for the layout ablation bench).
    pub barycenter_passes: usize,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            char_width: 7.2,
            header_height: 24.0,
            row_height: 20.0,
            cell_padding: 8.0,
            min_table_width: 90.0,
            box_padding: 12.0,
            column_gap: 70.0,
            group_gap: 34.0,
            table_gap: 14.0,
            margin: 20.0,
            barycenter_passes: 3,
        }
    }
}

/// Geometry of one table composite mark.
#[derive(Debug, Clone)]
pub struct TableLayout {
    pub table: TableId,
    /// Full outline (header + rows).
    pub rect: Rect,
    pub header: Rect,
    pub row_rects: Vec<Rect>,
}

/// Geometry of one quantifier bounding box (indexes `diagram.boxes`).
#[derive(Debug, Clone)]
pub struct BoxLayout {
    pub box_index: usize,
    pub rect: Rect,
}

/// Geometry of one edge (indexes `diagram.edges`).
#[derive(Debug, Clone)]
pub struct EdgeLayout {
    pub edge_index: usize,
    pub from: Point,
    pub to: Point,
    /// Where to place the operator label, if the edge has one.
    pub label_pos: Point,
}

/// A fully positioned diagram.
#[derive(Debug, Clone)]
pub struct Layout {
    pub tables: Vec<TableLayout>,
    pub boxes: Vec<BoxLayout>,
    pub edges: Vec<EdgeLayout>,
    /// Total drawing size.
    pub width: f64,
    pub height: f64,
}

impl Layout {
    pub fn table(&self, id: TableId) -> &TableLayout {
        self.tables
            .iter()
            .find(|t| t.table == id)
            .expect("every diagram table has a layout")
    }
}

/// Lay out a diagram with the given options.
pub fn layout_diagram(diagram: &Diagram, options: &LayoutOptions) -> Layout {
    let sizes = measure_tables(diagram, options);

    // -------- Column assignment --------
    // Column 0: SELECT table. Column d+1: tables at nesting depth d.
    // Grouping unit: the LT node (so boxes stay contiguous); the SELECT
    // table and each root table form singleton groups.
    #[derive(Debug)]
    struct Group {
        tables: Vec<TableId>,
        column: usize,
        /// Mutable ordering key within the column.
        order: f64,
    }

    let mut groups: Vec<Group> = Vec::new();
    let mut group_of: HashMap<TableId, usize> = HashMap::new();

    groups.push(Group {
        tables: vec![diagram.select_table],
        column: 0,
        order: 0.0,
    });
    group_of.insert(diagram.select_table, 0);

    // Group non-select tables by their LT node.
    let mut node_groups: HashMap<usize, usize> = HashMap::new();
    for table in &diagram.tables {
        if table.is_select {
            continue;
        }
        let node = table.node.expect("non-select tables carry their node");
        let gidx = *node_groups.entry(node).or_insert_with(|| {
            groups.push(Group {
                tables: Vec::new(),
                column: table.depth + 1,
                order: groups.len() as f64,
            });
            groups.len() - 1
        });
        groups[gidx].tables.push(table.id);
        group_of.insert(table.id, gidx);
    }

    let n_columns = groups.iter().map(|g| g.column).max().unwrap_or(0) + 1;

    // -------- Barycenter ordering --------
    // Connection list at the table level for barycenter computation.
    let mut adjacency: Vec<(TableId, TableId)> = Vec::new();
    for edge in &diagram.edges {
        adjacency.push((edge.from.table, edge.to.table));
    }
    for _ in 0..options.barycenter_passes {
        for col in 0..n_columns {
            // Current vertical rank of each table = order of its group.
            let rank: HashMap<TableId, f64> = group_of
                .iter()
                .map(|(&t, &g)| (t, groups[g].order))
                .collect();
            let mut updates: Vec<(usize, f64)> = Vec::new();
            for (gidx, group) in groups.iter().enumerate() {
                if group.column != col {
                    continue;
                }
                let mut total = 0.0;
                let mut count = 0;
                for &(a, b) in &adjacency {
                    let (inside, outside) = if group.tables.contains(&a) {
                        (a, b)
                    } else if group.tables.contains(&b) {
                        (b, a)
                    } else {
                        continue;
                    };
                    let _ = inside;
                    if group_of[&outside] != gidx {
                        total += rank[&outside];
                        count += 1;
                    }
                }
                if count > 0 {
                    updates.push((gidx, total / count as f64));
                }
            }
            for (gidx, order) in updates {
                groups[gidx].order = order;
            }
        }
    }

    // -------- Coordinate assignment --------
    // Column widths: widest group footprint (box padding included when the
    // group is boxed).
    let is_boxed = |group: &Group| -> bool {
        group
            .tables
            .first()
            .is_some_and(|&t| diagram.box_of(t).is_some())
    };
    let group_width = |group: &Group| -> f64 {
        let w = group
            .tables
            .iter()
            .map(|t| sizes[t].0)
            .fold(0.0_f64, f64::max);
        if is_boxed(group) {
            w + 2.0 * options.box_padding
        } else {
            w
        }
    };
    let group_height = |group: &Group| -> f64 {
        let tables: f64 = group.tables.iter().map(|t| sizes[t].1).sum();
        let gaps = options.table_gap * (group.tables.len().saturating_sub(1)) as f64;
        let inner = tables + gaps;
        if is_boxed(group) {
            inner + 2.0 * options.box_padding
        } else {
            inner
        }
    };

    let mut column_width = vec![0.0_f64; n_columns];
    for group in &groups {
        column_width[group.column] = column_width[group.column].max(group_width(group));
    }
    let mut column_x = vec![0.0_f64; n_columns];
    let mut x = options.margin;
    for col in 0..n_columns {
        column_x[col] = x;
        x += column_width[col] + options.column_gap;
    }
    let total_width = x - options.column_gap + options.margin;

    // Column heights, then vertical placement (groups sorted by order).
    let mut column_height = vec![0.0_f64; n_columns];
    let mut per_column: Vec<Vec<usize>> = vec![Vec::new(); n_columns];
    for (gidx, group) in groups.iter().enumerate() {
        per_column[group.column].push(gidx);
    }
    for col in 0..n_columns {
        per_column[col].sort_by(|&a, &b| {
            groups[a]
                .order
                .partial_cmp(&groups[b].order)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let h: f64 = per_column[col]
            .iter()
            .map(|&g| group_height(&groups[g]))
            .sum::<f64>()
            + options.group_gap * (per_column[col].len().saturating_sub(1)) as f64;
        column_height[col] = h;
    }
    let max_height = column_height.iter().copied().fold(0.0_f64, f64::max);
    let total_height = max_height + 2.0 * options.margin;

    // Place tables.
    let mut table_layouts: HashMap<TableId, TableLayout> = HashMap::new();
    for col in 0..n_columns {
        // Center the column's stack vertically.
        let mut y = options.margin + (max_height - column_height[col]) / 2.0;
        for &gidx in &per_column[col] {
            let group = &groups[gidx];
            let boxed = is_boxed(group);
            let pad = if boxed { options.box_padding } else { 0.0 };
            let mut ty = y + pad;
            for &tid in &group.tables {
                let (w, h) = sizes[&tid];
                // Center the table horizontally within its column slot.
                let tx = column_x[col] + (column_width[col] - w) / 2.0;
                let rect = Rect::new(tx, ty, w, h);
                let header = Rect::new(tx, ty, w, options.header_height);
                let mut row_rects = Vec::new();
                let mut ry = ty + options.header_height;
                for _ in &diagram.tables[tid].rows {
                    row_rects.push(Rect::new(tx, ry, w, options.row_height));
                    ry += options.row_height;
                }
                table_layouts.insert(
                    tid,
                    TableLayout {
                        table: tid,
                        rect,
                        header,
                        row_rects,
                    },
                );
                ty += h + options.table_gap;
            }
            y += group_height(group) + options.group_gap;
        }
    }

    // Quantifier boxes: bounding rect of member tables, inflated.
    let mut box_layouts = Vec::new();
    for (box_index, qbox) in diagram.boxes.iter().enumerate() {
        let mut rect: Option<Rect> = None;
        for &tid in &qbox.tables {
            let r = table_layouts[&tid].rect;
            rect = Some(match rect {
                Some(acc) => acc.union(&r),
                None => r,
            });
        }
        if let Some(rect) = rect {
            box_layouts.push(BoxLayout {
                box_index,
                rect: rect.inflate(options.box_padding),
            });
        }
    }

    // Edge anchors: left/right row midpoints facing the other endpoint.
    let mut edge_layouts = Vec::new();
    for (edge_index, edge) in diagram.edges.iter().enumerate() {
        let from_rect = table_layouts[&edge.from.table].row_rects[edge.from.row];
        let to_rect = table_layouts[&edge.to.table].row_rects[edge.to.row];
        let (from, to) = if from_rect.center().x <= to_rect.center().x {
            (from_rect.right_mid(), to_rect.left_mid())
        } else {
            (from_rect.left_mid(), to_rect.right_mid())
        };
        let mid = from.midpoint(to);
        edge_layouts.push(EdgeLayout {
            edge_index,
            from,
            to,
            label_pos: Point::new(mid.x, mid.y - 6.0),
        });
    }

    let mut tables: Vec<TableLayout> = table_layouts.into_values().collect();
    tables.sort_by_key(|t| t.table);

    Layout {
        tables,
        boxes: box_layouts,
        edges: edge_layouts,
        width: total_width,
        height: total_height,
    }
}

fn measure_tables(diagram: &Diagram, options: &LayoutOptions) -> HashMap<TableId, (f64, f64)> {
    diagram
        .tables
        .iter()
        .map(|table| {
            // Width is per displayed character, so text is measured in
            // chars, not bytes: a multibyte name (`café`, `Übersicht`)
            // must not inflate its table.
            let chars = |s: &str| s.chars().count() as f64;
            let mut text_width = chars(table.name.as_str()) * options.char_width;
            for row in &table.rows {
                text_width = text_width.max(chars(&row.display()) * options.char_width);
            }
            let w = (text_width + 2.0 * options.cell_padding).max(options.min_table_width);
            let h = options.header_height + options.row_height * table.rows.len() as f64;
            (table.id, (w, h))
        })
        .collect()
}

/// Count pairwise proper crossings between edge segments — the quality
/// metric for the barycenter ablation.
pub fn crossing_count(layout: &Layout) -> usize {
    let mut count = 0;
    for i in 0..layout.edges.len() {
        for j in (i + 1)..layout.edges.len() {
            let a = &layout.edges[i];
            let b = &layout.edges[j];
            if segments_cross(a.from, a.to, b.from, b.to) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use queryvis_diagram::build_diagram;
    use queryvis_logic::translate;
    use queryvis_sql::parse_query;

    fn layout(sql: &str) -> (Diagram, Layout) {
        let d = build_diagram(&translate(&parse_query(sql).unwrap(), None).unwrap());
        let l = layout_diagram(&d, &LayoutOptions::default());
        (d, l)
    }

    const UNIQUE_SET: &str = "SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
        SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker \
        AND NOT EXISTS( \
          SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker \
          AND NOT EXISTS( \
            SELECT * FROM Likes L4 WHERE L4.drinker = L1.drinker \
            AND L4.beer = L3.beer)) \
        AND NOT EXISTS( \
          SELECT * FROM Likes L5 WHERE L5.drinker = L1.drinker \
          AND NOT EXISTS( \
            SELECT * FROM Likes L6 WHERE L6.drinker = L2.drinker \
            AND L6.beer = L5.beer)))";

    #[test]
    fn every_table_and_edge_is_placed() {
        let (d, l) = layout(UNIQUE_SET);
        assert_eq!(l.tables.len(), d.tables.len());
        assert_eq!(l.edges.len(), d.edges.len());
        assert_eq!(l.boxes.len(), d.boxes.len());
        assert!(l.width > 0.0 && l.height > 0.0);
    }

    #[test]
    fn columns_follow_nesting_depth() {
        let (d, l) = layout(UNIQUE_SET);
        let x_of = |binding: &str| {
            let id = d.table_by_binding(binding).unwrap().id;
            l.table(id).rect.x
        };
        assert!(x_of("SELECT") < x_of("L1"));
        assert!(x_of("L1") < x_of("L2"));
        assert!(x_of("L2") < x_of("L3"));
        assert!(x_of("L3") < x_of("L4"));
        // L3 and L5 share depth 2 → same column x.
        assert_eq!(x_of("L3"), x_of("L5"));
        assert_eq!(x_of("L4"), x_of("L6"));
    }

    #[test]
    fn tables_do_not_overlap() {
        let (_, l) = layout(UNIQUE_SET);
        for i in 0..l.tables.len() {
            for j in (i + 1)..l.tables.len() {
                assert!(
                    !l.tables[i].rect.intersects(&l.tables[j].rect),
                    "tables {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn boxes_contain_their_tables() {
        let (d, l) = layout(UNIQUE_SET);
        for bl in &l.boxes {
            for &tid in &d.boxes[bl.box_index].tables {
                let tr = l.table(tid).rect;
                assert!(bl.rect.x <= tr.x && bl.rect.right() >= tr.right());
                assert!(bl.rect.y <= tr.y && bl.rect.bottom() >= tr.bottom());
            }
        }
    }

    #[test]
    fn boxes_do_not_overlap_each_other() {
        let (_, l) = layout(UNIQUE_SET);
        for i in 0..l.boxes.len() {
            for j in (i + 1)..l.boxes.len() {
                assert!(
                    !l.boxes[i].rect.intersects(&l.boxes[j].rect),
                    "boxes {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn edge_anchors_touch_their_rows() {
        let (d, l) = layout(UNIQUE_SET);
        for el in &l.edges {
            let edge = &d.edges[el.edge_index];
            let from_row = l.table(edge.from.table).row_rects[edge.from.row];
            let to_row = l.table(edge.to.table).row_rects[edge.to.row];
            let on_boundary = |p: Point, r: Rect| {
                ((p.x - r.x).abs() < 1e-6 || (p.x - r.right()).abs() < 1e-6)
                    && p.y >= r.y
                    && p.y <= r.bottom()
            };
            assert!(on_boundary(el.from, from_row));
            assert!(on_boundary(el.to, to_row));
        }
    }

    #[test]
    fn rows_stack_below_header() {
        let (_, l) = layout("SELECT L.drinker, L.beer FROM Likes L WHERE L.beer = 'IPA'");
        for t in &l.tables {
            let mut y = t.header.bottom();
            for r in &t.row_rects {
                assert_eq!(r.y, y);
                y = r.bottom();
            }
            assert_eq!(t.rect.bottom(), y);
        }
    }

    #[test]
    fn barycenter_does_not_increase_crossings_on_reference_diagrams() {
        let d = build_diagram(&translate(&parse_query(UNIQUE_SET).unwrap(), None).unwrap());
        let with = layout_diagram(&d, &LayoutOptions::default());
        let without = layout_diagram(
            &d,
            &LayoutOptions {
                barycenter_passes: 0,
                ..LayoutOptions::default()
            },
        );
        assert!(crossing_count(&with) <= crossing_count(&without));
    }

    #[test]
    fn drawing_fits_all_rects() {
        let (_, l) = layout(UNIQUE_SET);
        for t in &l.tables {
            assert!(t.rect.x >= 0.0 && t.rect.right() <= l.width);
            assert!(t.rect.y >= 0.0 && t.rect.bottom() <= l.height);
        }
        for b in &l.boxes {
            assert!(b.rect.x >= 0.0 && b.rect.right() <= l.width + 1e-6);
            assert!(b.rect.y >= 0.0 && b.rect.bottom() <= l.height + 1e-6);
        }
    }
}
