//! Minimal 2D geometry used by the layout engine and renderers.

/// A point in diagram coordinates (y grows downward, as in SVG).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// An axis-aligned rectangle (origin at top-left).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
}

impl Rect {
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Rect { x, y, w, h }
    }

    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Midpoint of the left edge.
    pub fn left_mid(&self) -> Point {
        Point::new(self.x, self.y + self.h / 2.0)
    }

    /// Midpoint of the right edge.
    pub fn right_mid(&self) -> Point {
        Point::new(self.right(), self.y + self.h / 2.0)
    }

    /// Grow the rectangle outward by `pad` on every side.
    pub fn inflate(&self, pad: f64) -> Rect {
        Rect::new(
            self.x - pad,
            self.y - pad,
            self.w + 2.0 * pad,
            self.h + 2.0 * pad,
        )
    }

    /// The smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let b = self.bottom().max(other.bottom());
        Rect::new(x, y, r - x, b - y)
    }

    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x <= self.right() && p.y >= self.y && p.y <= self.bottom()
    }

    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }
}

/// True if segment (a1, a2) properly intersects segment (b1, b2).
/// Shared endpoints do not count as crossings (edges meeting at the same
/// attribute row are not a legibility problem).
pub fn segments_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    const EPS: f64 = 1e-9;
    let close = |p: Point, q: Point| (p.x - q.x).abs() < EPS && (p.y - q.y).abs() < EPS;
    if close(a1, b1) || close(a1, b2) || close(a2, b1) || close(a2, b2) {
        return false;
    }
    let d = |p: Point, q: Point, r: Point| (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
    let d1 = d(b1, b2, a1);
    let d2 = d(b1, b2, a2);
    let d3 = d(a1, a2, b1);
    let d4 = d(a1, a2, b2);
    (d1 * d2 < -EPS) && (d3 * d4 < -EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_accessors() {
        let r = Rect::new(10.0, 20.0, 30.0, 40.0);
        assert_eq!(r.right(), 40.0);
        assert_eq!(r.bottom(), 60.0);
        assert_eq!(r.center(), Point::new(25.0, 40.0));
        assert_eq!(r.left_mid(), Point::new(10.0, 40.0));
        assert_eq!(r.right_mid(), Point::new(40.0, 40.0));
    }

    #[test]
    fn rect_inflate_union() {
        let r = Rect::new(10.0, 10.0, 10.0, 10.0).inflate(5.0);
        assert_eq!(r, Rect::new(5.0, 5.0, 20.0, 20.0));
        let u = Rect::new(0.0, 0.0, 5.0, 5.0).union(&Rect::new(10.0, 10.0, 5.0, 5.0));
        assert_eq!(u, Rect::new(0.0, 0.0, 15.0, 15.0));
    }

    #[test]
    fn rect_containment_intersection() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(15.0, 5.0)));
        assert!(r.intersects(&Rect::new(5.0, 5.0, 10.0, 10.0)));
        assert!(!r.intersects(&Rect::new(20.0, 20.0, 5.0, 5.0)));
    }

    #[test]
    fn crossing_segments() {
        let cross = segments_cross(
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 0.0),
        );
        assert!(cross);
        let parallel = segments_cross(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 5.0),
            Point::new(10.0, 5.0),
        );
        assert!(!parallel);
        // Shared endpoint does not count.
        let shared = segments_cross(
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        );
        assert!(!shared);
    }
}
