//! Vendored stand-in for the slice of `criterion` this workspace's benches
//! use: `Criterion::bench_function`, `benchmark_group` (with `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no crates.io access, so this crate provides a
//! simple wall-clock harness instead: each benchmark is warmed up, then
//! timed over enough iterations to fill a measurement window, and the
//! mean/min per-iteration times are printed one line per benchmark. When the
//! binary is invoked with `--test` (what `cargo test --benches` passes),
//! every benchmark runs exactly one iteration so the suite doubles as a
//! smoke test.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Target wall-clock time to fill with measured iterations.
    measurement: Duration,
    /// Smoke mode: run everything exactly once, skip timing entirely.
    smoke: bool,
}

impl Settings {
    fn from_args() -> Settings {
        let smoke = std::env::args().any(|a| a == "--test");
        Settings {
            measurement: Duration::from_millis(200),
            smoke,
        }
    }
}

/// Entry point struct, mirroring `criterion::Criterion`.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_args(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings, &mut body);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
        }
    }
}

/// A named group of related benchmarks (prefixes each benchmark id).
pub struct BenchmarkGroup {
    name: String,
    settings: Settings,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the wall-clock harness sizes its
    /// iteration count from the measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<D: fmt::Display, F>(&mut self, id: D, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.settings, &mut body);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_benchmark(&name, self.settings, &mut |b| body(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (only the `from_parameter` form is used in-repo).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: fmt::Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<D: fmt::Display, P: fmt::Display>(function: D, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    settings: Settings,
    /// Filled in by `iter`: (total elapsed, iterations, fastest single batch).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        if self.settings.smoke {
            black_box(payload());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Warm-up and calibration: time single iterations until we can
        // estimate how many fit in the measurement window.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < self.settings.measurement / 10 {
            black_box(payload());
            calibration_iters += 1;
            if calibration_iters >= 10_000 {
                break;
            }
        }
        let per_iter = calibration_start.elapsed().as_secs_f64() / calibration_iters as f64;
        let target = self.settings.measurement.as_secs_f64();
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(payload());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, body: &mut F) {
    let mut bencher = Bencher {
        settings,
        result: None,
    };
    body(&mut bencher);
    match bencher.result {
        Some((_, _)) if settings.smoke => println!("{name:<50} ok (smoke)"),
        Some((elapsed, iters)) => {
            let per_iter = Duration::from_secs_f64(elapsed.as_secs_f64() / iters.max(1) as f64);
            println!(
                "{name:<50} {:>12}/iter ({iters} iters in {})",
                format_duration(per_iter),
                format_duration(elapsed),
            );
        }
        None => println!("{name:<50} (no measurement: bencher.iter never called)"),
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (benches set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_payload() {
        let mut c = Criterion {
            settings: Settings {
                measurement: Duration::from_millis(5),
                smoke: false,
            },
        };
        let mut hits = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            settings: Settings {
                measurement: Duration::from_millis(2),
                smoke: true,
            },
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
