//! Machine-readable stats export: [`ServiceStats`] + the process-wide
//! telemetry snapshot as one JSON document, built with the service's own
//! [`json`](crate::json) writer (the workspace carries no serde).
//!
//! Shape (all keys name-sorted within their section, so the document is
//! schema-stable run to run):
//!
//! ```json
//! {
//!   "service":   { "requests": 123, ..., "cache": {...}, "memo": {...} },
//!   "telemetry": {
//!     "enabled": true,
//!     "counters": { "compiles": 7, "l2_hits": 90, ... },
//!     "gauges": { "inflight_compiles": 0 },
//!     "histograms": {
//!       "request":     { "count": 123, "p50_ns": ..., "p999_ns": ... },
//!       "stage.parse": { ... }, "pass.simplify": { ... }, ...
//!     },
//!     "trace_dropped": 0
//!   }
//! }
//! ```
//!
//! The `service` section is the legacy per-instance [`ServiceStats`] view
//! (kept as the compatibility surface the acceptance checks grep); the
//! `telemetry` section is the process-global registry — counters mirror
//! the service events, histograms carry the per-stage spans, and `pass.*`
//! entries surface the `PassManager` timings that used to be write-only.

use crate::json::Json;
use crate::service::ServiceStats;
use crate::session::SessionStatsSnapshot;
use queryvis_telemetry::{HistogramSnapshot, TelemetrySnapshot, TraceRecord};

fn usize_json(n: usize) -> Json {
    Json::Int(n as u64)
}

fn i64_json(n: i64) -> Json {
    match u64::try_from(n) {
        Ok(n) => Json::Int(n),
        Err(_) => Json::Num(n as f64),
    }
}

/// An `f64` in parser-normal form: the writer prints integral floats
/// without a decimal point and the parser reads those back as `Int`, so
/// integral values must be emitted as `Int` for serialize → parse to be
/// the identity.
fn f64_json(x: f64) -> Json {
    const MAX_EXACT: f64 = 9_007_199_254_740_991.0; // 2^53 − 1
    if x >= 0.0 && x.fract() == 0.0 && x <= MAX_EXACT {
        Json::Int(x as u64)
    } else {
        Json::Num(x)
    }
}

/// One histogram as a JSON object: count, percentiles, extremes, mean.
pub fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::Int(h.count())),
        ("sum_ns".to_string(), Json::Int(h.sum())),
        ("min_ns".to_string(), Json::Int(h.min())),
        ("max_ns".to_string(), Json::Int(h.max())),
        ("mean_ns".to_string(), f64_json(h.mean())),
        ("p50_ns".to_string(), Json::Int(h.p50())),
        ("p90_ns".to_string(), Json::Int(h.p90())),
        ("p99_ns".to_string(), Json::Int(h.p99())),
        ("p999_ns".to_string(), Json::Int(h.p999())),
    ])
}

/// The legacy per-instance counters as the `service` section.
pub fn service_stats_json(stats: &ServiceStats) -> Json {
    Json::Obj(vec![
        ("requests".to_string(), Json::Int(stats.requests)),
        ("compiles".to_string(), Json::Int(stats.compiles)),
        ("coalesced".to_string(), Json::Int(stats.coalesced)),
        ("errors".to_string(), Json::Int(stats.errors)),
        ("l1_hits".to_string(), Json::Int(stats.l1_hits)),
        ("panics_caught".to_string(), Json::Int(stats.panics_caught)),
        ("l1_entries".to_string(), usize_json(stats.l1_entries)),
        (
            "interned_symbols".to_string(),
            Json::Int(stats.interned_symbols),
        ),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Int(stats.cache.hits)),
                ("misses".to_string(), Json::Int(stats.cache.misses)),
                ("evictions".to_string(), Json::Int(stats.cache.evictions)),
                ("entries".to_string(), usize_json(stats.cache.entries)),
                ("capacity".to_string(), usize_json(stats.cache.capacity)),
                ("shards".to_string(), usize_json(stats.cache.shards)),
            ]),
        ),
        (
            "memo".to_string(),
            Json::Obj(vec![
                ("entries".to_string(), usize_json(stats.memo.entries)),
                ("capacity".to_string(), usize_json(stats.memo.capacity)),
                ("shards".to_string(), usize_json(stats.memo.shards)),
                ("evictions".to_string(), Json::Int(stats.memo.evictions)),
                (
                    "invalidations".to_string(),
                    Json::Int(stats.memo.invalidations),
                ),
            ]),
        ),
    ])
}

/// The process-wide telemetry registry as the `telemetry` section. The
/// snapshot's vectors are already name-sorted, so field order — and
/// therefore serialization — is deterministic.
pub fn telemetry_json(snapshot: &TelemetrySnapshot) -> Json {
    Json::Obj(vec![
        ("enabled".to_string(), Json::Bool(snapshot.enabled)),
        (
            "counters".to_string(),
            Json::Obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(name, value)| (name.clone(), Json::Int(*value)))
                    .collect(),
            ),
        ),
        (
            "gauges".to_string(),
            Json::Obj(
                snapshot
                    .gauges
                    .iter()
                    .map(|(name, value)| (name.clone(), i64_json(*value)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Json::Obj(
                snapshot
                    .histograms
                    .iter()
                    .map(|(name, h)| (name.clone(), histogram_json(h)))
                    .collect(),
            ),
        ),
        (
            "trace_dropped".to_string(),
            Json::Int(queryvis_telemetry::global().trace_dropped()),
        ),
    ])
}

/// The incremental-session ledger as the `sessions` section (DESIGN.md
/// §9): how many sessions exist, how their edits resolved across the
/// compile tiers, and how their scene updates shipped.
pub fn session_stats_json(s: &SessionStatsSnapshot) -> Json {
    Json::Obj(vec![
        ("open".to_string(), Json::Int(s.open)),
        ("opened_total".to_string(), Json::Int(s.opened_total)),
        ("closed".to_string(), Json::Int(s.closed)),
        ("evicted".to_string(), Json::Int(s.evicted)),
        ("reaped".to_string(), Json::Int(s.reaped)),
        ("edits".to_string(), Json::Int(s.edits)),
        ("token_splices".to_string(), Json::Int(s.token_splices)),
        ("path_tokens".to_string(), Json::Int(s.path_tokens)),
        ("path_fragment".to_string(), Json::Int(s.path_fragment)),
        ("path_full".to_string(), Json::Int(s.path_full)),
        ("parse_errors".to_string(), Json::Int(s.parse_errors)),
        ("patches".to_string(), Json::Int(s.patches)),
        ("resyncs".to_string(), Json::Int(s.resyncs)),
    ])
}

/// The full stats document: `ServiceStats` compat view + telemetry
/// snapshot, plus the `sessions` ledger when the front end ran one. This
/// is what `service --stats-json` emits and what the acceptance smoke
/// round-trips through [`crate::json::parse`].
pub fn stats_snapshot_json(
    stats: &ServiceStats,
    snapshot: &TelemetrySnapshot,
    sessions: Option<&SessionStatsSnapshot>,
) -> Json {
    let mut fields = vec![
        ("service".to_string(), service_stats_json(stats)),
        ("telemetry".to_string(), telemetry_json(snapshot)),
    ];
    if let Some(sessions) = sessions {
        fields.push(("sessions".to_string(), session_stats_json(sessions)));
    }
    Json::Obj(fields)
}

/// Serialize trace records as JSON lines (one span per line) into `out`.
/// The `--trace-jsonl` flag drains the global sink through this.
pub fn write_trace_jsonl(out: &mut String, records: &[TraceRecord]) {
    for r in records {
        let line = Json::Obj(vec![
            (
                "request".to_string(),
                if r.request == queryvis_telemetry::NO_REQUEST {
                    Json::Null
                } else {
                    Json::Int(r.request)
                },
            ),
            ("stage".to_string(), Json::Str(r.stage.to_string())),
            ("start_ns".to_string(), Json::Int(r.start_ns)),
            ("dur_ns".to_string(), Json::Int(r.dur_ns)),
            ("thread".to_string(), Json::Int(u64::from(r.thread))),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn snapshot_round_trips_through_parse() {
        let stats = ServiceStats {
            requests: 5,
            compiles: 2,
            coalesced: 1,
            errors: 0,
            l1_hits: 2,
            panics_caught: 0,
            l1_entries: 3,
            interned_symbols: 40,
            cache: Default::default(),
            memo: Default::default(),
        };
        let snapshot = queryvis_telemetry::global().snapshot();
        let sessions = SessionStatsSnapshot {
            open: 1,
            opened_total: 4,
            edits: 9,
            ..Default::default()
        };
        let doc = stats_snapshot_json(&stats, &snapshot, Some(&sessions));
        let text = doc.to_string();
        let parsed = json::parse(&text).expect("stats JSON must parse");
        assert_eq!(parsed, doc, "serialize → parse must be the identity");
        assert_eq!(
            parsed
                .get("service")
                .and_then(|s| s.get("requests"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert!(parsed.get("telemetry").is_some());
        assert_eq!(
            parsed
                .get("sessions")
                .and_then(|s| s.get("edits"))
                .and_then(Json::as_u64),
            Some(9)
        );
        // Without a session front end the section is absent, keeping the
        // legacy document shape byte-stable.
        let bare = stats_snapshot_json(&stats, &snapshot, None);
        assert!(bare.get("sessions").is_none());
    }

    #[test]
    fn trace_lines_parse_individually() {
        let records = vec![
            TraceRecord {
                request: 7,
                stage: "stage.parse",
                start_ns: 100,
                dur_ns: 50,
                thread: 0,
            },
            TraceRecord {
                request: queryvis_telemetry::NO_REQUEST,
                stage: "stage.render.svg",
                start_ns: 200,
                dur_ns: 75,
                thread: 1,
            },
        ];
        let mut out = String::new();
        write_trace_jsonl(&mut out, &records);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("request").and_then(Json::as_u64), Some(7));
        assert_eq!(
            first.get("stage").and_then(Json::as_str),
            Some("stage.parse")
        );
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("request"), Some(&Json::Null));
    }
}
