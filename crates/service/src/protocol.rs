//! The JSON-lines request/response protocol of the `service` binary.
//!
//! One request per input line, one response per output line, matched by
//! `id`. Requests:
//!
//! ```json
//! {"id": 7, "sql": "SELECT T.a FROM T", "formats": ["ascii", "svg"]}
//! ```
//!
//! `id` defaults to the (zero-based) input line index and `formats` to the
//! front end's default format list. Responses carry the pattern
//! fingerprint, the SQL text-complexity word count (paper §4.8, from
//! `queryvis_sql::metrics`), and one artifact string per requested format:
//!
//! ```json
//! {"id":7,"fingerprint":"<32 hex>","sql_words":4,"artifacts":{"ascii":"..."}}
//! {"id":8,"error":"parse error: ...","error_kind":"compile"}
//! ```
//!
//! Failed requests carry a machine-readable `error_kind` next to the prose
//! `error` message, so clients and the fault-injection harness can react
//! to failure *classes* (`bad_request`, `compile`, `too_large`, `timeout`,
//! `overloaded`, `panic`, `draining`) without parsing text.
//!
//! When a request is served from a *different* query's compiled entry (a
//! pattern-equivalent representative), the response additionally carries
//! `"representative_sql"` so the substitution is visible to clients.
//!
//! An optional `"rows": n` request field opts into up to `n` sample
//! result rows next to the diagram (server-capped), computed by executing
//! the representative over its deterministic generated database. They
//! arrive as `"rows": [[…], …]` (with `"rows_truncated": true` when rows
//! were dropped), or as a `"rows_error"` string when the executor
//! declines — the diagram itself is still served.

use crate::fingerprint::Fingerprint;
use crate::json::{self, Json};
use std::sync::Arc;

/// An artifact format the service can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    Ascii,
    Dot,
    Svg,
    /// The natural-language reading of the diagram (§4.6).
    Reading,
    /// The machine-readable [`Scene`](queryvis::layout::Scene) display
    /// list as one JSON document — what a browser client renders from.
    SceneJson,
}

impl Format {
    pub const ALL: [Format; 5] = [
        Format::Ascii,
        Format::Dot,
        Format::Svg,
        Format::Reading,
        Format::SceneJson,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Format::Ascii => "ascii",
            Format::Dot => "dot",
            Format::Svg => "svg",
            Format::Reading => "reading",
            Format::SceneJson => "scene_json",
        }
    }

    pub fn parse(name: &str) -> Option<Format> {
        Format::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Machine-readable classification of a failed request, carried on the
/// wire as `error_kind`. The set is the protocol's failure vocabulary:
/// front ends map every failure onto exactly one kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The line was not a well-formed request (bad JSON, wrong field
    /// shapes, unknown format or operation).
    BadRequest,
    /// The SQL failed inside the pipeline (lex, parse, validate,
    /// translate, or lower).
    Compile,
    /// The request line exceeded the front end's line budget. The
    /// offending line is consumed (and discarded) to its newline, so the
    /// connection survives.
    TooLarge,
    /// The client did not deliver a complete request line within the read
    /// deadline (slowloris protection); the connection is closed after
    /// this response.
    Timeout,
    /// Admission control shed this connection under overload instead of
    /// queueing it; retry against a less-loaded server.
    Overloaded,
    /// The compile panicked. The fault was isolated to this request — the
    /// connection and the process survive.
    Panic,
    /// The server is draining toward shutdown and no longer serves new
    /// requests.
    Draining,
}

impl ErrorKind {
    pub const ALL: [ErrorKind; 7] = [
        ErrorKind::BadRequest,
        ErrorKind::Compile,
        ErrorKind::TooLarge,
        ErrorKind::Timeout,
        ErrorKind::Overloaded,
        ErrorKind::Panic,
        ErrorKind::Draining,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Compile => "compile",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Panic => "panic",
            ErrorKind::Draining => "draining",
        }
    }

    pub fn parse(name: &str) -> Option<ErrorKind> {
        ErrorKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A classified request failure: the `error` / `error_kind` pair of a
/// failed response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    pub kind: ErrorKind,
    pub message: String,
}

impl ServiceError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServiceError {
        ServiceError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: u64,
    pub sql: String,
    /// Requested artifact formats; empty means "use the service default".
    pub formats: Vec<Format>,
    /// Opt-in sample rows: `Some(n)` asks for up to `n` example result
    /// rows next to the diagram, executed over deterministic generated
    /// data (capped server-side).
    pub rows: Option<usize>,
}

impl Request {
    /// Parse one JSON line. `default_id` is the line index, used when the
    /// request does not carry an explicit `id`.
    pub fn from_json_line(line: &str, default_id: u64) -> Result<Request, String> {
        let value = json::parse(line).map_err(|e| e.to_string())?;
        let sql = value
            .get("sql")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string `sql` field".to_string())?
            .to_string();
        let id = match value.get("id") {
            None => default_id,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| "`id` must be a non-negative integer".to_string())?,
        };
        let formats = match value.get("formats") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| "`formats` must be an array".to_string())?
                .iter()
                .map(|f| {
                    f.as_str()
                        .and_then(Format::parse)
                        .ok_or_else(|| format!("unknown format {f}"))
                })
                .collect::<Result<Vec<Format>, String>>()?,
        };
        let rows = match value.get("rows") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "`rows` must be a non-negative integer".to_string())?
                    as usize,
            ),
        };
        Ok(Request {
            id,
            sql,
            formats,
            rows,
        })
    }
}

/// The successful payload of a response.
///
/// Every string in here is an `Arc<str>` **shared with the cache entry**
/// that served the request — building a response copies pointers, never
/// artifact text. The bytes on the wire are produced straight from these
/// shared strings by [`Response::write_json_line`].
#[derive(Debug, Clone)]
pub struct Artifacts {
    pub fingerprint: Fingerprint,
    /// The fingerprint's 32-character hex form, rendered once per cache
    /// entry and shared by every response it serves.
    pub fingerprint_hex: Arc<str>,
    /// Word count of this request's own SQL (not the representative's).
    pub sql_words: usize,
    /// The SQL of the pattern representative the artifacts were rendered
    /// from, when it is *not* this request's own SQL. Pattern-equivalent
    /// queries deliberately share one diagram (paper App. G), so artifact
    /// label text (table names, aliases, constants) comes from the
    /// representative; this field is the disclosure that lets clients
    /// detect the substitution.
    pub representative_sql: Option<Arc<str>>,
    /// `(format, rendered)` in request order.
    pub rendered: Vec<(Format, Arc<str>)>,
    /// Sample result rows, present only when the request opted in via
    /// `rows`. Row fragments are pre-rendered JSON arrays shared with the
    /// cache entry.
    pub sample_rows: Option<SampleOutcome>,
}

/// Outcome of the opt-in sample-rows execution for one response.
#[derive(Debug, Clone)]
pub enum SampleOutcome {
    Rows {
        /// Pre-rendered JSON array fragments, one per row.
        rows: Vec<Arc<str>>,
        /// True when rows were dropped by the request's count or the
        /// server cap.
        truncated: bool,
    },
    /// The executor declined (work budget, fragment limits): the diagram
    /// is still served; the failure rides along as `rows_error`.
    Error(Arc<str>),
}

/// One response line.
#[derive(Debug, Clone)]
pub struct Response {
    pub id: u64,
    pub outcome: Result<Artifacts, ServiceError>,
}

impl Response {
    /// A compile-class error response (the historical default: every
    /// pipeline failure is a `compile` error). Use [`Response::error_kind`]
    /// for the other failure classes.
    pub fn error(id: u64, message: impl Into<String>) -> Response {
        Response::error_kind(id, ErrorKind::Compile, message)
    }

    pub fn error_kind(id: u64, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response {
            id,
            outcome: Err(ServiceError::new(kind, message)),
        }
    }

    /// Serialize as one JSON line (no trailing newline) into `out`,
    /// escaping artifact text directly from the shared `Arc<str>`s — no
    /// intermediate [`Json`] tree, no per-field `String`s. Callers on the
    /// output hot path keep one reusable buffer per worker and `clear()`
    /// it between lines.
    pub fn write_json_line(&self, out: &mut String) {
        out.push_str("{\"id\":");
        json::write_u64(out, self.id);
        match &self.outcome {
            Ok(artifacts) => {
                out.push_str(",\"fingerprint\":");
                json::escape_into(out, &artifacts.fingerprint_hex);
                out.push_str(",\"sql_words\":");
                json::write_u64(out, artifacts.sql_words as u64);
                if let Some(representative) = &artifacts.representative_sql {
                    out.push_str(",\"representative_sql\":");
                    json::escape_into(out, representative);
                }
                out.push_str(",\"artifacts\":{");
                for (i, (format, text)) in artifacts.rendered.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::escape_into(out, format.name());
                    out.push(':');
                    json::escape_into(out, text);
                }
                out.push('}');
                match &artifacts.sample_rows {
                    None => {}
                    Some(SampleOutcome::Rows { rows, truncated }) => {
                        out.push_str(",\"rows\":[");
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            // Fragments are already JSON arrays — emitted
                            // raw, not re-escaped.
                            out.push_str(row);
                        }
                        out.push(']');
                        if *truncated {
                            out.push_str(",\"rows_truncated\":true");
                        }
                    }
                    Some(SampleOutcome::Error(message)) => {
                        out.push_str(",\"rows_error\":");
                        json::escape_into(out, message);
                    }
                }
                out.push('}');
            }
            Err(error) => {
                out.push_str(",\"error\":");
                json::escape_into(out, &error.message);
                out.push_str(",\"error_kind\":");
                json::escape_into(out, error.kind.name());
                out.push('}');
            }
        }
    }

    /// [`Response::write_json_line`] into a fresh `String` (tests and
    /// one-off callers; the service binary reuses a buffer instead).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write_json_line(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults() {
        let r = Request::from_json_line(r#"{"sql": "SELECT T.a FROM T"}"#, 9).unwrap();
        assert_eq!(r.id, 9);
        assert_eq!(r.sql, "SELECT T.a FROM T");
        assert!(r.formats.is_empty());
    }

    #[test]
    fn request_explicit_fields() {
        let r = Request::from_json_line(
            r#"{"id": 3, "sql": "SELECT T.a FROM T", "formats": ["svg", "dot"]}"#,
            0,
        )
        .unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.formats, vec![Format::Svg, Format::Dot]);
    }

    #[test]
    fn request_rejects_bad_shapes() {
        assert!(Request::from_json_line("{}", 0).is_err());
        assert!(Request::from_json_line(r#"{"sql": 7}"#, 0).is_err());
        assert!(Request::from_json_line(r#"{"sql": "x", "formats": ["png"]}"#, 0).is_err());
        assert!(Request::from_json_line("not json", 0).is_err());
    }

    fn hex(fingerprint: Fingerprint) -> Arc<str> {
        fingerprint.to_string().into()
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = Response {
            id: 1,
            outcome: Ok(Artifacts {
                fingerprint: Fingerprint(0xff),
                fingerprint_hex: hex(Fingerprint(0xff)),
                sql_words: 4,
                representative_sql: None,
                rendered: vec![(Format::Ascii, "a\nb".into())],
                sample_rows: None,
            }),
        };
        let line = ok.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = crate::json::parse(&line).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(1));
        assert_eq!(
            parsed
                .get("artifacts")
                .unwrap()
                .get("ascii")
                .unwrap()
                .as_str(),
            Some("a\nb")
        );

        assert!(
            parsed.get("representative_sql").is_none(),
            "omitted when the artifacts come from the request's own SQL"
        );

        let err = Response::error(2, "boom").to_json_line();
        let parsed = crate::json::parse(&err).unwrap();
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("boom"));
        assert_eq!(parsed.get("error_kind").unwrap().as_str(), Some("compile"));
    }

    #[test]
    fn error_kinds_roundtrip_and_reach_the_wire() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::parse(kind.name()), Some(kind));
            let line = Response::error_kind(3, kind, "x").to_json_line();
            let parsed = crate::json::parse(&line).unwrap();
            assert_eq!(
                parsed.get("error_kind").unwrap().as_str(),
                Some(kind.name())
            );
        }
        assert_eq!(ErrorKind::parse("nope"), None);
    }

    #[test]
    fn representative_sql_is_disclosed_when_substituted() {
        let response = Response {
            id: 4,
            outcome: Ok(Artifacts {
                fingerprint: Fingerprint(1),
                fingerprint_hex: hex(Fingerprint(1)),
                sql_words: 4,
                representative_sql: Some("SELECT T.a FROM T".into()),
                rendered: Vec::new(),
                sample_rows: None,
            }),
        };
        let parsed = crate::json::parse(&response.to_json_line()).unwrap();
        assert_eq!(
            parsed.get("representative_sql").unwrap().as_str(),
            Some("SELECT T.a FROM T")
        );
    }

    #[test]
    fn rows_request_field_parses_and_rejects_bad_shapes() {
        let r = Request::from_json_line(r#"{"sql": "SELECT T.a FROM T"}"#, 0).unwrap();
        assert_eq!(r.rows, None);
        let r = Request::from_json_line(r#"{"sql": "SELECT T.a FROM T", "rows": 5}"#, 0).unwrap();
        assert_eq!(r.rows, Some(5));
        assert!(Request::from_json_line(r#"{"sql": "x", "rows": "many"}"#, 0).is_err());
        assert!(Request::from_json_line(r#"{"sql": "x", "rows": -1}"#, 0).is_err());
    }

    #[test]
    fn sample_rows_reach_the_wire_as_raw_json() {
        let response = Response {
            id: 5,
            outcome: Ok(Artifacts {
                fingerprint: Fingerprint(2),
                fingerprint_hex: hex(Fingerprint(2)),
                sql_words: 4,
                representative_sql: None,
                rendered: vec![(Format::Ascii, "d".into())],
                sample_rows: Some(SampleOutcome::Rows {
                    rows: vec!["[1,\"a\",null]".into(), "[2,\"b\",null]".into()],
                    truncated: true,
                }),
            }),
        };
        let line = response.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = crate::json::parse(&line).unwrap();
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("a"));
        assert_eq!(rows[0].as_arr().unwrap()[2], crate::json::Json::Null);
        assert_eq!(
            parsed.get("rows_truncated").and_then(|v| match v {
                crate::json::Json::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(true)
        );

        let err = Response {
            id: 6,
            outcome: Ok(Artifacts {
                fingerprint: Fingerprint(2),
                fingerprint_hex: hex(Fingerprint(2)),
                sql_words: 4,
                representative_sql: None,
                rendered: Vec::new(),
                sample_rows: Some(SampleOutcome::Error("execution budget exceeded".into())),
            }),
        };
        let parsed = crate::json::parse(&err.to_json_line()).unwrap();
        assert_eq!(
            parsed.get("rows_error").unwrap().as_str(),
            Some("execution budget exceeded")
        );
        assert!(parsed.get("rows").is_none());
    }

    #[test]
    fn format_names_roundtrip() {
        for f in Format::ALL {
            assert_eq!(Format::parse(f.name()), Some(f));
        }
        assert_eq!(Format::parse("png"), None);
    }
}
