//! `service` — the JSON-lines front end of the diagram-compilation service.
//!
//! Reads one request per stdin line, writes one response per stdout line
//! (in request order, byte-identical for any `--threads` value), and with
//! `--stats` prints one JSON stats line per pass to **stderr**, so stdout
//! stays a pure response stream.
//!
//! ```text
//! Usage: service [OPTIONS]
//!   --threads N        worker threads for batch execution      [default: 1]
//!   --capacity N       total cache entries across shards       [default: 4096]
//!   --shards N         cache shard count                       [default: 16]
//!   --passes N         run the whole input batch N times       [default: 1]
//!   --max-line BYTES   stdin request-line budget; longer lines
//!                      become structured `too_large` errors     [default: 1048576]
//!   --format LIST      default formats for requests without a
//!                      `formats` field, comma-separated        [default: ascii]
//!   --corpus           serve the built-in paper corpus instead of stdin
//!   --stats            print per-pass stats JSON to stderr
//!                      (enables telemetry: each line carries the pass's
//!                      request-latency percentiles and the cumulative
//!                      per-stage timing breakdown)
//!   --stats-json PATH  write the full stats snapshot (ServiceStats +
//!                      telemetry registry) as one JSON document to PATH
//!   --trace-jsonl PATH dump per-request span records (JSON lines) to PATH
//!   --help             this text
//! ```
//!
//! The cache persists across passes, so `--passes 2 --stats` demonstrates
//! the steady-state hit rate: pass 2 of any fixed batch is 100 % hits.
//! `--stats`, `--stats-json`, and `--trace-jsonl` all enable process
//! telemetry; without them every span/counter call site stays a single
//! relaxed atomic load.

use queryvis_service::json::Json;
use queryvis_service::net::{LineReader, Poll};
use queryvis_service::protocol::ErrorKind;
use queryvis_service::session::{is_session_op, SessionConfig, SessionStore};
use queryvis_service::stats_json::{histogram_json, stats_snapshot_json, write_trace_jsonl};
use queryvis_service::{
    paper_corpus_requests, CacheConfig, DiagramService, Format, MemoConfig, Request, Response,
    ServiceConfig, ServiceStats,
};
use queryvis_telemetry::TelemetrySnapshot;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

struct Cli {
    threads: usize,
    capacity: usize,
    shards: usize,
    passes: usize,
    max_line: usize,
    default_formats: Vec<Format>,
    corpus: bool,
    stats: bool,
    stats_json: Option<String>,
    trace_jsonl: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        threads: 1,
        capacity: 4096,
        shards: 16,
        passes: 1,
        max_line: 1 << 20,
        default_formats: vec![Format::Ascii],
        corpus: false,
        stats: false,
        stats_json: None,
        trace_jsonl: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{name} needs an unsigned integer"))
        };
        match arg.as_str() {
            "--threads" => cli.threads = number("--threads")?.max(1),
            "--capacity" => cli.capacity = number("--capacity")?.max(1),
            "--shards" => cli.shards = number("--shards")?.max(1),
            "--passes" => cli.passes = number("--passes")?.max(1),
            "--max-line" => cli.max_line = number("--max-line")?.max(1),
            "--format" => {
                let list = args.next().ok_or("--format needs a value")?;
                cli.default_formats = list
                    .split(',')
                    .map(|name| {
                        Format::parse(name.trim()).ok_or_else(|| format!("unknown format `{name}`"))
                    })
                    .collect::<Result<Vec<Format>, String>>()?;
            }
            "--corpus" => cli.corpus = true,
            "--stats" => cli.stats = true,
            "--stats-json" => {
                cli.stats_json = Some(args.next().ok_or("--stats-json needs a path")?);
            }
            "--trace-jsonl" => {
                cli.trace_jsonl = Some(args.next().ok_or("--trace-jsonl needs a path")?);
            }
            "--help" | "-h" => {
                println!("{}", USAGE.trim());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(cli)
}

const USAGE: &str = "
service — QueryVis diagram-compilation service (JSON lines on stdin/stdout)

  --threads N    worker threads for batch execution      [default: 1]
  --capacity N   total cache entries across shards       [default: 4096]
  --shards N     cache shard count                       [default: 16]
  --passes N     run the whole input batch N times       [default: 1]
  --max-line BYTES  stdin request-line budget (longer lines become
                 structured too_large errors)           [default: 1048576]
  --format LIST  default formats (comma-separated from
                 ascii,dot,svg,reading,scene_json)       [default: ascii]
  --corpus       serve the built-in paper corpus instead of stdin
  --stats        print per-pass stats JSON to stderr (with latency
                 percentiles and per-stage timing breakdown)
  --stats-json PATH   write the full stats snapshot document to PATH
  --trace-jsonl PATH  dump per-request span records (JSON lines) to PATH

Request lines:  {\"id\": 1, \"sql\": \"SELECT T.a FROM T\", \"formats\": [\"ascii\"]}
Response lines: {\"id\":1,\"fingerprint\":\"…\",\"sql_words\":4,\"artifacts\":{\"ascii\":\"…\"}}
Session lines:  {\"op\":\"open\",\"id\":1,\"sql\":\"SELECT T.a FROM T\"}
                {\"op\":\"edit\",\"id\":2,\"session\":1,\"edits\":[{\"at\":9,\"del\":0,\"ins\":\"a\"}]}
                {\"op\":\"close\",\"id\":3,\"session\":1}
";

/// One ordered slice of the input stream. Runs of plain compile requests
/// stay together so they still go through the deterministic batch
/// executor at full `--threads` parallelism; a session op is a sequence
/// point (its effect depends on every line before it), so it cuts the
/// batch and executes inline.
enum Segment {
    /// Consecutive plain requests plus pre-built error lines interleaved
    /// at their original positions within the run.
    Batch {
        requests: Vec<Request>,
        bad_lines: Vec<(usize, Response)>,
    },
    /// One `open`/`edit`/`close` line (input line number, parsed value).
    Op(u64, Json),
}

/// Read the whole input through the same bounded line framer the TCP
/// server uses: a line past `max_line` bytes is *discarded to its
/// newline* (never buffered whole — a hostile or corrupt input cannot
/// balloon memory through one giant line) and becomes a structured
/// `too_large` error at its position. Malformed lines likewise become
/// pre-built `bad_request` error responses, so every non-empty input line
/// still produces exactly one output line in order.
fn read_segments(corpus: bool, formats: &[Format], max_line: usize) -> Vec<Segment> {
    if corpus {
        return vec![Segment::Batch {
            requests: paper_corpus_requests(formats),
            bad_lines: Vec::new(),
        }];
    }
    let stdin = std::io::stdin();
    let mut reader = LineReader::new(stdin.lock(), max_line);
    let mut segments = Vec::new();
    let mut requests = Vec::new();
    let mut bad_lines = Vec::new();
    let mut position = 0usize;
    let mut line_no = 0u64;
    fn cut(
        segments: &mut Vec<Segment>,
        requests: &mut Vec<Request>,
        bad_lines: &mut Vec<(usize, Response)>,
        position: &mut usize,
    ) {
        if !requests.is_empty() || !bad_lines.is_empty() {
            segments.push(Segment::Batch {
                requests: std::mem::take(requests),
                bad_lines: std::mem::take(bad_lines),
            });
        }
        *position = 0;
    }
    loop {
        match reader.poll() {
            Poll::Line(line) => {
                let id = line_no;
                line_no += 1;
                if line.trim().is_empty() {
                    continue;
                }
                if let Ok(value) = queryvis_service::json::parse(&line) {
                    if is_session_op(&value) {
                        cut(&mut segments, &mut requests, &mut bad_lines, &mut position);
                        segments.push(Segment::Op(id, value));
                        continue;
                    }
                }
                match Request::from_json_line(&line, id) {
                    Ok(request) => requests.push(request),
                    Err(message) => bad_lines.push((
                        position,
                        Response::error_kind(
                            id,
                            ErrorKind::BadRequest,
                            format!("bad request: {message}"),
                        ),
                    )),
                }
                position += 1;
            }
            Poll::TooLarge { len } => {
                let id = line_no;
                line_no += 1;
                bad_lines.push((
                    position,
                    Response::error_kind(
                        id,
                        ErrorKind::TooLarge,
                        format!(
                            "request line exceeded the {max_line} byte budget \
                             (received at least {len})"
                        ),
                    ),
                ));
                position += 1;
            }
            // Blocking stdin never reports Idle, but stay total.
            Poll::Idle => continue,
            Poll::Eof => break,
            Poll::Fatal(e) => {
                eprintln!("service: stdin read error: {e}");
                break;
            }
        }
    }
    cut(&mut segments, &mut requests, &mut bad_lines, &mut position);
    segments
}

fn stats_line(
    pass: usize,
    stats: &ServiceStats,
    delta_hits: u64,
    delta_lookups: u64,
    elapsed_secs: f64,
    batch_len: usize,
    telemetry: Option<(&TelemetrySnapshot, &TelemetrySnapshot)>,
) -> String {
    use queryvis_service::json::Json;
    let pass_hit_rate = if delta_lookups > 0 {
        delta_hits as f64 / delta_lookups as f64
    } else {
        0.0
    };
    let qps = if elapsed_secs > 0.0 {
        batch_len as f64 / elapsed_secs
    } else {
        0.0
    };
    let mut line = Json::Obj(vec![
        ("pass".into(), Json::Num(pass as f64)),
        ("requests".into(), Json::Num(stats.requests as f64)),
        ("compiles".into(), Json::Num(stats.compiles as f64)),
        ("coalesced".into(), Json::Num(stats.coalesced as f64)),
        ("errors".into(), Json::Num(stats.errors as f64)),
        ("l1_hits".into(), Json::Num(stats.l1_hits as f64)),
        ("l1_entries".into(), Json::Num(stats.l1_entries as f64)),
        (
            "l1_invalidations".into(),
            Json::Num(stats.memo.invalidations as f64),
        ),
        ("cache_hits".into(), Json::Num(stats.cache.hits as f64)),
        ("cache_misses".into(), Json::Num(stats.cache.misses as f64)),
        (
            "cache_evictions".into(),
            Json::Num(stats.cache.evictions as f64),
        ),
        (
            "cache_entries".into(),
            Json::Num(stats.cache.entries as f64),
        ),
        (
            "pass_hit_rate".into(),
            Json::Num((pass_hit_rate * 1e4).round() / 1e4),
        ),
        (
            "elapsed_ms".into(),
            Json::Num((elapsed_secs * 1e5).round() / 1e2),
        ),
        ("qps".into(), Json::Num(qps.round())),
    ]);
    let Some((before, after)) = telemetry else {
        return line.to_string();
    };
    let Json::Obj(fields) = &mut line else {
        unreachable!("stats line is an object");
    };
    // This pass's request-latency window: the `request` histogram diffed
    // against its state before the pass.
    let window = match (after.histogram("request"), before.histogram("request")) {
        (Some(after), Some(before)) => Some(after.diff(before)),
        (Some(after), None) => Some(after.clone()),
        _ => None,
    };
    if let Some(window) = window {
        fields.push(("latency".into(), histogram_json(&window)));
    }
    // Cumulative per-stage breakdown: every pipeline stage and rewrite
    // pass histogram, name-sorted (the snapshot is pre-sorted).
    let stages: Vec<(String, Json)> = after
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("stage.") || name.starts_with("pass."))
        .map(|(name, h)| (name.clone(), histogram_json(h)))
        .collect();
    fields.push(("stages".into(), Json::Obj(stages)));
    line.to_string()
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("service: {message}");
            std::process::exit(2);
        }
    };
    // Any observability output enables telemetry for the process; tracing
    // (span records) only when a trace sink was requested.
    let telemetry_on = cli.stats || cli.stats_json.is_some() || cli.trace_jsonl.is_some();
    if telemetry_on {
        queryvis_telemetry::global().set_enabled(true);
    }
    if cli.trace_jsonl.is_some() {
        queryvis_telemetry::global().set_tracing(true);
    }
    let service = Arc::new(DiagramService::new(ServiceConfig {
        cache: CacheConfig {
            capacity: cli.capacity,
            shards: cli.shards,
        },
        // L1 holds *texts* (many per pattern), so it gets 4× the entry
        // budget of the diagram cache; its entries are tiny (normalized
        // bytes + 20B) next to compiled diagrams.
        memo: MemoConfig {
            capacity: cli.capacity.saturating_mul(4),
            shards: cli.shards,
        },
        options: Default::default(),
        default_formats: cli.default_formats.clone(),
    }));
    let sessions = SessionStore::new(Arc::clone(&service), SessionConfig::default());
    let segments = read_segments(cli.corpus, &cli.default_formats, cli.max_line);
    let batch_len: usize = segments
        .iter()
        .map(|s| match s {
            Segment::Batch { requests, .. } => requests.len(),
            Segment::Op(..) => 1,
        })
        .sum();

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // One reusable serialization buffer for the whole output stream: each
    // line escapes directly from the cache entry's shared artifacts into
    // this buffer — no per-response JSON tree or artifact clone.
    let mut line = String::with_capacity(4096);
    let mut write_line = |out: &mut dyn Write, response: &Response| {
        line.clear();
        response.write_json_line(&mut line);
        line.push('\n');
        out.write_all(line.as_bytes()).expect("stdout write");
    };
    for pass in 1..=cli.passes {
        let before = service.stats();
        let telemetry_before = telemetry_on.then(|| queryvis_telemetry::global().snapshot());
        let start = Instant::now();
        for segment in &segments {
            match segment {
                Segment::Batch {
                    requests,
                    bad_lines,
                } => {
                    let responses = service.execute_batch(requests, cli.threads);
                    // Interleave computed responses with the pre-built
                    // error lines at their original input positions.
                    let mut bad = bad_lines.iter().peekable();
                    let mut written = 0usize;
                    for (slot, response) in responses.iter().enumerate() {
                        while bad.peek().is_some_and(|(pos, _)| *pos == written + slot) {
                            let (_, error) = bad.next().expect("peeked");
                            write_line(&mut out, error);
                            written += 1;
                        }
                        write_line(&mut out, response);
                    }
                    for (_, error) in bad {
                        write_line(&mut out, error);
                    }
                }
                Segment::Op(id, value) => {
                    // Session ops execute inline: each depends on the
                    // buffer state every prior line produced. Stdin is one
                    // client; owner 0 covers the whole stream.
                    let mut response = sessions.dispatch_value(value, *id, 0);
                    response.push('\n');
                    out.write_all(response.as_bytes()).expect("stdout write");
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let after = service.stats();
        out.flush().expect("stdout flush");

        if cli.stats {
            let delta_hits = after.cache.hits - before.cache.hits;
            let delta_lookups = delta_hits + (after.cache.misses - before.cache.misses);
            let telemetry_after = queryvis_telemetry::global().snapshot();
            eprintln!(
                "{}",
                stats_line(
                    pass,
                    &after,
                    delta_hits,
                    delta_lookups,
                    elapsed,
                    batch_len,
                    telemetry_before.as_ref().map(|b| (b, &telemetry_after)),
                )
            );
        }
    }

    if let Some(path) = &cli.stats_json {
        let doc = stats_snapshot_json(
            &service.stats(),
            &queryvis_telemetry::global().snapshot(),
            Some(&sessions.snapshot()),
        );
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("service: cannot write --stats-json {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &cli.trace_jsonl {
        let records = queryvis_telemetry::global().drain_trace();
        let mut body = String::new();
        write_trace_jsonl(&mut body, &records);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("service: cannot write --trace-jsonl {path}: {e}");
            std::process::exit(1);
        }
    }
}
