//! `server` — the TCP front end of the diagram-compilation service.
//!
//! Serves the same JSON-lines protocol as the stdin `service` binary over
//! persistent TCP connections (pipelining supported), with the robustness
//! envelope of [`queryvis_service::server`]: admission control, bounded
//! lines, read deadlines, write stall budgets, panic isolation, and
//! graceful drain.
//!
//! Startup prints exactly one line to stdout —
//! `{"listening":"127.0.0.1:PORT"}` — so harnesses binding port 0 learn
//! the real address; the drain report is printed as one JSON line on exit.
//!
//! Quickstart (see README):
//!
//! ```text
//! server --addr 127.0.0.1:7878 &
//! printf '%s\n' '{"id":1,"sql":"SELECT T.a FROM T"}' | nc 127.0.0.1 7878
//! ```

use queryvis_service::{
    fault, CacheConfig, DiagramService, Format, MemoConfig, Server, ServerConfig, ServiceConfig,
};
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    server: ServerConfig,
    capacity: usize,
    shards: usize,
    default_formats: Vec<Format>,
    stats: bool,
    snapshot: Option<String>,
}

const USAGE: &str = "
server — QueryVis diagram-compilation service (JSON lines over TCP)

  --addr HOST:PORT       bind address; port 0 picks a free port   [default: 127.0.0.1:0]
  --max-conns N          concurrent connection ceiling            [default: 64]
  --max-line BYTES       request line budget                      [default: 1048576]
  --read-deadline-ms N   budget for a partial line to complete    [default: 10000]
  --write-stall-ms N     budget for a zero-progress write slice   [default: 5000]
  --drain-grace-ms N     in-flight window once drain begins       [default: 500]
  --capacity N           total cache entries across shards        [default: 4096]
  --shards N             cache shard count                        [default: 16]
  --format LIST          default formats (comma-separated from
                         ascii,dot,svg,reading,scene_json)        [default: ascii]
  --stats                enable process telemetry (the `stats` op
                         reports counters and latency histograms)
  --snapshot PATH        warm-cache persistence: on startup recompile the
                         representative texts listed in PATH (one SQL per
                         line, missing file tolerated); on graceful drain
                         rewrite PATH from the live cache, so a restarted
                         server answers its working set warm

Request lines:  {\"id\": 1, \"sql\": \"SELECT T.a FROM T\", \"formats\": [\"ascii\"]}
Operations:     {\"op\": \"ping\"} | {\"op\": \"stats\"} | {\"op\": \"shutdown\"}
Sessions:       {\"op\": \"open\", \"sql\": …} | {\"op\": \"edit\", \"session\": N,
                \"edits\": [{\"at\": O, \"del\": N, \"ins\": \"text\"}]} |
                {\"op\": \"close\", \"session\": N}
";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        server: ServerConfig::default(),
        capacity: 4096,
        shards: 16,
        default_formats: vec![Format::Ascii],
        stats: false,
        snapshot: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{name} needs an unsigned integer"))
        };
        match arg.as_str() {
            "--addr" => {
                cli.server.addr = args.next().ok_or("--addr needs a value")?;
            }
            "--max-conns" => cli.server.max_conns = number("--max-conns")?.max(1),
            "--max-line" => cli.server.max_line = number("--max-line")?.max(1),
            "--read-deadline-ms" => {
                cli.server.read_deadline =
                    Duration::from_millis(number("--read-deadline-ms")?.max(1) as u64);
            }
            "--write-stall-ms" => {
                cli.server.write_stall =
                    Duration::from_millis(number("--write-stall-ms")?.max(1) as u64);
            }
            "--drain-grace-ms" => {
                cli.server.drain_grace = Duration::from_millis(number("--drain-grace-ms")? as u64);
            }
            "--capacity" => cli.capacity = number("--capacity")?.max(1),
            "--shards" => cli.shards = number("--shards")?.max(1),
            "--format" => {
                let list = args.next().ok_or("--format needs a value")?;
                cli.default_formats = list
                    .split(',')
                    .map(|name| {
                        Format::parse(name.trim()).ok_or_else(|| format!("unknown format `{name}`"))
                    })
                    .collect::<Result<Vec<Format>, String>>()?;
            }
            "--stats" => cli.stats = true,
            "--snapshot" => {
                cli.snapshot = Some(args.next().ok_or("--snapshot needs a path")?);
            }
            "--help" | "-h" => {
                println!("{}", USAGE.trim());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("server: {message}");
            std::process::exit(2);
        }
    };
    if cli.stats {
        queryvis_telemetry::global().set_enabled(true);
    }
    // The fault-injection suite arms the compile-panic hook through the
    // environment; unset, this is inert.
    fault::arm_from_env();

    let service = Arc::new(DiagramService::new(ServiceConfig {
        cache: CacheConfig {
            capacity: cli.capacity,
            shards: cli.shards,
        },
        memo: MemoConfig {
            capacity: cli.capacity.saturating_mul(4),
            shards: cli.shards,
        },
        options: Default::default(),
        default_formats: cli.default_formats.clone(),
    }));
    // Warm-cache persistence (DESIGN.md §9): replay the previous run's
    // representative texts through the normal request path so the L2
    // cache starts populated. A missing or partly stale file costs
    // nothing but the failed recompiles.
    if let Some(path) = &cli.snapshot {
        if let Ok(body) = std::fs::read_to_string(path) {
            let mut warmed = 0usize;
            for line in body.lines().filter(|l| !l.trim().is_empty()) {
                if service.warm(line) {
                    warmed += 1;
                }
            }
            eprintln!("server: warmed {warmed} cache entries from {path}");
        }
    }
    let server = match Server::bind(Arc::clone(&service), cli.server) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("server: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!("{{\"listening\":\"{}\"}}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let report = server.run();
    // Snapshot on the way out of a graceful drain: one representative SQL
    // text per line, newline-escaped texts skipped (none exist today —
    // the lexer rejects raw newlines inside texts it accepts, but guard
    // the file format anyway).
    if let Some(path) = &cli.snapshot {
        let mut body = String::new();
        for sql in service.cache().representatives() {
            if !sql.contains('\n') {
                body.push_str(&sql);
                body.push('\n');
            }
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("server: cannot write --snapshot {path}: {e}");
        }
    }
    println!("{{\"drain_report\":{}}}", report.json());
    if report.dropped > 0 {
        std::process::exit(1);
    }
}
