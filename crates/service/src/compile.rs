//! Compiled cache entries: the diagram plus lazily rendered artifacts.
//!
//! An entry is immutable once built; the rendered artifacts materialize on
//! first request per format behind [`OnceLock`]s, so a pattern that is only
//! ever served as ASCII never pays for SVG text, while concurrent
//! renderers of the same entry do the work exactly once. Artifacts are
//! stored as `Arc<str>`: responses share the entry's rendering instead of
//! cloning whole artifact strings per request, so a warm hit copies
//! pointers, not text. The 32-hex-character fingerprint string and the
//! representative's SQL are likewise rendered/shared once per entry.
//!
//! **One layout per entry.** The geometric formats (svg, ascii,
//! scene_json) all render from one shared [`Scene`] behind its own
//! `OnceLock<Arc<Scene>>`: the first geometric request runs
//! `layout_diagram` + scene resolution + union composition, and every
//! later format walks the cached display list. Before the scene IR, an
//! entry served as ascii-then-svg laid the same diagram out twice.
//!
//! **Representative semantics.** Entries are keyed by canonical-pattern
//! fingerprint, and pattern-equivalent queries (alias renames, predicate
//! reordering, even schema swaps — paper App. G) share one entry. The
//! diagram and artifacts are rendered from the *pattern representative*:
//! the first query of the pattern to be compiled. That is exactly the
//! deduplication the paper licenses — "the visual diagram remains the same
//! for queries with identical logical patterns" — traded at the granularity
//! of whole diagrams, concrete label text included.

use crate::fingerprint::{Fingerprint, FingerprintedQuery};
use crate::json::Json;
use crate::protocol::Format;
use crate::scene_json::write_scene_json;
use queryvis::diagram::DiagramStats;
use queryvis::layout::Scene;
use queryvis::render::{ascii, svg, SvgTheme};
use queryvis::QueryVis;
use queryvis_telemetry::StageDef;
use std::sync::{Arc, OnceLock};

/// Per-format render stages (DESIGN.md §6). Each span covers one *actual*
/// materialization — memoized re-serves of an artifact record nothing, so
/// the histograms count renders, not requests.
static STAGE_RENDER_ASCII: StageDef = StageDef::new("stage.render.ascii");
static STAGE_RENDER_DOT: StageDef = StageDef::new("stage.render.dot");
static STAGE_RENDER_SVG: StageDef = StageDef::new("stage.render.svg");
static STAGE_RENDER_READING: StageDef = StageDef::new("stage.render.reading");
static STAGE_RENDER_SCENE_JSON: StageDef = StageDef::new("stage.render.scene_json");
static STAGE_RENDER_ROWS: StageDef = StageDef::new("stage.render.rows");

/// Hard cap on sample rows computed (and cached) per entry; requests ask
/// for up to this many via the `rows` field.
pub const MAX_SAMPLE_ROWS: usize = 20;
/// Fixed sample-data parameters: the rows shown next to a diagram are a
/// deterministic function of the pattern, never of request timing.
const SAMPLE_SEED: u64 = 1;
const SAMPLE_ROWS_PER_TABLE: usize = 4;
/// Executor work cap for the sample path — a hostile pattern (many nested
/// quantifiers) fails with a `rows_error` instead of stalling a worker.
const SAMPLE_BUDGET: u64 = 200_000;

/// Per-entry sample rows: each row pre-rendered as one JSON array
/// fragment (e.g. `[1,"a",null]`), shared by every response that asks.
#[derive(Debug, Clone)]
pub struct SampleRows {
    pub rows: Arc<[Arc<str>]>,
    /// True when the full result had more than [`MAX_SAMPLE_ROWS`] rows.
    pub truncated: bool,
}

fn datum_json(d: &queryvis_exec::Datum) -> Json {
    match d {
        queryvis_exec::Datum::Null => Json::Null,
        queryvis_exec::Datum::Num(n) => Json::Num(*n),
        queryvis_exec::Datum::Str(s) => Json::Str(s.clone()),
    }
}

/// A compiled pattern: the finished pipeline result for the pattern's
/// representative query, with per-format render caches.
pub struct CompiledEntry {
    fingerprint: Fingerprint,
    /// The fingerprint as 32 lowercase hex characters, rendered once at
    /// entry construction and shared by every response.
    hex: Arc<str>,
    pattern: String,
    /// The representative's SQL, shared (not cloned) into disclosing
    /// responses.
    representative: Arc<str>,
    qv: QueryVis,
    /// The composed scene every geometric artifact renders from; built on
    /// the first svg/ascii/scene_json request, then shared.
    scene: OnceLock<Arc<Scene>>,
    ascii: OnceLock<Arc<str>>,
    dot: OnceLock<Arc<str>>,
    svg: OnceLock<Arc<str>>,
    reading: OnceLock<Arc<str>>,
    scene_json: OnceLock<Arc<str>>,
    /// Sample result rows over the pattern's transport-generated database,
    /// computed once per entry on first `rows` request.
    samples: OnceLock<Result<SampleRows, Arc<str>>>,
}

impl CompiledEntry {
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The fingerprint's fixed-width hex rendering, shared per entry.
    pub fn fingerprint_hex(&self) -> &Arc<str> {
        &self.hex
    }

    /// The canonical pattern string this entry serves.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The SQL of the representative query the artifacts were rendered from.
    pub fn representative_sql(&self) -> &str {
        &self.representative
    }

    /// The representative SQL as a shareable `Arc<str>` (for responses
    /// that disclose it without copying).
    pub fn representative_shared(&self) -> &Arc<str> {
        &self.representative
    }

    /// Mark/channel statistics of the diagram (§4.8).
    pub fn stats(&self) -> DiagramStats {
        self.qv.stats()
    }

    /// The entry's composed [`Scene`] — layout, mark resolution, and
    /// union composition run exactly once per entry, on first geometric
    /// render, and the `Arc` is shared by every format that needs it
    /// (delegating to [`QueryVis::scene`]'s own memoization).
    pub fn scene(&self) -> &Arc<Scene> {
        self.scene.get_or_init(|| self.qv.scene())
    }

    /// Render (or fetch the memoized) artifact for one format. The
    /// returned `Arc` is shared: responses clone the pointer, never the
    /// text. Geometric formats walk the shared [`CompiledEntry::scene`];
    /// only dot (semantic GraphViz export) and reading (prose) bypass it.
    pub fn render(&self, format: Format) -> &Arc<str> {
        match format {
            Format::Ascii => self.ascii.get_or_init(|| {
                let _span = STAGE_RENDER_ASCII.span();
                ascii::to_ascii(self.scene()).into()
            }),
            Format::Dot => self.dot.get_or_init(|| {
                let _span = STAGE_RENDER_DOT.span();
                self.qv.dot().into()
            }),
            Format::Svg => self.svg.get_or_init(|| {
                let _span = STAGE_RENDER_SVG.span();
                svg::to_svg(self.scene(), &SvgTheme::default()).into()
            }),
            Format::Reading => self.reading.get_or_init(|| {
                let _span = STAGE_RENDER_READING.span();
                self.qv.reading().into()
            }),
            Format::SceneJson => self.scene_json.get_or_init(|| {
                let _span = STAGE_RENDER_SCENE_JSON.span();
                let mut out = String::with_capacity(4096);
                write_scene_json(&mut out, self.scene());
                out.into()
            }),
        }
    }

    /// Sample rows for the `rows` request field: the representative
    /// executed over its own deterministic transport database
    /// ([`queryvis_exec::sample_rows`]), capped at [`MAX_SAMPLE_ROWS`] and
    /// memoized per entry. Errors (budget, fragment limits) memoize too —
    /// they are a property of the pattern, not of the request.
    pub fn sample_rows(&self) -> &Result<SampleRows, Arc<str>> {
        self.samples.get_or_init(|| {
            let _span = STAGE_RENDER_ROWS.span();
            queryvis_exec::sample_rows(
                &self.qv.trees(),
                self.qv.union_all,
                SAMPLE_SEED,
                SAMPLE_ROWS_PER_TABLE,
                MAX_SAMPLE_ROWS,
                SAMPLE_BUDGET,
            )
            .map(|(rows, truncated)| SampleRows {
                rows: rows
                    .iter()
                    .map(|row| {
                        Arc::from(Json::Arr(row.iter().map(datum_json).collect()).to_string())
                    })
                    .collect(),
                truncated,
            })
            .map_err(|e| Arc::from(e.to_string()))
        })
    }

    /// Which formats have been rendered so far (observability only).
    pub fn rendered_formats(&self) -> Vec<Format> {
        let mut formats = Vec::new();
        for (format, slot) in [
            (Format::Ascii, &self.ascii),
            (Format::Dot, &self.dot),
            (Format::Svg, &self.svg),
            (Format::Reading, &self.reading),
            (Format::SceneJson, &self.scene_json),
        ] {
            if slot.get().is_some() {
                formats.push(format);
            }
        }
        formats
    }
}

/// Run the expensive back half of the pipeline for a pattern representative.
pub fn compile_representative(fingerprinted: FingerprintedQuery) -> CompiledEntry {
    // Cache misses are the only place the canonical pattern key is
    // materialized and rendered — the hit path hashes a reused buffer.
    let pattern = fingerprinted.pattern_key().render();
    let FingerprintedQuery {
        prepared,
        fingerprint,
    } = fingerprinted;
    let qv = prepared.complete();
    CompiledEntry {
        fingerprint,
        hex: fingerprint.to_string().into(),
        pattern,
        representative: qv.sql.as_str().into(),
        qv,
        scene: OnceLock::new(),
        ascii: OnceLock::new(),
        dot: OnceLock::new(),
        svg: OnceLock::new(),
        reading: OnceLock::new(),
        scene_json: OnceLock::new(),
        samples: OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_sql;
    use queryvis::QueryVisOptions;

    fn compiled(sql: &str) -> CompiledEntry {
        compile_representative(fingerprint_sql(sql, QueryVisOptions::default()).unwrap())
    }

    #[test]
    fn artifacts_render_lazily_and_memoize() {
        let entry = compiled("SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'");
        assert!(entry.rendered_formats().is_empty());
        let first = Arc::as_ptr(entry.render(Format::Ascii));
        assert_eq!(entry.rendered_formats(), vec![Format::Ascii]);
        let second = Arc::as_ptr(entry.render(Format::Ascii));
        assert_eq!(first, second, "memoized render must be reused");
        assert!(entry.render(Format::Svg).starts_with("<svg"));
        assert!(entry.render(Format::Dot).starts_with("digraph"));
        assert!(entry.render(Format::Reading).starts_with("Return"));
        assert!(entry.render(Format::SceneJson).starts_with("{\"v\":"));
    }

    /// The acceptance property of the scene rearchitecture: an entry
    /// served in all three geometric formats lays out exactly once — the
    /// `OnceLock`ed scene is built by the first format and pointer-shared
    /// by the rest (layout only ever runs inside that scene build).
    #[test]
    fn geometric_formats_share_one_scene() {
        let entry = compiled("SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'");
        assert!(entry.scene.get().is_none(), "no layout before first render");
        entry.render(Format::Ascii);
        let scene = Arc::as_ptr(entry.scene());
        entry.render(Format::Svg);
        entry.render(Format::SceneJson);
        assert_eq!(
            scene,
            Arc::as_ptr(entry.scene()),
            "svg/scene_json re-laid-out instead of sharing the scene"
        );
        // Reading and dot don't need geometry and must not build it
        // eagerly either (checked by construction: they bypass scene()).
        assert_eq!(entry.rendered_formats().len(), 3);
    }

    #[test]
    fn entry_remembers_its_identity() {
        let entry = compiled("SELECT T.a FROM T");
        assert_eq!(entry.representative_sql(), "SELECT T.a FROM T");
        assert!(entry.pattern().starts_with("S["));
        assert!(entry.stats().visual_elements() > 0);
        assert_eq!(
            entry.fingerprint_hex().as_ref(),
            entry.fingerprint().to_string()
        );
        assert_eq!(entry.fingerprint_hex().len(), 32);
    }
}
