//! Compiled cache entries: the diagram plus lazily rendered artifacts.
//!
//! An entry is immutable once built; the rendered artifacts materialize on
//! first request per format behind [`OnceLock`]s, so a pattern that is only
//! ever served as ASCII never pays for SVG layout text, while concurrent
//! renderers of the same entry do the work exactly once. Artifacts are
//! stored as `Arc<str>`: responses share the entry's rendering instead of
//! cloning whole artifact strings per request, so a warm hit copies
//! pointers, not text. The 32-hex-character fingerprint string and the
//! representative's SQL are likewise rendered/shared once per entry.
//!
//! **Representative semantics.** Entries are keyed by canonical-pattern
//! fingerprint, and pattern-equivalent queries (alias renames, predicate
//! reordering, even schema swaps — paper App. G) share one entry. The
//! diagram and artifacts are rendered from the *pattern representative*:
//! the first query of the pattern to be compiled. That is exactly the
//! deduplication the paper licenses — "the visual diagram remains the same
//! for queries with identical logical patterns" — traded at the granularity
//! of whole diagrams, concrete label text included.

use crate::fingerprint::{Fingerprint, FingerprintedQuery};
use crate::protocol::Format;
use queryvis::diagram::DiagramStats;
use queryvis::QueryVis;
use std::sync::{Arc, OnceLock};

/// A compiled pattern: the finished pipeline result for the pattern's
/// representative query, with per-format render caches.
pub struct CompiledEntry {
    fingerprint: Fingerprint,
    /// The fingerprint as 32 lowercase hex characters, rendered once at
    /// entry construction and shared by every response.
    hex: Arc<str>,
    pattern: String,
    /// The representative's SQL, shared (not cloned) into disclosing
    /// responses.
    representative: Arc<str>,
    qv: QueryVis,
    ascii: OnceLock<Arc<str>>,
    dot: OnceLock<Arc<str>>,
    svg: OnceLock<Arc<str>>,
    reading: OnceLock<Arc<str>>,
}

impl CompiledEntry {
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The fingerprint's fixed-width hex rendering, shared per entry.
    pub fn fingerprint_hex(&self) -> &Arc<str> {
        &self.hex
    }

    /// The canonical pattern string this entry serves.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The SQL of the representative query the artifacts were rendered from.
    pub fn representative_sql(&self) -> &str {
        &self.representative
    }

    /// The representative SQL as a shareable `Arc<str>` (for responses
    /// that disclose it without copying).
    pub fn representative_shared(&self) -> &Arc<str> {
        &self.representative
    }

    /// Mark/channel statistics of the diagram (§4.8).
    pub fn stats(&self) -> DiagramStats {
        self.qv.stats()
    }

    /// Render (or fetch the memoized) artifact for one format. The
    /// returned `Arc` is shared: responses clone the pointer, never the
    /// text.
    pub fn render(&self, format: Format) -> &Arc<str> {
        match format {
            Format::Ascii => self.ascii.get_or_init(|| self.qv.ascii().into()),
            Format::Dot => self.dot.get_or_init(|| self.qv.dot().into()),
            Format::Svg => self.svg.get_or_init(|| self.qv.svg().into()),
            Format::Reading => self.reading.get_or_init(|| self.qv.reading().into()),
        }
    }

    /// Which formats have been rendered so far (observability only).
    pub fn rendered_formats(&self) -> Vec<Format> {
        let mut formats = Vec::new();
        for (format, slot) in [
            (Format::Ascii, &self.ascii),
            (Format::Dot, &self.dot),
            (Format::Svg, &self.svg),
            (Format::Reading, &self.reading),
        ] {
            if slot.get().is_some() {
                formats.push(format);
            }
        }
        formats
    }
}

/// Run the expensive back half of the pipeline for a pattern representative.
pub fn compile_representative(fingerprinted: FingerprintedQuery) -> CompiledEntry {
    // Cache misses are the only place the canonical pattern key is
    // materialized and rendered — the hit path hashes a reused buffer.
    let pattern = fingerprinted.pattern_key().render();
    let FingerprintedQuery {
        prepared,
        fingerprint,
    } = fingerprinted;
    let qv = prepared.complete();
    CompiledEntry {
        fingerprint,
        hex: fingerprint.to_string().into(),
        pattern,
        representative: qv.sql.as_str().into(),
        qv,
        ascii: OnceLock::new(),
        dot: OnceLock::new(),
        svg: OnceLock::new(),
        reading: OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_sql;
    use queryvis::QueryVisOptions;

    fn compiled(sql: &str) -> CompiledEntry {
        compile_representative(fingerprint_sql(sql, QueryVisOptions::default()).unwrap())
    }

    #[test]
    fn artifacts_render_lazily_and_memoize() {
        let entry = compiled("SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'");
        assert!(entry.rendered_formats().is_empty());
        let first = Arc::as_ptr(entry.render(Format::Ascii));
        assert_eq!(entry.rendered_formats(), vec![Format::Ascii]);
        let second = Arc::as_ptr(entry.render(Format::Ascii));
        assert_eq!(first, second, "memoized render must be reused");
        assert!(entry.render(Format::Svg).starts_with("<svg"));
        assert!(entry.render(Format::Dot).starts_with("digraph"));
        assert!(entry.render(Format::Reading).starts_with("Return"));
    }

    #[test]
    fn entry_remembers_its_identity() {
        let entry = compiled("SELECT T.a FROM T");
        assert_eq!(entry.representative_sql(), "SELECT T.a FROM T");
        assert!(entry.pattern().starts_with("S["));
        assert!(entry.stats().visual_elements() > 0);
        assert_eq!(
            entry.fingerprint_hex().as_ref(),
            entry.fingerprint().to_string()
        );
        assert_eq!(entry.fingerprint_hex().len(), 32);
    }
}
