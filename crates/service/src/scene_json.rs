//! `scene_json` — the machine-readable diagram export.
//!
//! Serializes the [`Scene`] display-list IR as one JSON document: the
//! format a browser client renders from without running any layout of
//! its own. The writer is the service's own [`json`](crate::json) layer
//! (`escape_into` + digit writers — no serde in the image), and the
//! output parses back with [`json::parse`](crate::json::parse), which CI
//! verifies over the whole paper corpus.
//!
//! Document shape (coordinates in diagram px, `y` growing downward):
//!
//! ```json
//! {"v": 1, "w": 640, "h": 480, "union_all": false,
//!  "badges": [{"y": 214, "label": "UNION"}],
//!  "branches": [
//!    {"dy": 0, "w": 640, "h": 200, "marks": [
//!      {"t": "rect", "role": "header", "class": "header_table",
//!       "x": 20, "y": 20, "w": 120, "h": 24, "r": 0},
//!      {"t": "text", "role": "title", "class": "header_table",
//!       "x": 80, "y": 32, "s": "Likes"},
//!      {"t": "edge", "kind": "directed", "x1": 140, "y1": 54,
//!       "x2": 230, "y2": 54, "label": "<>", "lx": 185, "ly": 48,
//!       "from": "F.bar", "to": "S.bar"}
//!    ]}
//!  ]}
//! ```
//!
//! Mark order within a branch is paint order; a client that draws marks
//! in sequence reproduces the SVG backend's stacking.

use crate::json::{escape_into, write_u64};
use queryvis::layout::{
    EdgeKind, EdgeMark, Mark, MarkRole, RectMark, Scene, StyleClass, TextMark, TextRole,
};

/// Schema version of the scene_json artifact document.
const VERSION: u64 = 1;

/// Schema version of the session-path document: identical to v1 plus a
/// stable `"id"` per mark — the identity scene-diff patch ops address.
const VERSION_SESSION: u64 = 2;

fn class_name(class: StyleClass) -> &'static str {
    match class {
        StyleClass::HeaderTable => "header_table",
        StyleClass::HeaderSelect => "header_select",
        StyleClass::Row => "row",
        StyleClass::RowSelection => "row_selection",
        StyleClass::RowGroup => "row_group",
        StyleClass::BoxNotExists => "box_not_exists",
        StyleClass::BoxForAll => "box_for_all",
        StyleClass::BoxForAllInner => "box_for_all_inner",
        StyleClass::Frame => "frame",
    }
}

fn role_name(role: MarkRole) -> &'static str {
    match role {
        MarkRole::Frame => "frame",
        MarkRole::Header => "header",
        MarkRole::Row => "row",
        MarkRole::QuantifierBox => "quantifier_box",
    }
}

fn text_role_name(role: TextRole) -> &'static str {
    match role {
        TextRole::Title => "title",
        TextRole::TitleAnnotation => "title_annotation",
        TextRole::RowText => "row_text",
        TextRole::EdgeLabel => "edge_label",
    }
}

/// Write an `f64` as a JSON number. Scene coordinates are finite sums of
/// layout constants, so `{}` (shortest round-trip form, no exponent for
/// these magnitudes) is both exact and compact.
fn write_f64(out: &mut String, value: f64) {
    use std::fmt::Write;
    debug_assert!(value.is_finite(), "scene coordinates are finite");
    let _ = write!(out, "{value}");
}

fn write_rect_with(out: &mut String, rect: &RectMark, with_id: bool) {
    out.push_str("{\"t\":\"rect\",");
    if with_id {
        out.push_str("\"id\":");
        write_u64(out, u64::from(rect.id));
        out.push(',');
    }
    out.push_str("\"role\":");
    escape_into(out, role_name(rect.role));
    out.push_str(",\"class\":");
    escape_into(out, class_name(rect.class));
    out.push_str(",\"x\":");
    write_f64(out, rect.rect.x);
    out.push_str(",\"y\":");
    write_f64(out, rect.rect.y);
    out.push_str(",\"w\":");
    write_f64(out, rect.rect.w);
    out.push_str(",\"h\":");
    write_f64(out, rect.rect.h);
    out.push_str(",\"r\":");
    write_f64(out, rect.radius);
    out.push('}');
}

fn write_text_with(out: &mut String, text: &TextMark, with_id: bool) {
    out.push_str("{\"t\":\"text\",");
    if with_id {
        out.push_str("\"id\":");
        write_u64(out, u64::from(text.id));
        out.push(',');
    }
    out.push_str("\"role\":");
    escape_into(out, text_role_name(text.role));
    out.push_str(",\"class\":");
    escape_into(out, class_name(text.class));
    out.push_str(",\"x\":");
    write_f64(out, text.anchor.x);
    out.push_str(",\"y\":");
    write_f64(out, text.anchor.y);
    out.push_str(",\"s\":");
    escape_into(out, &text.text);
    out.push('}');
}

fn write_edge_with(out: &mut String, edge: &EdgeMark, with_id: bool) {
    out.push_str("{\"t\":\"edge\",");
    if with_id {
        out.push_str("\"id\":");
        write_u64(out, u64::from(edge.id));
        out.push(',');
    }
    out.push_str("\"kind\":");
    escape_into(
        out,
        match edge.kind {
            EdgeKind::Directed => "directed",
            EdgeKind::Undirected => "undirected",
        },
    );
    out.push_str(",\"x1\":");
    write_f64(out, edge.from.x);
    out.push_str(",\"y1\":");
    write_f64(out, edge.from.y);
    out.push_str(",\"x2\":");
    write_f64(out, edge.to.x);
    out.push_str(",\"y2\":");
    write_f64(out, edge.to.y);
    if let Some(label) = &edge.label {
        out.push_str(",\"label\":");
        escape_into(out, label);
        out.push_str(",\"lx\":");
        write_f64(out, edge.label_pos.x);
        out.push_str(",\"ly\":");
        write_f64(out, edge.label_pos.y);
    }
    out.push_str(",\"from\":");
    escape_into(out, &edge.from_text);
    out.push_str(",\"to\":");
    escape_into(out, &edge.to_text);
    out.push('}');
}

/// Serialize one mark as a v2 (id-carrying) JSON object — shared with the
/// scene-diff writer's `add` ops so patched and full documents agree byte
/// for byte.
pub(crate) fn write_mark_v2(out: &mut String, mark: &Mark) {
    match mark {
        Mark::Rect(rect) => write_rect_with(out, rect, true),
        Mark::Text(text) => write_text_with(out, text, true),
        Mark::Edge(edge) => write_edge_with(out, edge, true),
    }
}

/// Serialize a scene into `out` (no trailing newline).
pub fn write_scene_json(out: &mut String, scene: &Scene) {
    write_scene_json_with(out, scene, VERSION, false)
}

/// Serialize the session-path v2 document: v1 plus `"id"` per mark.
pub fn write_scene_json_v2(out: &mut String, scene: &Scene) {
    write_scene_json_with(out, scene, VERSION_SESSION, true)
}

fn write_scene_json_with(out: &mut String, scene: &Scene, version: u64, with_ids: bool) {
    out.push_str("{\"v\":");
    write_u64(out, version);
    out.push_str(",\"w\":");
    write_f64(out, scene.width);
    out.push_str(",\"h\":");
    write_f64(out, scene.height);
    out.push_str(",\"union_all\":");
    out.push_str(if scene.union_all { "true" } else { "false" });
    out.push_str(",\"badges\":[");
    for (i, badge) in scene.badges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"y\":");
        write_f64(out, badge.y_mid);
        out.push_str(",\"label\":");
        escape_into(out, &badge.label);
        out.push('}');
    }
    out.push_str("],\"branches\":[");
    for (i, branch) in scene.branches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"dy\":");
        write_f64(out, branch.dy);
        out.push_str(",\"w\":");
        write_f64(out, branch.width);
        out.push_str(",\"h\":");
        write_f64(out, branch.height);
        out.push_str(",\"marks\":[");
        for (j, mark) in branch.marks.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match mark {
                Mark::Rect(rect) => write_rect_with(out, rect, with_ids),
                Mark::Text(text) => write_text_with(out, text, with_ids),
                Mark::Edge(edge) => write_edge_with(out, edge, with_ids),
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// [`write_scene_json`] into a fresh string.
pub fn scene_json(scene: &Scene) -> String {
    let mut out = String::with_capacity(4096);
    write_scene_json(&mut out, scene);
    out
}

/// [`write_scene_json_v2`] into a fresh string.
pub fn scene_json_v2(scene: &Scene) -> String {
    let mut out = String::with_capacity(4096);
    write_scene_json_v2(&mut out, scene);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use queryvis::QueryVis;

    fn scene_of(sql: &str) -> String {
        scene_json(&QueryVis::from_sql(sql).unwrap().scene())
    }

    #[test]
    fn output_parses_with_own_parser() {
        let text = scene_of(
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)",
        );
        let doc = json::parse(&text).expect("scene_json parses");
        assert_eq!(doc.get("v").and_then(Json::as_u64), Some(1));
        let branches = doc.get("branches").and_then(Json::as_arr).unwrap();
        assert_eq!(branches.len(), 1);
        let marks = branches[0].get("marks").and_then(Json::as_arr).unwrap();
        assert!(marks.len() > 5);
        // A frame, a header, a title, and an edge with resolved endpoints.
        let kinds: Vec<&str> = marks
            .iter()
            .filter_map(|m| m.get("t").and_then(Json::as_str))
            .collect();
        assert!(kinds.contains(&"rect") && kinds.contains(&"text") && kinds.contains(&"edge"));
        assert!(marks.iter().any(|m| {
            m.get("from").and_then(Json::as_str) == Some("F.bar")
                && m.get("to").and_then(Json::as_str) == Some("S.bar")
        }));
    }

    #[test]
    fn union_scene_exports_badges_and_offsets() {
        let text = scene_of(
            "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' \
             UNION ALL SELECT L.person FROM Likes L WHERE L.beer = 'IPA'",
        );
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("union_all"), Some(&Json::Bool(true)));
        let badges = doc.get("badges").and_then(Json::as_arr).unwrap();
        assert_eq!(badges.len(), 1);
        assert_eq!(
            badges[0].get("label").and_then(Json::as_str),
            Some("UNION ALL")
        );
        let branches = doc.get("branches").and_then(Json::as_arr).unwrap();
        assert_eq!(branches.len(), 2);
        let dy = |i: usize| match branches[i].get("dy") {
            Some(Json::Int(n)) => *n as f64,
            Some(Json::Num(n)) => *n,
            other => panic!("dy missing: {other:?}"),
        };
        assert_eq!(dy(0), 0.0);
        assert!(dy(1) > 0.0);
    }

    #[test]
    fn strings_with_quotes_and_unicode_round_trip() {
        let text = scene_of(r#"SELECT B.bid FROM Boat B WHERE B.name = 'the "Žatec"'"#);
        let doc = json::parse(&text).expect("escaped output parses");
        let branches = doc.get("branches").and_then(Json::as_arr).unwrap();
        let marks = branches[0].get("marks").and_then(Json::as_arr).unwrap();
        assert!(marks.iter().any(|m| {
            m.get("s")
                .and_then(Json::as_str)
                .is_some_and(|s| s.contains(r#"name = 'the "Žatec"'"#))
        }));
    }
}
