//! A minimal JSON reader/writer for the JSON-lines protocol.
//!
//! The workspace builds without crates.io access, so the service carries its
//! own ~200-line JSON implementation instead of serde. It supports the full
//! JSON grammar the protocol needs: objects, arrays, strings (with escapes
//! and `\uXXXX`, including surrogate pairs), numbers, booleans, and null.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact (ids can exceed
    /// the 2^53 range where `f64` loses integer precision).
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered, so serialization is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer. Non-negative integer
    /// literals parse into [`Json::Int`] and stay exact up to `u64::MAX`;
    /// a float is accepted only while exactly representable (below 2^53),
    /// since silently returning a rounded id would break the protocol's
    /// request/response matching contract.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_991.0; // 2^53 − 1
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. The protocol needs depth
/// 3; the bound exists so a hostile input line degrades into a per-line
/// error response instead of a recursion-driven stack overflow that takes
/// the whole service down.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting deeper than 128 levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{literal}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    // Plain non-negative integer literals stay exact as u64; everything
    // else (sign, fraction, exponent, overflow) goes through f64.
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = *bytes
                    .get(*pos)
                    .ok_or_else(|| err(*pos, "dangling escape"))?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let unit = parse_hex4(bytes, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a `\uXXXX` low surrogate must follow.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(err(*pos, "invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                            } else {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err(err(*pos, "lone low surrogate"));
                        } else {
                            char::from_u32(unit).ok_or_else(|| err(*pos, "invalid codepoint"))?
                        };
                        out.push(ch);
                    }
                    other => {
                        return Err(err(*pos, &format!("unknown escape `\\{}`", other as char)))
                    }
                }
            }
            Some(&b) if b < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Copy the whole unescaped run at once (the delimiters `"`,
                // backslash, and control bytes are ASCII, so a run boundary
                // is always a UTF-8 character boundary). One validation per
                // run keeps parsing O(n) on large strings.
                let run_start = *pos;
                while *pos < bytes.len()
                    && bytes[*pos] != b'"'
                    && bytes[*pos] != b'\\'
                    && bytes[*pos] >= 0x20
                {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[run_start..*pos])
                        .map_err(|_| err(run_start, "invalid UTF-8"))?,
                );
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let text = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
    let unit = u32::from_str_radix(text, 16).map_err(|_| err(*pos, "malformed \\u escape"))?;
    *pos += 4;
    Ok(unit)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

/// Write a string as a quoted JSON value into `out`, escaping as needed.
///
/// Works in unescaped *runs*: the scan finds the next byte needing an
/// escape (all such bytes are ASCII, so run boundaries are always UTF-8
/// character boundaries) and copies everything before it in one
/// `push_str`. Rendered artifacts are kilobytes of mostly clean text, so
/// this is the serializer's inner loop. Public (`escape_into`) because
/// `Response::write_json_line` serializes directly into a caller buffer
/// without building a [`Json`] tree.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut run_start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[run_start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                c => {
                    const HEX: &[u8; 16] = b"0123456789abcdef";
                    out.push_str("\\u00");
                    out.push(HEX[(c >> 4) as usize] as char);
                    out.push(HEX[(c & 0xf) as usize] as char);
                }
            }
            run_start = i + 1;
        }
        i += 1;
    }
    out.push_str(&s[run_start..]);
    out.push('"');
}

/// Write a decimal `u64` into `out` without allocating.
pub fn write_u64(out: &mut String, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

impl fmt::Display for Json {
    /// Compact single-line serialization (safe for JSON-lines framing:
    /// newlines inside strings are escaped).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => write_u64(out, *n),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literal; `format!` would
                    // emit `inf`/`NaN` and corrupt the document.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request_shape() {
        let line = r#"{"id": 3, "sql": "SELECT \"x\" FROM T", "formats": ["ascii", "svg"]}"#;
        let value = parse(line).unwrap();
        assert_eq!(value.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(
            value.get("sql").unwrap().as_str(),
            Some("SELECT \"x\" FROM T")
        );
        assert_eq!(value.get("formats").unwrap().as_arr().unwrap().len(), 2);
        // Serialize → parse → identical tree.
        assert_eq!(parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn escapes_and_unicode() {
        let value = parse(r#""a\n\tA😀b""#).unwrap();
        assert_eq!(value.as_str(), Some("a\n\tA😀b"));
        let reser = value.to_string();
        assert!(!reser.contains('\n'), "newline must stay escaped: {reser}");
        assert_eq!(parse(&reser).unwrap(), value);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::Int(42).to_string(), "42");
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(
            parse(&Json::Num(0.25).to_string()).unwrap(),
            Json::Num(0.25)
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null_and_round_trip() {
        // `format!("{n}")` renders `inf`/`NaN`, which are not JSON: the
        // serialized document would fail to parse. Non-finite must map to
        // `null`.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let doc = Json::Obj(vec![("v".to_string(), Json::Num(bad))]).to_string();
            assert_eq!(doc, r#"{"v":null}"#);
            assert!(
                parse(&doc).is_ok(),
                "serializer emitted invalid JSON: {doc}"
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("\"\u{1}\"").is_err());
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep_ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(50_000), "]".repeat(50_000));
        let e = parse(&too_deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let unclosed = "[".repeat(50_000);
        assert!(parse(&unclosed).is_err());
    }

    #[test]
    fn integer_ids_are_exact_up_to_u64_max() {
        assert_eq!(
            parse("9007199254740993").unwrap().as_u64(),
            Some((1 << 53) + 1),
            "integer literals must not round through f64"
        );
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            parse("18446744073709551615").unwrap().to_string(),
            "18446744073709551615"
        );
        // Beyond u64 falls back to f64 and is rejected as an id.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        // Exactly-representable floats are still accepted.
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }

    #[test]
    fn long_strings_parse_quickly() {
        // Regression guard for the O(n^2) per-character validation the
        // string parser used to do.
        let big = "x".repeat(2_000_000);
        let line = format!("{{\"sql\": \"{big}\"}}");
        let start = std::time::Instant::now();
        let parsed = parse(&line).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        assert_eq!(
            parsed.get("sql").unwrap().as_str().map(str::len),
            Some(2_000_000)
        );
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[{"b":null},{"c":[true,false,1.5]}]}"#).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
