//! Epoch-based reclamation for the lock-free read paths.
//!
//! The L2 cache and the L1 memo publish `Arc`-owned entries through
//! atomic pointers that readers probe **without locking**. A reader that
//! has just loaded such a pointer holds no reference count yet — between
//! its load and its `Arc::increment_strong_count` the writer may have
//! unlinked the entry and dropped the owning `Arc`. This module closes
//! that window with the classic epoch scheme:
//!
//! * Every reader thread owns a [`PinSlot`] — one cache line holding the
//!   era the thread is currently reading under (`IDLE` when it isn't).
//! * A global era counter advances when a writer unlinks something.
//! * Unlinked values are not dropped; they are **retired** into a
//!   [`Limbo`] tagged with the era the unlink advanced to. A retired
//!   value is freed only once every pinned slot has moved to that era or
//!   past it — at which point no reader can still be holding a pointer
//!   loaded before the unlink.
//!
//! ## Why a pinned reader's pointer stays valid
//!
//! The pin protocol is a validated store: the reader loads the era,
//! publishes it in its slot, and re-checks the era (all `SeqCst`). If the
//! re-check passes, the publication is ordered before any later era
//! advance in the single total order of `SeqCst` operations — so a writer
//! that advances to era `R` and then scans the slots **must** observe the
//! pin. The pinned era `e < R` keeps every value retired at era `> e` in
//! limbo. Conversely, a reader whose pin validates at era `e ≥ R` read
//! the counter *after* the advance; the advance is a `SeqCst` RMW, so the
//! writer's unlink (sequenced before it) happens-before everything the
//! reader does after validation — such a reader can only see the new
//! table state and never loads the retired pointer at all. Either way, a
//! pointer a pinned reader actually loaded is backed by an `Arc` that is
//! alive in the authoritative map or in limbo, and
//! `Arc::increment_strong_count` on it is sound.
//!
//! Slots are allocated once per thread (leaked, one cache line each) and
//! recycled through a free list when the thread exits, so short-lived
//! benchmark/test threads do not grow the registry without bound. The
//! registry itself is an append-only lock-free list — writers scanning
//! for the minimum active era never take a lock either (only slot
//! *acquisition*, a once-per-thread event, does).

use std::cell::Cell;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// Slot value meaning "this thread is not reading".
const IDLE: u64 = u64::MAX;

/// The global era. Starts at 1 so 0 can never be confused with a live
/// retirement tag.
static ERA: AtomicU64 = AtomicU64::new(1);

/// Head of the append-only registry of every slot ever allocated.
static SLOTS: AtomicPtr<PinSlot> = AtomicPtr::new(ptr::null_mut());

/// Slots returned by exited threads, ready for reuse.
static FREE: Mutex<Vec<&'static PinSlot>> = Mutex::new(Vec::new());

/// One reader thread's published era. Padded to a cache line so writer
/// scans and neighbor pins never false-share.
#[repr(align(64))]
pub struct PinSlot {
    era: AtomicU64,
    /// Intrusive link of the append-only registry; written once before
    /// the slot is published, never changed after.
    next: AtomicPtr<PinSlot>,
}

fn acquire_slot() -> &'static PinSlot {
    if let Some(slot) = FREE.lock().expect("epoch free list poisoned").pop() {
        return slot;
    }
    let slot: &'static PinSlot = Box::leak(Box::new(PinSlot {
        era: AtomicU64::new(IDLE),
        next: AtomicPtr::new(ptr::null_mut()),
    }));
    let mut head = SLOTS.load(Ordering::Acquire);
    loop {
        slot.next.store(head, Ordering::Relaxed);
        match SLOTS.compare_exchange_weak(
            head,
            slot as *const PinSlot as *mut PinSlot,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return slot,
            Err(h) => head = h,
        }
    }
}

/// Owns the thread's slot for the thread's lifetime; hands it back (idle)
/// when the thread exits.
struct SlotHandle(&'static PinSlot);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.0.era.store(IDLE, Ordering::SeqCst);
        if let Ok(mut free) = FREE.lock() {
            free.push(self.0);
        }
    }
}

thread_local! {
    static SLOT: SlotHandle = SlotHandle(acquire_slot());
    /// Pin nesting depth: only the outermost guard publishes and clears.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An active read-side pin. While any guard is alive on this thread,
/// every value retired *after* the pin was taken stays allocated.
pub struct PinGuard {
    slot: &'static PinSlot,
    /// `!Send`/`!Sync`: the guard manipulates this thread's depth cell.
    _not_send: PhantomData<*const ()>,
}

/// Pin the current thread at the current era. Reentrant: nested pins
/// share the outermost publication.
#[inline]
pub fn pin() -> PinGuard {
    let slot = SLOT.with(|h| h.0);
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    if depth == 0 {
        // Validated publication: retry until the era we published is
        // still current, so a concurrent advance can never miss the pin
        // (see the module docs for the ordering argument).
        loop {
            let era = ERA.load(Ordering::SeqCst);
            slot.era.store(era, Ordering::SeqCst);
            if ERA.load(Ordering::SeqCst) == era {
                break;
            }
        }
    }
    PinGuard {
        slot,
        _not_send: PhantomData,
    }
}

impl Drop for PinGuard {
    #[inline]
    fn drop(&mut self) {
        let depth = DEPTH.with(|d| {
            let depth = d.get() - 1;
            d.set(depth);
            depth
        });
        if depth == 0 {
            self.slot.era.store(IDLE, Ordering::SeqCst);
        }
    }
}

/// Advance the global era, returning the new value. Called by writers
/// after unlinking a value from a read-visible structure.
#[inline]
pub fn advance() -> u64 {
    ERA.fetch_add(1, Ordering::SeqCst) + 1
}

/// The smallest era any thread is currently pinned at (`u64::MAX` when no
/// thread is pinned). Values retired at an era `≤` this are unreachable.
pub fn min_active() -> u64 {
    let mut min = u64::MAX;
    let mut cursor = SLOTS.load(Ordering::SeqCst);
    while let Some(slot) = unsafe { cursor.as_ref() } {
        min = min.min(slot.era.load(Ordering::SeqCst));
        cursor = slot.next.load(Ordering::Acquire);
    }
    min
}

/// A writer-owned graveyard of unlinked values (lives inside the shard's
/// write mutex, so it needs no synchronization of its own).
pub struct Limbo<T> {
    items: Vec<(u64, T)>,
}

impl<T> Default for Limbo<T> {
    fn default() -> Self {
        Limbo { items: Vec::new() }
    }
}

impl<T> Limbo<T> {
    /// Retire a value just unlinked from the read-visible structure:
    /// advance the era and park the value until no pin predates the
    /// advance. Also drains whatever older retirees became free.
    pub fn retire(&mut self, value: T) {
        let era = advance();
        self.items.push((era, value));
        self.reclaim();
    }

    /// Drop every parked value whose retirement era no active pin
    /// precedes. Values retired at era `r` free once `min_active() ≥ r`:
    /// a pin at `≥ r` validated after the advance and therefore after the
    /// unlink (see module docs).
    pub fn reclaim(&mut self) {
        if self.items.is_empty() {
            return;
        }
        let min = min_active();
        self.items.retain(|(era, _)| min < *era);
    }

    /// Parked values (tests / telemetry).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Counts drops so tests can observe reclamation.
    struct DropBomb(Arc<AtomicUsize>);

    impl Drop for DropBomb {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn unpinned_retirees_free_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut limbo = Limbo::default();
        limbo.retire(DropBomb(Arc::clone(&drops)));
        // No pin is active on any thread touching this limbo; the next
        // retire (or explicit reclaim) frees it. Other test threads may
        // be pinned concurrently, so poke until it drains.
        for _ in 0..1000 {
            limbo.reclaim();
            if limbo.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(limbo.is_empty());
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn a_pin_holds_later_retirees_until_released() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut limbo: Limbo<DropBomb> = Limbo::default();
        let guard = pin();
        limbo.retire(DropBomb(Arc::clone(&drops)));
        limbo.reclaim();
        assert_eq!(limbo.len(), 1, "pinned reader must park the retiree");
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(guard);
        for _ in 0..1000 {
            limbo.reclaim();
            if limbo.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_share_one_publication() {
        let outer = pin();
        let inner = pin();
        drop(outer);
        // Still pinned: a retiree parked now must survive.
        let drops = Arc::new(AtomicUsize::new(0));
        let mut limbo = Limbo::default();
        limbo.retire(DropBomb(Arc::clone(&drops)));
        limbo.reclaim();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(inner);
        for _ in 0..1000 {
            limbo.reclaim();
            if limbo.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn advance_is_monotonic_across_threads() {
        let eras: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..100).map(|_| advance()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: std::collections::HashSet<u64> = eras.iter().copied().collect();
        assert_eq!(unique.len(), 400, "every advance returns a distinct era");
    }

    #[test]
    fn concurrent_pins_keep_every_inflight_retiree() {
        // Writers retire tagged values while readers pin and immediately
        // unpin; nothing should ever be freed while a pin that predates
        // its retirement is still live. The DropBomb counter proves every
        // value is freed exactly once by the end.
        let drops = Arc::new(AtomicUsize::new(0));
        let total = 2_000;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let drops = Arc::clone(&drops);
                scope.spawn(move || {
                    let mut limbo = Limbo::default();
                    for _ in 0..total / 2 {
                        limbo.retire(DropBomb(Arc::clone(&drops)));
                    }
                    while !limbo.is_empty() {
                        limbo.reclaim();
                        std::thread::yield_now();
                    }
                });
            }
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..2_000 {
                        let _guard = pin();
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(drops.load(Ordering::SeqCst), total);
    }
}
