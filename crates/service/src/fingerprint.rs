//! Canonical-pattern fingerprints: the cache key of the serving layer.
//!
//! QueryVis's key observation (paper §1.1, App. G; also "Principles of
//! Query Visualization" and "On the Reasonable Effectiveness of Relational
//! Diagrams") is that the diagram is a function of the query's *logical
//! pattern*, not its text: alias renames, predicate reordering, sibling
//! subquery reordering, and even schema swaps leave the pattern — and
//! therefore the diagram shape — unchanged. A serving layer can exploit
//! that: canonicalize, hash, and deduplicate compilation across every
//! textually-distinct query that shares a pattern.
//!
//! The fingerprint is a 128-bit FNV-1a hash of the canonical pattern
//! **token stream** from [`queryvis::PatternKey`]: with interned names the
//! canonicalization is id arithmetic, and the hash covers 4-byte `u32`
//! symbol-erased tokens instead of a re-built canonical string — the
//! always-executed half of every request got cheaper with the IR refactor.
//! FNV-1a is fully specified (no per-process seeding, unlike
//! `DefaultHasher`), and the token stream is independent of interner id
//! assignment order (names are erased to dense first-use indices), so
//! fingerprints are stable across runs, platforms, and releases of this
//! workspace — safe to persist or shard on. At 128 bits, accidental
//! collisions are out of reach for any realistic corpus; the
//! adversarial-collision caveats of the canonicalization itself are
//! documented in `queryvis::pattern`.

use queryvis::{PatternKey, PreparedQuery, QueryVisError, QueryVisOptions};
use queryvis_telemetry::StageDef;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// Canonical-token emission + 128-bit hashing (DESIGN.md §6). Parse and
/// lowering inside `QueryVis::prepare` carry their own stage spans.
static STAGE_CANONICALIZE: StageDef = StageDef::new("stage.canonicalize");

thread_local! {
    /// Per-thread canonical token-stream scratch: fingerprinting a batch
    /// reuses one `Vec<u32>` instead of allocating a stream per query.
    static PATTERN_TOKENS: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// A stable 128-bit cache key identifying a canonical query pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fingerprint {
    /// Hash a canonical pattern string (FNV-1a, 128-bit). Retained for
    /// diagnostics and tests; the serving path hashes the id-based token
    /// stream via [`Fingerprint::of_key`].
    pub fn of_pattern(pattern: &str) -> Fingerprint {
        let mut hash = FNV128_OFFSET;
        for byte in pattern.as_bytes() {
            hash ^= u128::from(*byte);
            hash = hash.wrapping_mul(FNV128_PRIME);
        }
        Fingerprint(hash)
    }

    /// Hash a canonical pattern key (FNV-1a over the `u32` token stream).
    pub fn of_key(key: &PatternKey) -> Fingerprint {
        Fingerprint(key.fingerprint128())
    }

    /// The shard index for this fingerprint given a shard count.
    ///
    /// Folds the high half into the low half before reducing — FNV-1a's
    /// high bits mix slowly on short inputs, and `shards` need not be a
    /// power of two.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        let folded = (self.0 as u64) ^ ((self.0 >> 64) as u64);
        (folded % shards as u64) as usize
    }
}

impl fmt::Display for Fingerprint {
    /// Fixed-width lowercase hex — 32 characters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A request that has passed the front half of the pipeline and knows its
/// cache key. Produced by [`fingerprint_sql`].
#[derive(Debug, Clone)]
pub struct FingerprintedQuery {
    pub prepared: PreparedQuery,
    pub fingerprint: Fingerprint,
}

impl FingerprintedQuery {
    /// The canonical pattern key behind the fingerprint, recomputed from
    /// the prepared logic tree. The hot path never materializes the key —
    /// [`fingerprint_sql`] hashes the token stream out of a reused buffer —
    /// so callers that want the key itself (cache-miss pattern rendering,
    /// tests) rebuild it here, off the hit path.
    pub fn pattern_key(&self) -> PatternKey {
        self.prepared.pattern_key()
    }
}

/// Parse + translate + canonicalize + hash one SQL string.
///
/// This is the always-executed part of serving a request that the L1 text
/// memo cannot short-circuit; the expensive back half (diagram build,
/// layout, rendering) only runs on cache misses. No canonical pattern
/// *string* — and no canonical token `Vec` — is built here: the tokens go
/// into a per-thread scratch buffer and only their 128-bit hash survives.
pub fn fingerprint_sql(
    sql: &str,
    options: impl Into<Arc<QueryVisOptions>>,
) -> Result<FingerprintedQuery, QueryVisError> {
    let prepared = queryvis::QueryVis::prepare(sql, options)?;
    Ok(fingerprint_prepared(prepared))
}

/// Canonicalize + hash an already-prepared query — the incremental
/// session path, which reaches a [`PreparedQuery`] without re-lexing (and
/// on fragment splices without re-parsing sibling `UNION` branches) and
/// joins the standard pipeline here. Byte-identical to what
/// [`fingerprint_sql`] computes for the same text.
pub fn fingerprint_prepared(prepared: PreparedQuery) -> FingerprintedQuery {
    let _span = STAGE_CANONICALIZE.span();
    let fingerprint = PATTERN_TOKENS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut tokens) => {
            // Union/OR-split queries canonicalize across all branches
            // (order-canonicalized); single-block queries produce exactly
            // the legacy per-tree stream.
            prepared.pattern_tokens_into(&mut tokens);
            Fingerprint(PatternKey::fingerprint128_of(&tokens))
        }
        // Re-entrant fingerprinting on this thread (not a pipeline path):
        // fall back to a one-off key.
        Err(_) => Fingerprint::of_key(&prepared.pattern_key()),
    });
    FingerprintedQuery {
        prepared,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(sql: &str) -> Fingerprint {
        fingerprint_sql(sql, QueryVisOptions::default())
            .unwrap()
            .fingerprint
    }

    #[test]
    fn stable_across_calls_and_known_value() {
        // FNV-1a test vector: hashing the empty string yields the offset
        // basis, so the constants are wired correctly.
        assert_eq!(Fingerprint::of_pattern("").0, FNV128_OFFSET);
        assert_eq!(fp("SELECT T.a FROM T"), fp("SELECT T.a FROM T"));
    }

    #[test]
    fn alias_renames_collide_on_purpose() {
        let a = fp("SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'");
        let b = fp("SELECT X.person FROM Frequents X WHERE X.bar = 'Tap'");
        assert_eq!(a, b);
    }

    #[test]
    fn different_patterns_do_not_collide() {
        let a = fp("SELECT T.a FROM T");
        let b = fp("SELECT T.a FROM T, T u WHERE T.a = u.a");
        assert_ne!(a, b);
    }

    #[test]
    fn shards_cover_the_range() {
        let mut seen = vec![false; 8];
        for i in 0..256u32 {
            let f = Fingerprint::of_pattern(&format!("p{i}"));
            let s = f.shard(8);
            assert!(s < 8);
            seen[s] = true;
        }
        assert!(seen.iter().all(|s| *s), "all shards reachable: {seen:?}");
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let f = Fingerprint(0xabc);
        assert_eq!(f.to_string().len(), 32);
        assert!(f.to_string().ends_with("abc"));
    }
}
