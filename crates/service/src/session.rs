//! Incremental compile sessions: the live-editing front end (DESIGN.md §9).
//!
//! A session pins one SQL buffer server-side. The client opens it once
//! (`{"op":"open","sql":…}`), then streams byte-range edits
//! (`{"op":"edit","session":S,"edits":[{"at":O,"del":N,"ins":T}]}`)
//! instead of re-sending the whole text per keystroke. The server applies
//! each edit to its copy of the buffer and recompiles *incrementally*,
//! descending only as far as the damage requires:
//!
//! 1. **Token splice** ([`queryvis_sql::relex`]): only the damaged window
//!    is re-lexed; the surviving prefix/suffix token runs are spliced
//!    around it with shifted spans.
//! 2. **Tier `tokens`** — if the new token stream has the same kinds and
//!    symbols as the last successfully compiled one ([`same_kinds`]),
//!    the AST is unchanged (the parser is a function of kinds+symbols),
//!    so the cached fingerprint, word count, and compiled entry are
//!    reused outright. Whitespace, comments, and keyword-case edits land
//!    here.
//! 3. **Tier `fragment`** — the token stream is split into per-branch
//!    runs at depth-0 `UNION` connectives. If the branch structure is
//!    unchanged and *exactly one* run's kinds differ, only that branch is
//!    re-parsed ([`parse_branch_tokens`]), lowered, and translated; the
//!    sibling branches' cached (AST, logic-tree) pairs are reused
//!    verbatim and the whole set is reassembled with
//!    [`PreparedQuery::from_parts`].
//! 4. **Tier `full`** — anything structural (branch count, connective
//!    flavor, no previous compile) re-parses the whole expression from
//!    the (still splice-lexed) tokens. Any error inside the fragment
//!    path also falls back here, so error text and acceptance are always
//!    those of the canonical pipeline.
//!
//! **Why fragments reuse parse+translate, not erasures.** The canonical
//! pattern erases names to *query-wide* first-use indices and shares
//! physical-identity information across branches
//! (`PatternKey::of_branches_into` builds one sharing profile over all
//! trees), so per-branch erasure streams are not independent and cannot
//! be spliced soundly. What *is* per-branch is the expensive part —
//! parsing, lowering, and translation. The session reuses those and
//! re-runs the cheap id-arithmetic canonicalization over the real trees,
//! which makes warm≡cold byte-identity hold by construction on every
//! path: each tier hands the standard pipeline the same values a cold
//! compile would compute.
//!
//! The response serves the *pattern representative's* compiled entry —
//! exactly the semantics of a plain request for the same text, including
//! the `representative_sql` disclosure. Scenes are serialized as
//! `scene_json` v2 (stable mark ids); an `edit` response carries either a
//! [`crate::scene_diff`] patch against the session's last acknowledged
//! scene or a full-scene resync when the patch would not be smaller (or
//! the branch structure changed).
//!
//! Sessions are bounded ([`SessionConfig`]): at most `max_sessions` live
//! at once (least-recently-used is evicted), each buffer capped at
//! `max_source_bytes`. A transient parse error keeps the session (and
//! its edited buffer) alive — the next edit may recover — while the last
//! successfully compiled state stays cached, so recovery re-enters the
//! warm tiers directly.

use crate::compile::CompiledEntry;
use crate::fingerprint::{fingerprint_prepared, fingerprint_sql, Fingerprint};
use crate::json::{escape_into, write_u64, Json};
use crate::protocol::{ErrorKind, ServiceError};
use crate::scene_diff::{diff_scenes, write_patch_ops};
use crate::scene_json::scene_json_v2;
use crate::service::DiagramService;
use queryvis::layout::Scene;
use queryvis::PreparedQuery;
use queryvis_logic::LogicTree;
use queryvis_sql::token::{Keyword, Token, TokenKind};
use queryvis_sql::{
    apply_edit, parse_branch_tokens, relex, same_kinds, tokenize_in, Edit, Query, QueryExpr, Relex,
};
use queryvis_telemetry::{CounterDef, GaugeDef};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

// Telemetry mirrors of the per-store counters (the `sessions` stats
// section is the per-instance source of truth).
static C_OPENS: CounterDef = CounterDef::new("session.opens");
static C_EDITS: CounterDef = CounterDef::new("session.edits");
static C_PATH_TOKENS: CounterDef = CounterDef::new("session.path_tokens");
static C_PATH_FRAGMENT: CounterDef = CounterDef::new("session.path_fragment");
static C_PATH_FULL: CounterDef = CounterDef::new("session.path_full");
static C_PARSE_ERRORS: CounterDef = CounterDef::new("session.parse_errors");
static C_PATCHES: CounterDef = CounterDef::new("session.patches");
static C_RESYNCS: CounterDef = CounterDef::new("session.resyncs");
static C_EVICTIONS: CounterDef = CounterDef::new("session.evictions");
static G_OPEN: GaugeDef = GaugeDef::new("session.open");

/// Bounds on per-session server state.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Concurrent open sessions; opening one more evicts the
    /// least-recently-used.
    pub max_sessions: usize,
    /// Byte cap on a session's source buffer; an `open` or `edit` that
    /// would exceed it is refused with a `too_large` error (the buffer is
    /// left unchanged).
    pub max_source_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            max_sessions: 64,
            max_source_bytes: 64 * 1024,
        }
    }
}

/// Counter snapshot for the `sessions` stats section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStatsSnapshot {
    /// Sessions open right now.
    pub open: u64,
    pub opened_total: u64,
    pub closed: u64,
    /// Closed by LRU eviction (a new `open` needed the slot).
    pub evicted: u64,
    /// Closed because their connection went away without `close`.
    pub reaped: u64,
    /// Edit requests applied (each may carry several byte-range edits).
    pub edits: u64,
    /// Edits whose relex spliced surviving token runs (vs full re-lex).
    pub token_splices: u64,
    /// Edits resolved by tier `tokens` (kinds unchanged — total reuse).
    pub path_tokens: u64,
    /// Edits resolved by tier `fragment` (one branch re-derived).
    pub path_fragment: u64,
    /// Edits that fell back to the full pipeline.
    pub path_full: u64,
    /// Edits (or opens) whose buffer does not currently compile.
    pub parse_errors: u64,
    /// Edit responses answered with a scene patch.
    pub patches: u64,
    /// Edit responses answered with a full-scene resync.
    pub resyncs: u64,
}

/// One written `UNION` branch's cached derivation: the pre-lowering AST
/// and the lowered, translated pairs it expands to. Reused verbatim by
/// the fragment tier when the branch's token run is undamaged.
struct BranchFrag {
    ast: Query,
    lowered: Vec<(Query, LogicTree)>,
}

/// The last *successful* compile of a session's buffer. Kept across
/// transient error states so recovery re-enters the warm tiers.
struct Compiled {
    /// Token stream at compile time (spans may be stale relative to the
    /// current buffer; tier comparisons use kinds+symbols only).
    tokens: Vec<Token>,
    fingerprint: Fingerprint,
    words: usize,
    entry: Arc<CompiledEntry>,
    frags: Vec<BranchFrag>,
    union_all: bool,
}

struct Session {
    owner: u64,
    source: String,
    /// Token stream of `source` while it lexes cleanly; dropped on a lex
    /// error (re-derived by the next successful compile).
    tokens: Option<Vec<Token>>,
    compiled: Option<Compiled>,
    /// The scene the client last acknowledged — the base scene diffs are
    /// computed against. Survives error states (the client keeps showing
    /// it) so the recovery response patches from the right base.
    last_scene: Option<Arc<Scene>>,
    last_used: u64,
    edits: u64,
}

struct Inner {
    sessions: HashMap<u64, Session>,
    next_id: u64,
    tick: u64,
}

/// The compile body of a successful `open`/`edit` response.
#[derive(Debug, Clone)]
pub struct SessionReply {
    pub session: u64,
    pub fingerprint: Fingerprint,
    pub fingerprint_hex: Arc<str>,
    pub sql_words: usize,
    /// Disclosure, as in plain responses: the artifacts/scene come from
    /// this pattern-equivalent representative, not the session's text.
    pub representative_sql: Option<Arc<str>>,
    /// Which tier served the compile: `cold` (open), `tokens`,
    /// `fragment`, or `full`.
    pub path: &'static str,
    /// Serialized `scene_json` v2 document (open and resync responses) …
    pub scene: Option<String>,
    /// … or serialized patch ops (the contents of the `patch` array).
    pub patch: Option<String>,
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Depth-0 branch structure of a token stream: per-branch run ranges and
/// the `ALL` flavor of each connective. `None` when the stream is not a
/// plain `block (UNION [ALL] block)* [;] EOF` shape (e.g. trailing
/// tokens after the semicolon) — such streams take the full path.
struct BranchSplit {
    runs: Vec<(usize, usize)>,
    alls: Vec<bool>,
}

fn split_depth0(tokens: &[Token]) -> Option<BranchSplit> {
    let mut runs = Vec::new();
    let mut alls = Vec::new();
    let mut depth: i64 = 0;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::LParen => depth += 1,
            TokenKind::RParen => depth -= 1,
            TokenKind::Keyword(Keyword::Union) if depth == 0 => {
                runs.push((start, i));
                let all = matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Keyword(Keyword::All))
                );
                alls.push(all);
                if all {
                    i += 1;
                }
                start = i + 1;
            }
            TokenKind::Semicolon if depth == 0 => {
                // Only `EOF` may follow a depth-0 semicolon; anything else
                // is an error the full parser must surface.
                if !matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokenKind::Eof)) {
                    return None;
                }
                runs.push((start, i));
                return Some(BranchSplit { runs, alls });
            }
            TokenKind::Eof => {
                runs.push((start, i));
                return Some(BranchSplit { runs, alls });
            }
            _ => {}
        }
        i += 1;
    }
    None // no EOF sentinel: not a lexer-produced stream
}

/// The bounded, evictable session table in front of one
/// [`DiagramService`]. All front ends (stdin `service`, TCP `server`)
/// share one store per service so `stats` sees one ledger.
pub struct SessionStore {
    service: Arc<DiagramService>,
    config: SessionConfig,
    inner: Mutex<Inner>,
    opened_total: AtomicU64,
    closed: AtomicU64,
    evicted: AtomicU64,
    reaped: AtomicU64,
    edits: AtomicU64,
    token_splices: AtomicU64,
    path_tokens: AtomicU64,
    path_fragment: AtomicU64,
    path_full: AtomicU64,
    parse_errors: AtomicU64,
    patches: AtomicU64,
    resyncs: AtomicU64,
}

impl SessionStore {
    pub fn new(service: Arc<DiagramService>, config: SessionConfig) -> SessionStore {
        SessionStore {
            service,
            config,
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                next_id: 1,
                tick: 0,
            }),
            opened_total: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            token_splices: AtomicU64::new(0),
            path_tokens: AtomicU64::new(0),
            path_fragment: AtomicU64::new(0),
            path_full: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    pub fn open_count(&self) -> usize {
        lock_unpoisoned(&self.inner).sessions.len()
    }

    pub fn snapshot(&self) -> SessionStatsSnapshot {
        SessionStatsSnapshot {
            open: self.open_count() as u64,
            opened_total: self.opened_total.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            edits: self.edits.load(Ordering::Relaxed),
            token_splices: self.token_splices.load(Ordering::Relaxed),
            path_tokens: self.path_tokens.load(Ordering::Relaxed),
            path_fragment: self.path_fragment.load(Ordering::Relaxed),
            path_full: self.path_full.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
        }
    }

    /// Open a session over `sql`. The outer `Err` means the open was
    /// refused (buffer too large) and no session exists; the inner result
    /// is the first compile, which may fail (the session still opens —
    /// live editing may well start from broken text).
    pub fn open(
        &self,
        sql: &str,
        owner: u64,
    ) -> Result<(u64, Result<SessionReply, ServiceError>), ServiceError> {
        if sql.len() > self.config.max_source_bytes {
            return Err(ServiceError::new(
                ErrorKind::TooLarge,
                format!(
                    "session source exceeds the {} byte budget ({} bytes)",
                    self.config.max_source_bytes,
                    sql.len()
                ),
            ));
        }
        let mut inner = lock_unpoisoned(&self.inner);
        let inner = &mut *inner;
        if inner.sessions.len() >= self.config.max_sessions.max(1) {
            let victim = inner
                .sessions
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(id, _)| *id)
                .expect("non-empty table");
            inner.sessions.remove(&victim);
            self.evicted.fetch_add(1, Ordering::Relaxed);
            C_EVICTIONS.add(1);
            G_OPEN.add(-1);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.tick += 1;
        let mut session = Session {
            owner,
            source: sql.to_string(),
            tokens: None,
            compiled: None,
            last_scene: None,
            last_used: inner.tick,
            edits: 0,
        };
        self.opened_total.fetch_add(1, Ordering::Relaxed);
        C_OPENS.add(1);
        G_OPEN.add(1);
        let compiled = self.compile(&mut session, id, "cold");
        let reply = match compiled {
            Ok(mut reply) => {
                // An open always syncs the full scene.
                let scene = Arc::clone(session.compiled.as_ref().expect("compiled").entry.scene());
                reply.scene = Some(scene_json_v2(&scene));
                session.last_scene = Some(scene);
                Ok(reply)
            }
            Err(e) => Err(e),
        };
        inner.sessions.insert(id, session);
        Ok((id, reply))
    }

    /// Apply `edits` (in order, each offset relative to the buffer the
    /// previous ones produced) and recompile incrementally. The outer
    /// `Err` means the request was refused — unknown session, foreign
    /// owner, invalid edit range, or buffer overflow — and the session
    /// state is unchanged. The inner result is the compile outcome: on
    /// error the buffer *is* updated (the text really is broken) and the
    /// session stays open.
    pub fn edit(
        &self,
        session_id: u64,
        edits: &[Edit],
        owner: u64,
    ) -> Result<Result<SessionReply, ServiceError>, ServiceError> {
        let mut inner = lock_unpoisoned(&self.inner);
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;
        let Some(session) = inner.sessions.get_mut(&session_id) else {
            return Err(ServiceError::new(
                ErrorKind::BadRequest,
                format!("unknown session {session_id}"),
            ));
        };
        if session.owner != owner {
            return Err(ServiceError::new(
                ErrorKind::BadRequest,
                format!("session {session_id} belongs to another connection"),
            ));
        }
        session.last_used = tick;
        // Stage the edits on copies: a mid-sequence failure must leave
        // the session exactly as it was (client and server buffers agree
        // on every acknowledged state, never on a half-applied one).
        let mut source = session.source.clone();
        let mut tokens = session.tokens.clone();
        let mut spliced = 0u64;
        for edit in edits {
            apply_edit(&mut source, edit)
                .map_err(|m| ServiceError::new(ErrorKind::BadRequest, format!("bad edit: {m}")))?;
            if source.len() > self.config.max_source_bytes {
                return Err(ServiceError::new(
                    ErrorKind::TooLarge,
                    format!(
                        "edit would grow the session past the {} byte budget",
                        self.config.max_source_bytes
                    ),
                ));
            }
            tokens = match tokens.take() {
                Some(old) => {
                    let mut out = Vec::with_capacity(old.len() + 4);
                    match relex(&source, &old, edit, self.service.interner(), &mut out) {
                        Ok(Relex::Spliced { .. }) => {
                            spliced += 1;
                            Some(out)
                        }
                        Ok(Relex::Full) => Some(out),
                        // The buffer no longer lexes; the compile below
                        // reproduces the canonical error from scratch.
                        Err(_) => None,
                    }
                }
                None => None,
            };
        }
        session.source = source;
        session.tokens = tokens;
        session.edits += edits.len() as u64;
        self.edits.fetch_add(1, Ordering::Relaxed);
        self.token_splices.fetch_add(spliced, Ordering::Relaxed);
        C_EDITS.add(1);
        let result = self.compile(session, session_id, "edit");
        Ok(match result {
            Ok(mut reply) => {
                let scene = Arc::clone(session.compiled.as_ref().expect("compiled").entry.scene());
                self.attach_scene(&mut reply, session, &scene);
                session.last_scene = Some(scene);
                Ok(reply)
            }
            Err(e) => Err(e),
        })
    }

    /// Close a session, returning how many edits it absorbed.
    pub fn close(&self, session_id: u64, owner: u64) -> Result<u64, ServiceError> {
        let mut inner = lock_unpoisoned(&self.inner);
        match inner.sessions.get(&session_id) {
            None => Err(ServiceError::new(
                ErrorKind::BadRequest,
                format!("unknown session {session_id}"),
            )),
            Some(s) if s.owner != owner => Err(ServiceError::new(
                ErrorKind::BadRequest,
                format!("session {session_id} belongs to another connection"),
            )),
            Some(_) => {
                let session = inner.sessions.remove(&session_id).expect("present");
                self.closed.fetch_add(1, Ordering::Relaxed);
                G_OPEN.add(-1);
                Ok(session.edits)
            }
        }
    }

    /// Drop every session belonging to `owner` — the disconnect hook (a
    /// client that vanishes mid-edit must not pin buffer memory).
    pub fn reap_owner(&self, owner: u64) -> usize {
        let mut inner = lock_unpoisoned(&self.inner);
        let doomed: Vec<u64> = inner
            .sessions
            .iter()
            .filter(|(_, s)| s.owner == owner)
            .map(|(id, _)| *id)
            .collect();
        for id in &doomed {
            inner.sessions.remove(id);
        }
        let n = doomed.len();
        self.reaped.fetch_add(n as u64, Ordering::Relaxed);
        G_OPEN.add(-(n as i64));
        n
    }

    /// Close every session (graceful drain). Returns how many were open.
    pub fn close_all(&self) -> usize {
        let mut inner = lock_unpoisoned(&self.inner);
        let n = inner.sessions.len();
        inner.sessions.clear();
        self.closed.fetch_add(n as u64, Ordering::Relaxed);
        G_OPEN.add(-(n as i64));
        n
    }

    /// Decide patch vs resync for an edit reply: patch when the branch
    /// structure held and the serialized ops are smaller than the full
    /// document they replace.
    fn attach_scene(&self, reply: &mut SessionReply, session: &Session, scene: &Arc<Scene>) {
        if let Some(last) = &session.last_scene {
            if let Some(ops) = diff_scenes(last, scene) {
                let mut patch = String::with_capacity(256);
                write_patch_ops(&mut patch, &ops);
                let full = scene_json_v2(scene);
                if patch.len() < full.len() {
                    self.patches.fetch_add(1, Ordering::Relaxed);
                    C_PATCHES.add(1);
                    reply.patch = Some(patch);
                } else {
                    self.resyncs.fetch_add(1, Ordering::Relaxed);
                    C_RESYNCS.add(1);
                    reply.scene = Some(full);
                }
                return;
            }
        }
        self.resyncs.fetch_add(1, Ordering::Relaxed);
        C_RESYNCS.add(1);
        reply.scene = Some(scene_json_v2(scene));
    }

    /// The tiered incremental compile. On success the session's
    /// `compiled` state is replaced; on error it is left as the last
    /// successful state (recovery re-enters the warm tiers from there).
    fn compile(
        &self,
        session: &mut Session,
        session_id: u64,
        mode: &'static str,
    ) -> Result<SessionReply, ServiceError> {
        // Ensure a token stream exists (open, or recovery from a lex
        // error): the canonical lexer over the whole buffer.
        if session.tokens.is_none() {
            match tokenize_in(&session.source, self.service.interner()) {
                Ok(tokens) => session.tokens = Some(tokens),
                Err(e) => {
                    self.parse_errors.fetch_add(1, Ordering::Relaxed);
                    C_PARSE_ERRORS.add(1);
                    if mode == "edit" {
                        self.path_full.fetch_add(1, Ordering::Relaxed);
                        C_PATH_FULL.add(1);
                    }
                    return Err(ServiceError::new(ErrorKind::Compile, e.to_string()));
                }
            }
        }
        let tokens = session.tokens.as_ref().expect("ensured above");

        // Tier `tokens`: kinds+symbols unchanged since the last success —
        // the AST, pattern, fingerprint, and entry are all unchanged.
        if let Some(compiled) = &mut session.compiled {
            if same_kinds(tokens, &compiled.tokens) {
                // Refresh the cached spans so later fragment splits see
                // current coordinates.
                compiled.tokens = tokens.clone();
                let path = if mode == "cold" { "cold" } else { "tokens" };
                if mode == "edit" {
                    self.path_tokens.fetch_add(1, Ordering::Relaxed);
                    C_PATH_TOKENS.add(1);
                }
                return Ok(self.reply_from(
                    session_id,
                    session.compiled.as_ref().unwrap(),
                    path,
                    &session.source,
                ));
            }
        }

        // Tier `fragment`: aligned branch structure with exactly one
        // damaged run. Any error in here falls back to the full tier so
        // acceptance and error text stay canonical.
        if let Some(compiled) = &session.compiled {
            // An Err(()) outcome means unsound or failed: fall through
            // to the full tier below.
            if let Some(Ok(new_compiled)) = self.try_fragment(session, compiled, tokens) {
                if mode == "edit" {
                    self.path_fragment.fetch_add(1, Ordering::Relaxed);
                    C_PATH_FRAGMENT.add(1);
                }
                let reply = self.reply_from(session_id, &new_compiled, "fragment", &session.source);
                session.compiled = Some(new_compiled);
                return Ok(reply);
            }
        }

        // Tier `full`: the canonical frontend over the (relex-maintained)
        // buffer. `fingerprint_sql` is the exact path a plain request
        // takes, so errors — and successes — are byte-identical to it.
        if mode == "edit" {
            self.path_full.fetch_add(1, Ordering::Relaxed);
            C_PATH_FULL.add(1);
        }
        let fq = match fingerprint_sql(&session.source, Arc::clone(self.service.options_arc())) {
            Ok(fq) => fq,
            Err(e) => {
                self.parse_errors.fetch_add(1, Ordering::Relaxed);
                C_PARSE_ERRORS.add(1);
                return Err(ServiceError::new(ErrorKind::Compile, e.to_string()));
            }
        };
        let frags = frags_of(&fq.prepared);
        let words = fq.prepared.sql_word_count();
        let fingerprint = fq.fingerprint;
        let union_all = fq.prepared.union_all;
        let entry = self.service.entry_for(fq)?;
        let compiled = Compiled {
            tokens: tokens.clone(),
            fingerprint,
            words,
            entry,
            frags,
            union_all,
        };
        let path = if mode == "cold" { "cold" } else { "full" };
        let reply = self.reply_from(session_id, &compiled, path, &session.source);
        session.compiled = Some(compiled);
        Ok(reply)
    }

    /// Attempt the fragment tier. `None`: structure precludes it (take
    /// the full tier silently). `Some(Err(()))`: it was attempted and
    /// failed — the caller must fall back for canonical errors.
    fn try_fragment(
        &self,
        session: &Session,
        compiled: &Compiled,
        tokens: &[Token],
    ) -> Option<Result<Compiled, ()>> {
        let new_split = split_depth0(tokens)?;
        let old_split = split_depth0(&compiled.tokens)?;
        if new_split.runs.len() != old_split.runs.len()
            || new_split.alls != old_split.alls
            || new_split.runs.len() != compiled.frags.len()
        {
            return None;
        }
        let mut damaged: Option<usize> = None;
        for (i, (new_run, old_run)) in new_split.runs.iter().zip(&old_split.runs).enumerate() {
            let new_toks = &tokens[new_run.0..new_run.1];
            let old_toks = &compiled.tokens[old_run.0..old_run.1];
            if !same_kinds(new_toks, old_toks) {
                if damaged.is_some() {
                    return None; // more than one damaged branch
                }
                damaged = Some(i);
            }
        }
        let damaged = damaged?; // all runs equal ⇒ tier `tokens` handled it
        let run = new_split.runs[damaged];
        let options = Arc::clone(self.service.options_arc());
        let interner = self.service.interner();
        // Errors are deliberately discarded: any failure sends the caller
        // to the full tier, which reproduces the canonical error text.
        let attempt = || -> Result<Compiled, ()> {
            let ast = parse_branch_tokens(&session.source, &tokens[run.0..run.1], interner)
                .map_err(|_| ())?;
            // Reassemble the written expression: cached sibling ASTs,
            // the re-parsed branch in place. The connective flavor is
            // unchanged by construction (alls compared above).
            let mut branches: Vec<Query> = compiled.frags.iter().map(|f| f.ast.clone()).collect();
            branches[damaged] = ast.clone();
            let expr = QueryExpr {
                branches,
                all: compiled.union_all,
            };
            if let Some(schema) = &options.schema {
                schema.check_query_expr(&expr).map_err(|_| ())?;
            }
            // Lower and translate only the damaged branch, exactly as
            // `prepare_parsed` would.
            let mut lowered: Vec<(Query, LogicTree)> = Vec::new();
            if queryvis_logic::has_disjunction(&ast) {
                for low in queryvis_logic::lower_disjunctions(&ast).map_err(|_| ())? {
                    let tree =
                        queryvis_logic::translate(&low, options.schema.as_ref()).map_err(|_| ())?;
                    lowered.push((low, tree));
                }
            } else {
                let tree =
                    queryvis_logic::translate(&ast, options.schema.as_ref()).map_err(|_| ())?;
                lowered.push((ast.clone(), tree));
            }
            let mut frags: Vec<BranchFrag> = Vec::with_capacity(compiled.frags.len());
            let mut all_pairs: Vec<(Query, LogicTree)> = Vec::new();
            for (i, frag) in compiled.frags.iter().enumerate() {
                let pairs = if i == damaged {
                    &lowered
                } else {
                    &frag.lowered
                };
                all_pairs.extend(pairs.iter().cloned());
                frags.push(BranchFrag {
                    ast: if i == damaged {
                        ast.clone()
                    } else {
                        frag.ast.clone()
                    },
                    lowered: pairs.clone(),
                });
            }
            let prepared =
                PreparedQuery::from_parts(&session.source, expr, all_pairs, Arc::clone(&options))
                    .map_err(|_| ())?;
            let words = prepared.sql_word_count();
            let fq = fingerprint_prepared(prepared);
            let fingerprint = fq.fingerprint;
            let entry = self.service.entry_for(fq).map_err(|_| ())?;
            Ok(Compiled {
                tokens: tokens.to_vec(),
                fingerprint,
                words,
                entry,
                frags,
                union_all: compiled.union_all,
            })
        };
        match attempt() {
            Ok(compiled) => Some(Ok(compiled)),
            Err(_) => Some(Err(())),
        }
    }

    fn reply_from(
        &self,
        session_id: u64,
        compiled: &Compiled,
        path: &'static str,
        source: &str,
    ) -> SessionReply {
        let representative_sql = (compiled.entry.representative_sql() != source)
            .then(|| Arc::clone(compiled.entry.representative_shared()));
        SessionReply {
            session: session_id,
            fingerprint: compiled.fingerprint,
            fingerprint_hex: Arc::clone(compiled.entry.fingerprint_hex()),
            sql_words: compiled.words,
            representative_sql,
            path,
            scene: None,
            patch: None,
        }
    }
}

/// Per-written-branch derivations of a freshly prepared query, cloned
/// for the session's fragment cache. The prepared query's flattened
/// branch list is re-grouped by re-lowering each written AST — cheap id
/// work, and structurally identical to what `prepare_parsed` produced.
fn frags_of(prepared: &PreparedQuery) -> Vec<BranchFrag> {
    let mut flat: Vec<(Query, LogicTree)> = Vec::with_capacity(1 + prepared.rest.len());
    flat.push((prepared.query.clone(), prepared.logic_tree.clone()));
    flat.extend(prepared.rest.iter().cloned());
    let mut frags = Vec::with_capacity(prepared.expr.branches.len());
    let mut taken = 0usize;
    for written in &prepared.expr.branches {
        let width = if queryvis_logic::has_disjunction(written) {
            // The lowering fan-out is deterministic; recompute the width
            // to slice this branch's share of the flattened pairs.
            queryvis_logic::lower_disjunctions(written)
                .map(|v| v.len())
                .unwrap_or(1)
        } else {
            1
        };
        let end = (taken + width).min(flat.len());
        frags.push(BranchFrag {
            ast: written.clone(),
            lowered: flat[taken..end].to_vec(),
        });
        taken = end;
    }
    frags
}

// ---------------------------------------------------------------------
// Wire layer: `open` / `edit` / `close` ops over the JSON-lines framing.
// ---------------------------------------------------------------------

/// True when a parsed request line is a session op this module owns.
pub fn is_session_op(value: &Json) -> bool {
    matches!(
        value.get("op").and_then(Json::as_str),
        Some("open" | "edit" | "close")
    )
}

fn error_line(id: u64, session: Option<u64>, error: &ServiceError) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"id\":");
    write_u64(&mut out, id);
    if let Some(session) = session {
        out.push_str(",\"session\":");
        write_u64(&mut out, session);
    }
    out.push_str(",\"error\":");
    escape_into(&mut out, &error.message);
    out.push_str(",\"error_kind\":");
    escape_into(&mut out, error.kind.name());
    out.push('}');
    out
}

fn reply_line(id: u64, reply: &SessionReply) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"id\":");
    write_u64(&mut out, id);
    out.push_str(",\"session\":");
    write_u64(&mut out, reply.session);
    out.push_str(",\"fingerprint\":");
    escape_into(&mut out, &reply.fingerprint_hex);
    out.push_str(",\"sql_words\":");
    write_u64(&mut out, reply.sql_words as u64);
    if let Some(representative) = &reply.representative_sql {
        out.push_str(",\"representative_sql\":");
        escape_into(&mut out, representative);
    }
    out.push_str(",\"path\":");
    escape_into(&mut out, reply.path);
    if let Some(patch) = &reply.patch {
        out.push_str(",\"patch\":[");
        out.push_str(patch);
        out.push(']');
    }
    if let Some(scene) = &reply.scene {
        out.push_str(",\"scene\":");
        out.push_str(scene); // already a JSON document
    }
    out.push('}');
    out
}

impl SessionStore {
    /// Serve one parsed session-op line, returning the response line (no
    /// trailing newline). Callers route lines here when
    /// [`is_session_op`] matched.
    pub fn dispatch_value(&self, value: &Json, default_id: u64, owner: u64) -> String {
        let id = match value.get("id") {
            None => default_id,
            Some(v) => match v.as_u64() {
                Some(id) => id,
                None => {
                    return error_line(
                        default_id,
                        None,
                        &ServiceError::new(
                            ErrorKind::BadRequest,
                            "`id` must be a non-negative integer",
                        ),
                    )
                }
            },
        };
        match value.get("op").and_then(Json::as_str) {
            Some("open") => {
                let Some(sql) = value.get("sql").and_then(Json::as_str) else {
                    return error_line(
                        id,
                        None,
                        &ServiceError::new(
                            ErrorKind::BadRequest,
                            "open needs a string `sql` field",
                        ),
                    );
                };
                match self.open(sql, owner) {
                    Err(e) => error_line(id, None, &e),
                    Ok((_session, Ok(reply))) => reply_line(id, &reply),
                    Ok((session, Err(e))) => error_line(id, Some(session), &e),
                }
            }
            Some("edit") => {
                let Some(session) = value.get("session").and_then(Json::as_u64) else {
                    return error_line(
                        id,
                        None,
                        &ServiceError::new(
                            ErrorKind::BadRequest,
                            "edit needs a numeric `session` field",
                        ),
                    );
                };
                let edits = match parse_edits(value) {
                    Ok(edits) => edits,
                    Err(message) => {
                        return error_line(
                            id,
                            Some(session),
                            &ServiceError::new(ErrorKind::BadRequest, message),
                        )
                    }
                };
                match self.edit(session, &edits, owner) {
                    Err(e) => error_line(id, Some(session), &e),
                    Ok(Ok(reply)) => reply_line(id, &reply),
                    Ok(Err(e)) => error_line(id, Some(session), &e),
                }
            }
            Some("close") => {
                let Some(session) = value.get("session").and_then(Json::as_u64) else {
                    return error_line(
                        id,
                        None,
                        &ServiceError::new(
                            ErrorKind::BadRequest,
                            "close needs a numeric `session` field",
                        ),
                    );
                };
                match self.close(session, owner) {
                    Err(e) => error_line(id, Some(session), &e),
                    Ok(edits) => {
                        let mut out = String::with_capacity(64);
                        out.push_str("{\"id\":");
                        write_u64(&mut out, id);
                        out.push_str(",\"session\":");
                        write_u64(&mut out, session);
                        out.push_str(",\"closed\":true,\"edits\":");
                        write_u64(&mut out, edits);
                        out.push('}');
                        out
                    }
                }
            }
            _ => error_line(
                id,
                None,
                &ServiceError::new(ErrorKind::BadRequest, "not a session op"),
            ),
        }
    }
}

/// Parse the `edits` array: `[{"at":N,"del":N,"ins":"text"}, …]` (`del`
/// and `ins` optional, defaulting to 0 / empty).
fn parse_edits(value: &Json) -> Result<Vec<Edit>, String> {
    let Some(arr) = value.get("edits").and_then(Json::as_arr) else {
        return Err("edit needs an `edits` array".to_string());
    };
    let mut edits = Vec::with_capacity(arr.len());
    for item in arr {
        let at = item
            .get("at")
            .and_then(Json::as_u64)
            .ok_or("each edit needs a numeric `at` offset")?;
        let del = match item.get("del") {
            None => 0,
            Some(v) => v.as_u64().ok_or("`del` must be a non-negative integer")?,
        };
        let ins = match item.get("ins") {
            None => "",
            Some(v) => v.as_str().ok_or("`ins` must be a string")?,
        };
        edits.push(Edit {
            offset: at as usize,
            deleted: del as usize,
            inserted: ins.to_string(),
        });
    }
    Ok(edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Format;
    use crate::service::{DiagramService, ServiceConfig};
    use crate::{apply_patch, parse_patch_ops};

    fn store() -> SessionStore {
        SessionStore::new(
            Arc::new(DiagramService::new(ServiceConfig::default())),
            SessionConfig::default(),
        )
    }

    fn ins(at: usize, text: &str) -> Edit {
        Edit {
            offset: at,
            deleted: 0,
            inserted: text.to_string(),
        }
    }

    fn del(at: usize, n: usize) -> Edit {
        Edit {
            offset: at,
            deleted: n,
            inserted: String::new(),
        }
    }

    /// Compile `sql` from scratch through a plain request and return the
    /// fingerprint hex + v2 scene — the oracle every session reply must
    /// match byte for byte.
    fn oracle(service: &DiagramService, sql: &str) -> (String, String) {
        let fq = fingerprint_sql(sql, Arc::clone(service.options_arc())).unwrap();
        let fingerprint = fq.fingerprint.to_string();
        let entry = service.entry_for(fq).unwrap();
        (fingerprint, scene_json_v2(entry.scene()))
    }

    #[test]
    fn open_edit_close_lifecycle() {
        let store = store();
        let (id, reply) = store.open("SELECT T.a FROM T", 1).unwrap();
        let reply = reply.unwrap();
        assert_eq!(reply.path, "cold");
        assert!(reply.scene.is_some());
        assert_eq!(store.open_count(), 1);

        // Whitespace edit: tier `tokens`.
        let reply = store.edit(id, &[ins(6, "  ")], 1).unwrap().unwrap();
        assert_eq!(reply.path, "tokens");
        // Same entry, same scene → empty patch.
        assert_eq!(reply.patch.as_deref(), Some(""));

        assert_eq!(store.close(id, 1).unwrap(), 1);
        assert_eq!(store.open_count(), 0);
        let stats = store.snapshot();
        assert_eq!(stats.opened_total, 1);
        assert_eq!(stats.closed, 1);
        assert_eq!(stats.path_tokens, 1);
    }

    #[test]
    fn edits_track_the_from_scratch_compile() {
        let store = store();
        let base = "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'";
        let (id, reply) = store.open(base, 1).unwrap();
        assert!(reply.is_ok());
        // Rename the constant: single-branch fragment path.
        let target = base.find("'Owl'").unwrap();
        let reply = store
            .edit(id, &[del(target + 1, 3), ins(target + 1, "Tap")], 1)
            .unwrap()
            .unwrap();
        let now = "SELECT F.person FROM Frequents F WHERE F.bar = 'Tap'";
        let (fp, _scene) = oracle(&store.service, now);
        assert_eq!(reply.fingerprint_hex.as_ref(), fp);
        assert_eq!(reply.path, "fragment");
    }

    #[test]
    fn union_edit_takes_the_fragment_path_and_patches() {
        let store = store();
        let sql = "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl' \
                   UNION SELECT L.person FROM Likes L WHERE L.beer = 'IPA'";
        let (id, reply) = store.open(sql, 1).unwrap();
        assert!(reply.is_ok());
        // Edit only the second branch's constant (same length: retext).
        let at = sql.find("'IPA'").unwrap() + 1;
        let reply = store
            .edit(id, &[del(at, 3), ins(at, "ALE")], 1)
            .unwrap()
            .unwrap();
        assert_eq!(reply.path, "fragment");
        let now = sql.replace("'IPA'", "'ALE'");
        let (fp, scene) = oracle(&store.service, &now);
        assert_eq!(reply.fingerprint_hex.as_ref(), fp);
        // The patch applies onto the open scene and reproduces the
        // from-scratch scene byte for byte.
        let patch = reply.patch.expect("small edit should patch");
        let parsed = crate::json::parse(&format!("[{patch}]")).unwrap();
        let ops = parse_patch_ops(parsed.as_arr().unwrap()).unwrap();
        let base_scene = {
            let fq = fingerprint_sql(sql, Arc::clone(store.service.options_arc())).unwrap();
            let entry = store.service.entry_for(fq).unwrap();
            Arc::clone(entry.scene())
        };
        let patched = apply_patch(&base_scene, &ops).unwrap();
        assert_eq!(scene_json_v2(&patched), scene);
    }

    #[test]
    fn structural_edit_falls_back_to_full() {
        let store = store();
        let (id, reply) = store.open("SELECT T.a FROM T", 1).unwrap();
        assert!(reply.is_ok());
        let suffix = " UNION SELECT U.b FROM U";
        let reply = store
            .edit(id, &[ins("SELECT T.a FROM T".len(), suffix)], 1)
            .unwrap()
            .unwrap();
        assert_eq!(reply.path, "full");
        assert!(reply.scene.is_some(), "branch split must resync");
        assert_eq!(store.snapshot().path_full, 1);
    }

    #[test]
    fn transient_parse_errors_keep_the_session_and_recover() {
        let store = store();
        let sql = "SELECT T.a FROM T";
        let (id, reply) = store.open(sql, 1).unwrap();
        let before = reply.unwrap().fingerprint_hex;
        // Break it: dangling WHERE.
        let err = store.edit(id, &[ins(sql.len(), " WHERE")], 1).unwrap();
        let err = err.unwrap_err();
        assert_eq!(err.kind, ErrorKind::Compile);
        // Canonical error text: same as compiling the text from scratch.
        let oracle_err = fingerprint_sql(
            "SELECT T.a FROM T WHERE",
            Arc::clone(store.service.options_arc()),
        )
        .unwrap_err();
        assert_eq!(err.message, oracle_err.to_string());
        // Recover by deleting the damage: back to the original pattern,
        // via the warm tier (kinds match the last success again).
        let reply = store
            .edit(id, &[del(sql.len(), " WHERE".len())], 1)
            .unwrap()
            .unwrap();
        assert_eq!(reply.path, "tokens");
        assert_eq!(reply.fingerprint_hex, before);
        assert_eq!(store.snapshot().parse_errors, 1);
    }

    #[test]
    fn sessions_are_bounded_and_lru_evicted() {
        let store = SessionStore::new(
            Arc::new(DiagramService::new(ServiceConfig::default())),
            SessionConfig {
                max_sessions: 2,
                max_source_bytes: 256,
            },
        );
        let (a, _) = store.open("SELECT T.a FROM T", 1).unwrap();
        let (b, _) = store.open("SELECT U.b FROM U", 1).unwrap();
        // Touch a so b is the LRU.
        store.edit(a, &[ins(6, " ")], 1).unwrap().unwrap();
        let (_c, _) = store.open("SELECT V.c FROM V", 1).unwrap();
        assert_eq!(store.open_count(), 2);
        assert!(store.edit(b, &[ins(0, " ")], 1).is_err(), "b was evicted");
        assert!(store.edit(a, &[ins(6, " ")], 1).is_ok(), "a survives");
        assert_eq!(store.snapshot().evicted, 1);

        // Oversized open refused; oversized edit refused, buffer intact.
        let big = "x".repeat(300);
        assert_eq!(store.open(&big, 1).unwrap_err().kind, ErrorKind::TooLarge);
        let grow = "y".repeat(300);
        let err = store.edit(a, &[ins(0, &grow)], 1).unwrap_err();
        assert_eq!(err.kind, ErrorKind::TooLarge);
        // The session still works after the refusal.
        assert!(store.edit(a, &[ins(6, " ")], 1).unwrap().is_ok());
    }

    #[test]
    fn owner_isolation_and_reaping() {
        let store = store();
        let (id, _) = store.open("SELECT T.a FROM T", 7).unwrap();
        assert!(store.edit(id, &[ins(6, " ")], 8).is_err());
        assert!(store.close(id, 8).is_err());
        assert_eq!(store.reap_owner(7), 1);
        assert_eq!(store.open_count(), 0);
        assert_eq!(store.snapshot().reaped, 1);
    }

    #[test]
    fn wire_ops_round_trip() {
        let store = store();
        let open = crate::json::parse(r#"{"op":"open","id":1,"sql":"SELECT T.a FROM T"}"#).unwrap();
        let line = store.dispatch_value(&open, 0, 1);
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(1));
        let session = doc.get("session").and_then(Json::as_u64).unwrap();
        assert_eq!(doc.get("path").and_then(Json::as_str), Some("cold"));
        assert_eq!(
            doc.get("scene")
                .and_then(|s| s.get("v"))
                .and_then(Json::as_u64),
            Some(2)
        );

        let edit = crate::json::parse(&format!(
            r#"{{"op":"edit","id":2,"session":{session},"edits":[{{"at":6,"ins":" "}}]}}"#
        ))
        .unwrap();
        let line = store.dispatch_value(&edit, 0, 1);
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("path").and_then(Json::as_str), Some("tokens"));
        assert!(doc.get("patch").is_some());

        let close =
            crate::json::parse(&format!(r#"{{"op":"close","id":3,"session":{session}}}"#)).unwrap();
        let line = store.dispatch_value(&close, 0, 1);
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("closed"), Some(&Json::Bool(true)));

        // Unknown session → structured bad_request.
        let line = store.dispatch_value(&close, 0, 1);
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(
            doc.get("error_kind").and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn default_formats_do_not_leak_into_session_scene() {
        // Sessions always serve scene_json v2 regardless of the service's
        // default format list.
        let service = Arc::new(DiagramService::new(ServiceConfig {
            default_formats: vec![Format::Svg],
            ..ServiceConfig::default()
        }));
        let store = SessionStore::new(service, SessionConfig::default());
        let (_, reply) = store.open("SELECT T.a FROM T", 1).unwrap();
        let scene = reply.unwrap().scene.unwrap();
        assert!(scene.starts_with("{\"v\":2,"));
    }
}
