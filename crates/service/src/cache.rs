//! A sharded LRU cache for compiled diagrams.
//!
//! Keys are pattern [`Fingerprint`]s; values are [`Arc`]s of immutable
//! [`CompiledEntry`]s whose rendered artifacts materialize lazily per
//! format. Sharding (fingerprint high bits → shard) keeps lock hold times
//! short under concurrent batch execution: each shard is an independent
//! `Mutex<LruState>` with its own capacity slice and hit/miss/eviction
//! counters.
//!
//! The LRU list is intrusive over a slab (`Vec` of nodes with prev/next
//! indices and a free list), so `get` and `insert` are O(1) with no
//! per-operation allocation beyond the entry itself.

use crate::compile::CompiledEntry;
use crate::fingerprint::Fingerprint;
use queryvis_telemetry::CounterDef;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// Global telemetry mirrors of the per-shard counters (DESIGN.md §6);
// `CacheStats` remains the per-instance view.
static C_L2_HITS: CounterDef = CounterDef::new("l2_hits");
static C_L2_MISSES: CounterDef = CounterDef::new("l2_misses");
static C_L2_EVICTIONS: CounterDef = CounterDef::new("l2_evictions");

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total entries across all shards.
    pub capacity: usize,
    /// Number of independent shards.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 16,
        }
    }
}

/// Aggregated counters across all shards (one consistent-ish snapshot;
/// each shard is read under its own lock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub capacity: usize,
    pub shards: usize,
}

impl CacheStats {
    /// Hits over lookups, `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.hits + self.misses;
        (lookups > 0).then(|| self.hits as f64 / lookups as f64)
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: u128,
    value: Arc<CompiledEntry>,
    prev: usize,
    next: usize,
}

/// One shard: an LRU list over a slab plus its counters.
struct LruState {
    map: HashMap<u128, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruState {
    fn new(capacity: usize) -> LruState {
        LruState {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: u128) -> Option<Arc<CompiledEntry>> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.hits += 1;
                C_L2_HITS.add(1);
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(Arc::clone(&self.slab[idx].value))
            }
            None => {
                self.misses += 1;
                C_L2_MISSES.add(1);
                None
            }
        }
    }

    fn insert(
        &mut self,
        key: u128,
        value: Arc<CompiledEntry>,
    ) -> (Arc<CompiledEntry>, Option<u128>) {
        if let Some(idx) = self.map.get(&key).copied() {
            // Racing compilers can insert the same fingerprint twice; keep
            // the incumbent (first insert wins) and just refresh recency.
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return (Arc::clone(&self.slab[idx].value), None);
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 guaranteed by constructor");
            self.unlink(victim);
            let victim_key = self.slab[victim].key;
            self.map.remove(&victim_key);
            self.free.push(victim);
            self.evictions += 1;
            C_L2_EVICTIONS.add(1);
            evicted = Some(victim_key);
        }
        let resident = Arc::clone(&value);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Node {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(Node {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        (resident, evicted)
    }
}

/// The sharded cache.
pub struct ShardedCache {
    shards: Vec<Mutex<LruState>>,
}

impl ShardedCache {
    pub fn new(config: CacheConfig) -> ShardedCache {
        let shards = config.shards.max(1);
        // Distribute capacity across shards, at least one entry each.
        let per_shard = config.capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruState::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, fingerprint: Fingerprint) -> &Mutex<LruState> {
        &self.shards[fingerprint.shard(self.shards.len())]
    }

    /// Look up a fingerprint, refreshing recency. Counts a hit or a miss.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<Arc<CompiledEntry>> {
        self.shard(fingerprint)
            .lock()
            .expect("cache shard poisoned")
            .get(fingerprint.0)
    }

    /// Insert a compiled entry, evicting the shard's LRU entry if full.
    /// Returns the entry now resident under the key: if racing compilers
    /// insert the same fingerprint, the incumbent is kept and returned, so
    /// every caller ends up serving the same entry.
    pub fn insert(
        &self,
        fingerprint: Fingerprint,
        value: Arc<CompiledEntry>,
    ) -> Arc<CompiledEntry> {
        self.insert_reporting(fingerprint, value).0
    }

    /// [`ShardedCache::insert`] that also reports the fingerprint this
    /// insert evicted, if any — the hook the service uses to invalidate L1
    /// memo entries the moment their L2 entry disappears.
    pub fn insert_reporting(
        &self,
        fingerprint: Fingerprint,
        value: Arc<CompiledEntry>,
    ) -> (Arc<CompiledEntry>, Option<Fingerprint>) {
        let (resident, evicted) = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned")
            .insert(fingerprint.0, value);
        (resident, evicted.map(Fingerprint))
    }

    /// Look up without touching recency or counters. Used where a lookup
    /// is a consistency re-check rather than request traffic (e.g. the
    /// owner's post-claim re-check in the in-flight path).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Arc<CompiledEntry>> {
        let state = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        state
            .map
            .get(&fingerprint.0)
            .map(|idx| Arc::clone(&state.slab[*idx].value))
    }

    /// Peek without touching recency or counters (used by tests/stats).
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.shard(fingerprint)
            .lock()
            .expect("cache shard poisoned")
            .map
            .contains_key(&fingerprint.0)
    }

    /// Aggregate counters across shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            shards: self.shards.len(),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let state = shard.lock().expect("cache shard poisoned");
            stats.hits += state.hits;
            stats.misses += state.misses;
            stats.evictions += state.evictions;
            stats.entries += state.map.len();
            stats.capacity += state.capacity;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_representative;
    use crate::fingerprint::fingerprint_sql;
    use queryvis::QueryVisOptions;

    fn entry(sql: &str) -> (Fingerprint, Arc<CompiledEntry>) {
        let fq = fingerprint_sql(sql, QueryVisOptions::default()).unwrap();
        let fp = fq.fingerprint;
        (fp, Arc::new(compile_representative(fq)))
    }

    fn synthetic_key(i: u64) -> Fingerprint {
        Fingerprint(u128::from(i) << 64 | u128::from(i))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ShardedCache::new(CacheConfig::default());
        let (fp, value) = entry("SELECT T.a FROM T");
        assert!(cache.get(fp).is_none());
        cache.insert(fp, value);
        assert!(cache.get(fp).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), Some(0.5));
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        // Single shard of capacity 2 so recency order is easy to steer.
        let cache = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let (a, b, c) = (synthetic_key(1), synthetic_key(2), synthetic_key(3));
        cache.insert(a, Arc::clone(&value));
        cache.insert(b, Arc::clone(&value));
        // Touch `a` so `b` is now least recently used.
        assert!(cache.get(a).is_some());
        cache.insert(c, Arc::clone(&value));
        assert!(cache.contains(a));
        assert!(!cache.contains(b), "b was LRU and must be evicted");
        assert!(cache.contains(c));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_keeps_incumbent_and_counts_nothing() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 4,
            shards: 1,
        });
        let (fp, value) = entry("SELECT T.a FROM T");
        cache.insert(fp, Arc::clone(&value));
        let incumbent = cache.get(fp).unwrap();
        let (_, other) = entry("SELECT T.a FROM T");
        let resident = cache.insert(fp, other);
        assert!(
            Arc::ptr_eq(&resident, &incumbent),
            "insert returns incumbent"
        );
        assert!(Arc::ptr_eq(&cache.get(fp).unwrap(), &incumbent));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn eviction_reuses_slab_slots() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        for i in 0..100 {
            cache.insert(synthetic_key(i), Arc::clone(&value));
        }
        let state = cache.shards[0].lock().unwrap();
        assert!(state.slab.len() <= 3, "slab grew: {}", state.slab.len());
        assert_eq!(state.map.len(), 2);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 64,
            shards: 8,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        for i in 0..64u64 {
            cache.insert(Fingerprint(u128::from(i) << 64), Arc::clone(&value));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.shards, 8);
        assert_eq!(stats.evictions, 0);
    }
}
