//! The sharded L2 diagram cache: ARC replacement behind a lock-free
//! read side.
//!
//! Keys are pattern [`Fingerprint`]s; values are [`Arc`]s of immutable
//! [`CompiledEntry`]s whose rendered artifacts materialize lazily per
//! format. Each shard is split into two halves:
//!
//! * **Read side** — a fixed, open-addressed table of atomic
//!   `(key, pointer)` slots guarded by a per-shard **seqlock** and the
//!   [`epoch`] pin protocol. A warm hit probes the table, validates the
//!   sequence window, bumps the entry's refcount, and returns — **zero
//!   lock acquisitions** (a bounded number of retries falls back to the
//!   write mutex only when a writer keeps the window unstable, and that
//!   fallback is counted so tests can assert it never fires on the warm
//!   path).
//! * **Write side** — a `Mutex<WriteState>` holding the authoritative
//!   map and the **ARC** (adaptive replacement) lists: resident `T1`
//!   (seen once) and `T2` (seen again), ghost `B1`/`B2` remembering
//!   recently evicted keys, and the adaptation target `p`. ARC is
//!   scan-resistant: a sequential sweep of one-shot keys churns through
//!   `T1` while the re-referenced hot set stays in `T2`, and ghost hits
//!   steer `p` toward whichever half the workload actually re-references.
//!
//! ## The seqlock read protocol
//!
//! Writers mutate the table only inside an odd-sequence window
//! (`seq += 1` … mutate … `seq += 1`, all under the write mutex).
//! Readers load `seq` (even or retry), probe, `fence(Acquire)`, reload
//! `seq`, and trust the probe only if both loads agree — so a torn
//! `(key, pointer)` pair can never be *acted on*. Reading the pointer is
//! made safe by the epoch pin taken around the probe: an unlinked entry's
//! `Arc` is retired into the shard's [`Limbo`] and freed only after every
//! pin that could have seen the pointer is released (see [`epoch`] for
//! the full argument), so `Arc::increment_strong_count` on a validated
//! pointer is sound.
//!
//! Readers cannot touch the ARC lists, so recency flows through per-slot
//! hit counters the writer drains on each insert ("batched recency": a
//! resident re-referenced since the last write is promoted to `T2` MRU
//! then — an approximation of ARC's per-access promotion that never
//! reorders the response-visible behavior, only the eviction choice).
//! Shard `entries`/`evictions` mirrors are written inside the same odd
//! window, so [`ShardedCache::stats`] reads them through the seqlock and
//! can never observe a torn mid-eviction state.

use crate::compile::CompiledEntry;
use crate::epoch::{self, Limbo};
use crate::fingerprint::Fingerprint;
use queryvis_telemetry::CounterDef;
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// Global telemetry mirrors of the per-shard counters (DESIGN.md §6);
// `CacheStats` remains the per-instance view.
static C_L2_HITS: CounterDef = CounterDef::new("l2_hits");
static C_L2_MISSES: CounterDef = CounterDef::new("l2_misses");
static C_L2_EVICTIONS: CounterDef = CounterDef::new("l2_evictions");
static C_L2_READ_RETRIES: CounterDef = CounterDef::new("l2_read_retries");
static C_L2_READ_FALLBACKS: CounterDef = CounterDef::new("l2_read_fallbacks");

/// Optimistic probe attempts before a reader gives up on the seqlock and
/// takes the write mutex. Writers hold the odd window for O(1) list
/// surgery, so in practice one retry suffices; the fallback exists so a
/// reader never spins unboundedly against a pathological writer.
const MAX_READ_RETRIES: u32 = 64;

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total entries across all shards.
    pub capacity: usize,
    /// Number of independent shards.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 16,
        }
    }
}

/// Aggregated counters across all shards. `entries`/`evictions` are read
/// through each shard's sequence window, so the snapshot can never tear
/// against an in-flight eviction; `hits`/`misses` are monotone reader-side
/// atomics (a racing read is a moment-in-time floor, never a torn value).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub capacity: usize,
    pub shards: usize,
    /// Optimistic probes that had to be retried (writer window overlap).
    pub read_retries: u64,
    /// Reads that exhausted their retries and took the write mutex — the
    /// "zero lock acquisitions on the warm path" test hook.
    pub read_fallbacks: u64,
}

impl CacheStats {
    /// Hits over lookups, `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.hits + self.misses;
        (lookups > 0).then(|| self.hits as f64 / lookups as f64)
    }
}

// ---------------------------------------------------------------------
// The read side: an open-addressed table of atomic (key, ptr) slots
// ---------------------------------------------------------------------

const SLOT_EMPTY: u64 = 0;
const SLOT_TOMB: u64 = 1;
const SLOT_FULL: u64 = 2;

/// One read-table slot. `state` transitions EMPTY → FULL ⇄ TOMB (only a
/// rebuild resets to EMPTY); the key of a tombstone stays behind so a
/// reader probing for it stops with a definite miss instead of walking
/// into slots the key never reached.
struct Slot {
    state: AtomicU64,
    key_hi: AtomicU64,
    key_lo: AtomicU64,
    ptr: AtomicPtr<CompiledEntry>,
    /// Deferred-recency hit counter, drained by the writer.
    hits: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(SLOT_EMPTY),
            key_hi: AtomicU64::new(0),
            key_lo: AtomicU64::new(0),
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            hits: AtomicU64::new(0),
        }
    }
}

struct ReadTable {
    slots: Box<[Slot]>,
    mask: usize,
}

impl ReadTable {
    fn new(resident_capacity: usize) -> ReadTable {
        // ≥ 2× residents keeps the load factor under one half, so probe
        // chains stay short and an EMPTY slot always terminates them.
        let len = (2 * resident_capacity).next_power_of_two().max(4);
        ReadTable {
            slots: (0..len).map(|_| Slot::new()).collect(),
            mask: len - 1,
        }
    }

    #[inline]
    fn home(&self, key: u128) -> usize {
        let h = (key as u64) ^ ((key >> 64) as u64);
        (h.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    /// Optimistic probe. Only meaningful when the caller validates the
    /// shard's sequence window around it; a torn result is discarded
    /// there, so this can use plain linear probing with no write-side
    /// coordination.
    #[inline]
    fn probe(&self, key: u128) -> Option<(usize, *const CompiledEntry)> {
        let (hi, lo) = ((key >> 64) as u64, key as u64);
        let mut idx = self.home(key);
        for _ in 0..=self.mask {
            let slot = &self.slots[idx];
            let state = slot.state.load(Ordering::Acquire);
            if state == SLOT_EMPTY {
                return None;
            }
            if slot.key_hi.load(Ordering::Relaxed) == hi
                && slot.key_lo.load(Ordering::Relaxed) == lo
            {
                if state == SLOT_FULL {
                    let ptr = slot.ptr.load(Ordering::Acquire);
                    if !ptr.is_null() {
                        return Some((idx, ptr));
                    }
                }
                // The key's slot, tombstoned: a definite miss — inserts
                // always reuse a key's own tombstone, so the key cannot
                // live further down the chain.
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }

    /// Writer-side: publish `key → ptr`, reusing the key's own tombstone
    /// if one exists (required for reader probes to stop at a key match),
    /// else the first tombstone, else the first empty slot. Must run
    /// inside an odd sequence window.
    fn publish(&self, key: u128, ptr: *mut CompiledEntry) -> usize {
        let (hi, lo) = ((key >> 64) as u64, key as u64);
        let mut idx = self.home(key);
        let mut reusable: Option<usize> = None;
        for _ in 0..=self.mask {
            let slot = &self.slots[idx];
            match slot.state.load(Ordering::Relaxed) {
                SLOT_EMPTY => {
                    let target = reusable.unwrap_or(idx);
                    self.fill(target, hi, lo, ptr);
                    return target;
                }
                SLOT_TOMB => {
                    if slot.key_hi.load(Ordering::Relaxed) == hi
                        && slot.key_lo.load(Ordering::Relaxed) == lo
                    {
                        self.fill(idx, hi, lo, ptr);
                        return idx;
                    }
                    if reusable.is_none() {
                        reusable = Some(idx);
                    }
                }
                _ => {}
            }
            idx = (idx + 1) & self.mask;
        }
        let target = reusable.expect("read table over half empty by construction");
        self.fill(target, hi, lo, ptr);
        target
    }

    fn fill(&self, idx: usize, hi: u64, lo: u64, ptr: *mut CompiledEntry) {
        let slot = &self.slots[idx];
        slot.key_hi.store(hi, Ordering::Relaxed);
        slot.key_lo.store(lo, Ordering::Relaxed);
        slot.hits.store(0, Ordering::Relaxed);
        slot.ptr.store(ptr, Ordering::Release);
        slot.state.store(SLOT_FULL, Ordering::Release);
    }

    /// Writer-side: tombstone a slot (key left behind on purpose). Must
    /// run inside an odd sequence window.
    fn unpublish(&self, idx: usize) {
        let slot = &self.slots[idx];
        slot.state.store(SLOT_TOMB, Ordering::Release);
        slot.ptr.store(std::ptr::null_mut(), Ordering::Release);
    }

    /// Writer-side: wipe every slot ahead of a republish (tombstone
    /// compaction). Must run inside an odd sequence window.
    fn clear(&self) {
        for slot in &self.slots {
            slot.state.store(SLOT_EMPTY, Ordering::Relaxed);
            slot.ptr.store(std::ptr::null_mut(), Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// The write side: ARC lists over a slab
// ---------------------------------------------------------------------

const NIL: usize = usize::MAX;

/// ARC list ids. `T1`/`T2` hold residents (value + read-table slot);
/// `B1`/`B2` hold ghosts (key only).
const T1: usize = 0;
const T2: usize = 1;
const B1: usize = 2;
const B2: usize = 3;

struct Node {
    key: u128,
    /// `Some` for residents, `None` for ghosts.
    value: Option<Arc<CompiledEntry>>,
    /// Read-table slot of a resident; `NIL` for ghosts.
    slot: usize,
    list: usize,
    prev: usize,
    next: usize,
}

#[derive(Clone, Copy)]
struct ListHead {
    head: usize,
    tail: usize,
    len: usize,
}

impl ListHead {
    const fn new() -> ListHead {
        ListHead {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// One shard's authoritative state, guarded by the write mutex.
struct WriteState {
    map: HashMap<u128, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    lists: [ListHead; 4],
    /// ARC's adaptation target for `|T1|`.
    p: usize,
    capacity: usize,
    /// Tombstones currently in the read table; a rebuild clears them.
    tombs: usize,
    evictions: u64,
    limbo: Limbo<Arc<CompiledEntry>>,
}

impl WriteState {
    fn new(capacity: usize) -> WriteState {
        WriteState {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            lists: [ListHead::new(); 4],
            p: 0,
            capacity,
            tombs: 0,
            evictions: 0,
            limbo: Limbo::default(),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (list, prev, next) = {
            let n = &self.slab[idx];
            (n.list, n.prev, n.next)
        };
        if prev == NIL {
            self.lists[list].head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.lists[list].tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.lists[list].len -= 1;
    }

    /// Push `idx` at the MRU (head) end of `list`.
    fn push_mru(&mut self, list: usize, idx: usize) {
        let head = self.lists[list].head;
        {
            let n = &mut self.slab[idx];
            n.list = list;
            n.prev = NIL;
            n.next = head;
        }
        if head != NIL {
            self.slab[head].prev = idx;
        }
        self.lists[list].head = idx;
        if self.lists[list].tail == NIL {
            self.lists[list].tail = idx;
        }
        self.lists[list].len += 1;
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = node;
                idx
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        }
    }

    /// Delete a ghost node entirely (its key is forgotten).
    fn drop_ghost(&mut self, idx: usize) {
        debug_assert!(self.slab[idx].value.is_none());
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn resident_len(&self) -> usize {
        self.lists[T1].len + self.lists[T2].len
    }

    /// ARC hit: promote a resident to `T2` MRU.
    fn promote(&mut self, idx: usize) {
        self.unlink(idx);
        self.push_mru(T2, idx);
    }

    /// ARC REPLACE: demote one resident to its ghost list, tombstone its
    /// read slot, and queue its `Arc` for retirement. Returns the demoted
    /// key. Must run inside an odd sequence window.
    fn replace(&mut self, in_b2: bool, table: &ReadTable) -> Option<(u128, Arc<CompiledEntry>)> {
        let t1 = self.lists[T1].len;
        let from = if t1 >= 1 && ((in_b2 && t1 == self.p) || t1 > self.p) {
            T1
        } else if self.lists[T2].len >= 1 {
            T2
        } else if t1 >= 1 {
            T1
        } else {
            return None;
        };
        let victim = self.lists[from].tail;
        debug_assert_ne!(victim, NIL);
        self.unlink(victim);
        let ghost_list = if from == T1 { B1 } else { B2 };
        let value = self.slab[victim]
            .value
            .take()
            .expect("resident has a value");
        let slot = std::mem::replace(&mut self.slab[victim].slot, NIL);
        table.unpublish(slot);
        self.tombs += 1;
        self.push_mru(ghost_list, victim);
        self.evictions += 1;
        C_L2_EVICTIONS.add(1);
        Some((self.slab[victim].key, value))
    }

    /// Drain the read table's per-slot hit counters into ARC promotions
    /// ("batched recency"). Slot order approximates access order; ARC
    /// only needs "was this resident re-referenced since the last write",
    /// which a nonzero counter answers exactly.
    fn drain_recency(&mut self, table: &ReadTable) {
        for idx in 0..table.slots.len() {
            let slot = &table.slots[idx];
            if slot.state.load(Ordering::Relaxed) != SLOT_FULL
                || slot.hits.load(Ordering::Relaxed) == 0
            {
                continue;
            }
            slot.hits.store(0, Ordering::Relaxed);
            let key = (u128::from(slot.key_hi.load(Ordering::Relaxed)) << 64)
                | u128::from(slot.key_lo.load(Ordering::Relaxed));
            if let Some(&node) = self.map.get(&key) {
                if self.slab[node].value.is_some() {
                    self.promote(node);
                }
            }
        }
    }

    /// Republish every resident into a cleared table, dropping all
    /// tombstones. Must run inside an odd sequence window.
    fn rebuild_table(&mut self, table: &ReadTable) {
        table.clear();
        self.tombs = 0;
        for list in [T1, T2] {
            let mut cursor = self.lists[list].head;
            while cursor != NIL {
                let key = self.slab[cursor].key;
                let ptr = Arc::as_ptr(self.slab[cursor].value.as_ref().expect("resident"))
                    as *mut CompiledEntry;
                self.slab[cursor].slot = table.publish(key, ptr);
                cursor = self.slab[cursor].next;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The shard: seqlock + table + write state
// ---------------------------------------------------------------------

struct CacheShard {
    /// Seqlock word: odd while a writer is mutating the read table.
    seq: AtomicU64,
    table: ReadTable,
    /// Reader-side monotone counters.
    hits: AtomicU64,
    misses: AtomicU64,
    read_retries: AtomicU64,
    read_fallbacks: AtomicU64,
    /// Writer-side mirrors, stored inside the odd window so `stats` can
    /// read a coherent (entries, evictions) pair through the seqlock.
    w_entries: AtomicU64,
    w_evictions: AtomicU64,
    capacity: usize,
    write: Mutex<WriteState>,
}

impl CacheShard {
    fn new(capacity: usize) -> CacheShard {
        CacheShard {
            seq: AtomicU64::new(0),
            table: ReadTable::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            read_fallbacks: AtomicU64::new(0),
            w_entries: AtomicU64::new(0),
            w_evictions: AtomicU64::new(0),
            capacity,
            write: Mutex::new(WriteState::new(capacity)),
        }
    }

    /// Open the odd window. Caller must hold the write mutex.
    fn begin_write(&self) -> u64 {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "window opened twice");
        self.seq.store(s + 1, Ordering::Relaxed);
        // Keep the table mutations inside the window: no store below may
        // be reordered before the odd store above.
        fence(Ordering::Release);
        s
    }

    /// Close the window opened by [`CacheShard::begin_write`].
    fn end_write(&self, s: u64) {
        self.seq.store(s + 2, Ordering::Release);
    }

    /// One optimistic probe attempt: `Ok(found)` if the window was
    /// stable, `Err(())` if a writer interfered.
    #[inline]
    fn try_read(&self, key: u128) -> Result<Option<(usize, *const CompiledEntry)>, ()> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return Err(());
        }
        let found = self.table.probe(key);
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        if s1 == s2 {
            Ok(found)
        } else {
            Err(())
        }
    }

    /// The lock-free read path. Returns `Err(())` only when every retry
    /// saw an unstable window (caller falls back to the mutex).
    fn read(&self, key: u128, count: bool) -> Result<Option<Arc<CompiledEntry>>, ()> {
        let _pin = epoch::pin();
        for _ in 0..MAX_READ_RETRIES {
            match self.try_read(key) {
                Ok(Some((slot, ptr))) => {
                    // SAFETY: the pin was taken before the probe, so the
                    // Arc backing `ptr` is still alive in the shard map or
                    // its limbo (see the epoch module's argument), and the
                    // validated window rules out a torn key/ptr pair.
                    let value = unsafe {
                        Arc::increment_strong_count(ptr);
                        Arc::from_raw(ptr)
                    };
                    if count {
                        self.table.slots[slot].hits.fetch_add(1, Ordering::Relaxed);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        C_L2_HITS.add(1);
                    }
                    return Ok(Some(value));
                }
                Ok(None) => {
                    if count {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        C_L2_MISSES.add(1);
                    }
                    return Ok(None);
                }
                Err(()) => {
                    self.read_retries.fetch_add(1, Ordering::Relaxed);
                    C_L2_READ_RETRIES.add(1);
                    std::hint::spin_loop();
                }
            }
        }
        Err(())
    }

    /// Mutex fallback for a contended read. Counts like the lock-free
    /// path and still refreshes ARC recency (directly — we hold the
    /// lock anyway).
    fn read_locked(&self, key: u128, count: bool) -> Option<Arc<CompiledEntry>> {
        self.read_fallbacks.fetch_add(1, Ordering::Relaxed);
        C_L2_READ_FALLBACKS.add(1);
        let mut state = self.write.lock().expect("cache shard poisoned");
        let resident = state
            .map
            .get(&key)
            .copied()
            .filter(|&idx| state.slab[idx].value.is_some());
        match resident {
            Some(idx) => {
                if count {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    C_L2_HITS.add(1);
                    state.promote(idx);
                }
                state.slab[idx].value.clone()
            }
            None => {
                if count {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    C_L2_MISSES.add(1);
                }
                None
            }
        }
    }

    fn get(&self, key: u128, count: bool) -> Option<Arc<CompiledEntry>> {
        match self.read(key, count) {
            Ok(found) => found,
            Err(()) => self.read_locked(key, count),
        }
    }

    /// Insert under the write mutex, running the ARC miss algorithm.
    /// Returns the resident entry and the key of the resident this
    /// insert pushed out of residency, if any.
    fn insert(&self, key: u128, value: Arc<CompiledEntry>) -> (Arc<CompiledEntry>, Option<u128>) {
        let mut state = self.write.lock().expect("cache shard poisoned");
        let state = &mut *state;
        state.drain_recency(&self.table);

        if let Some(&idx) = state.map.get(&key) {
            if state.slab[idx].value.is_some() {
                // Racing compilers can insert the same fingerprint twice;
                // keep the incumbent (first insert wins), refresh recency.
                state.promote(idx);
                return (state.slab[idx].value.clone().expect("resident"), None);
            }
            // Ghost hit: adapt p, make room, resurrect as a T2 resident.
            let in_b2 = state.slab[idx].list == B2;
            let (b1, b2) = (state.lists[B1].len, state.lists[B2].len);
            if in_b2 {
                state.p = state.p.saturating_sub((b1 / b2.max(1)).max(1));
            } else {
                state.p = (state.p + (b2 / b1.max(1)).max(1)).min(state.capacity);
            }
            let seq = self.begin_write();
            let demoted = state.replace(in_b2, &self.table);
            state.unlink(idx);
            let ptr = Arc::as_ptr(&value) as *mut CompiledEntry;
            state.slab[idx].value = Some(Arc::clone(&value));
            state.slab[idx].slot = self.table.publish(key, ptr);
            state.push_mru(T2, idx);
            self.maybe_rebuild(state);
            self.mirror_stats(state);
            self.end_write(seq);
            let evicted = demoted.map(|(victim, arc)| {
                state.limbo.retire(arc);
                victim
            });
            return (value, evicted);
        }

        // Fresh miss: ARC case IV.
        let l1 = state.lists[T1].len + state.lists[B1].len;
        let total = l1 + state.lists[T2].len + state.lists[B2].len;
        let seq = self.begin_write();
        let demoted = if l1 == state.capacity {
            if state.lists[T1].len < state.capacity {
                let ghost = state.lists[B1].tail;
                state.drop_ghost(ghost);
                state.replace(false, &self.table)
            } else {
                // B1 empty and T1 full: evict the T1 LRU outright — it
                // leaves no ghost behind.
                let victim = self.lists_evict_outright(state);
                Some(victim)
            }
        } else if total >= state.capacity {
            if total == 2 * state.capacity {
                let ghost = state.lists[B2].tail;
                state.drop_ghost(ghost);
            }
            state.replace(false, &self.table)
        } else {
            None
        };
        let ptr = Arc::as_ptr(&value) as *mut CompiledEntry;
        let slot = self.table.publish(key, ptr);
        let idx = state.alloc(Node {
            key,
            value: Some(Arc::clone(&value)),
            slot,
            list: T1,
            prev: NIL,
            next: NIL,
        });
        state.map.insert(key, idx);
        state.push_mru(T1, idx);
        self.maybe_rebuild(state);
        self.mirror_stats(state);
        self.end_write(seq);
        let evicted = demoted.map(|(victim, arc)| {
            state.limbo.retire(arc);
            victim
        });
        (value, evicted)
    }

    /// Case IV(A) with `B1` empty: the `T1` LRU leaves the cache without
    /// a ghost. Must run inside an odd sequence window.
    fn lists_evict_outright(&self, state: &mut WriteState) -> (u128, Arc<CompiledEntry>) {
        let victim = state.lists[T1].tail;
        debug_assert_ne!(victim, NIL);
        state.unlink(victim);
        let key = state.slab[victim].key;
        let value = state.slab[victim].value.take().expect("resident");
        self.table.unpublish(state.slab[victim].slot);
        state.tombs += 1;
        state.map.remove(&key);
        state.free.push(victim);
        state.evictions += 1;
        C_L2_EVICTIONS.add(1);
        (key, value)
    }

    /// Compact the read table once tombstones dominate. Must run inside
    /// an odd sequence window.
    fn maybe_rebuild(&self, state: &mut WriteState) {
        if state.tombs > self.table.slots.len() / 4 {
            state.rebuild_table(&self.table);
        }
    }

    /// Refresh the seq-protected stats mirror. Must run inside an odd
    /// sequence window.
    fn mirror_stats(&self, state: &WriteState) {
        self.w_entries
            .store(state.resident_len() as u64, Ordering::Relaxed);
        self.w_evictions.store(state.evictions, Ordering::Relaxed);
    }

    /// Read the (entries, evictions) mirror coherently.
    fn stats_snapshot(&self) -> (u64, u64) {
        for _ in 0..MAX_READ_RETRIES {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let entries = self.w_entries.load(Ordering::Relaxed);
                let evictions = self.w_evictions.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return (entries, evictions);
                }
            }
            std::hint::spin_loop();
        }
        // Contended: serialize against the writer instead.
        let state = self.write.lock().expect("cache shard poisoned");
        (state.resident_len() as u64, state.evictions)
    }
}

/// The sharded cache.
pub struct ShardedCache {
    shards: Vec<CacheShard>,
}

impl ShardedCache {
    pub fn new(config: CacheConfig) -> ShardedCache {
        let shards = config.shards.max(1);
        // Distribute capacity across shards, at least one entry each.
        let per_shard = config.capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| CacheShard::new(per_shard)).collect(),
        }
    }

    fn shard(&self, fingerprint: Fingerprint) -> &CacheShard {
        &self.shards[fingerprint.shard(self.shards.len())]
    }

    /// Look up a fingerprint, recording recency. Counts a hit or a miss.
    /// The warm path acquires no lock (see the module docs).
    pub fn get(&self, fingerprint: Fingerprint) -> Option<Arc<CompiledEntry>> {
        self.shard(fingerprint).get(fingerprint.0, true)
    }

    /// Insert a compiled entry, demoting a resident per ARC if full.
    /// Returns the entry now resident under the key: if racing compilers
    /// insert the same fingerprint, the incumbent is kept and returned, so
    /// every caller ends up serving the same entry.
    pub fn insert(
        &self,
        fingerprint: Fingerprint,
        value: Arc<CompiledEntry>,
    ) -> Arc<CompiledEntry> {
        self.insert_reporting(fingerprint, value).0
    }

    /// [`ShardedCache::insert`] that also reports the fingerprint this
    /// insert evicted from residency, if any — the hook the service uses
    /// to invalidate L1 memo entries the moment their L2 entry stops
    /// being servable (a key demoted to a ghost list is *not* servable;
    /// ghosts only remember history).
    pub fn insert_reporting(
        &self,
        fingerprint: Fingerprint,
        value: Arc<CompiledEntry>,
    ) -> (Arc<CompiledEntry>, Option<Fingerprint>) {
        let (resident, evicted) = self.shard(fingerprint).insert(fingerprint.0, value);
        (resident, evicted.map(Fingerprint))
    }

    /// Look up without touching recency or counters. Used where a lookup
    /// is a consistency re-check rather than request traffic (e.g. the
    /// owner's post-claim re-check in the in-flight path).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Arc<CompiledEntry>> {
        self.shard(fingerprint).get(fingerprint.0, false)
    }

    /// Peek without touching recency or counters (used by tests/stats).
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.peek(fingerprint).is_some()
    }

    /// Aggregate counters across shards. Each shard's entries/evictions
    /// pair is read through its sequence window (coherent even against an
    /// in-flight eviction); hits/misses are monotone atomics.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            shards: self.shards.len(),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let (entries, evictions) = shard.stats_snapshot();
            stats.entries += entries as usize;
            stats.evictions += evictions;
            stats.capacity += shard.capacity;
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.read_retries += shard.read_retries.load(Ordering::Relaxed);
            stats.read_fallbacks += shard.read_fallbacks.load(Ordering::Relaxed);
        }
        stats
    }

    /// The representative SQL of every resident entry, shard by shard —
    /// the warm-cache persistence hook: recompiling these texts in a
    /// fresh process reproduces the cache's diagram set (entries are pure
    /// functions of their representative's text). Takes each shard's
    /// write lock briefly; order is unspecified.
    pub fn representatives(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let state = shard
                .write
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for node in &state.slab {
                if let Some(value) = &node.value {
                    out.push(Arc::clone(value.representative_shared()));
                }
            }
        }
        out
    }

    /// Total reads that fell back to a mutex (the zero-lock test hook).
    pub fn read_fallbacks(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read_fallbacks.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_representative;
    use crate::fingerprint::fingerprint_sql;
    use queryvis::QueryVisOptions;

    fn entry(sql: &str) -> (Fingerprint, Arc<CompiledEntry>) {
        let fq = fingerprint_sql(sql, QueryVisOptions::default()).unwrap();
        let fp = fq.fingerprint;
        (fp, Arc::new(compile_representative(fq)))
    }

    fn synthetic_key(i: u64) -> Fingerprint {
        Fingerprint(u128::from(i) << 64 | u128::from(i))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ShardedCache::new(CacheConfig::default());
        let (fp, value) = entry("SELECT T.a FROM T");
        assert!(cache.get(fp).is_none());
        cache.insert(fp, value);
        assert!(cache.get(fp).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), Some(0.5));
        assert_eq!(stats.read_fallbacks, 0, "uncontended reads never lock");
    }

    #[test]
    fn recently_hit_entry_survives_eviction_pressure() {
        // Single shard of capacity 2 so recency order is easy to steer.
        let cache = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let (a, b, c) = (synthetic_key(1), synthetic_key(2), synthetic_key(3));
        cache.insert(a, Arc::clone(&value));
        cache.insert(b, Arc::clone(&value));
        // Touch `a` so `b` is the replacement victim.
        assert!(cache.get(a).is_some());
        cache.insert(c, Arc::clone(&value));
        assert!(cache.contains(a));
        assert!(!cache.contains(b), "b was never re-referenced: demoted");
        assert!(cache.contains(c));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn demoted_key_is_reported_for_l1_invalidation() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let (a, b, c) = (synthetic_key(1), synthetic_key(2), synthetic_key(3));
        cache.insert(a, Arc::clone(&value));
        cache.insert(b, Arc::clone(&value));
        let (_, evicted) = cache.insert_reporting(c, Arc::clone(&value));
        assert_eq!(evicted, Some(a), "a was LRU of T1");
        // A ghost is not servable.
        assert!(!cache.contains(a));
    }

    #[test]
    fn reinsert_keeps_incumbent_and_counts_nothing() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 4,
            shards: 1,
        });
        let (fp, value) = entry("SELECT T.a FROM T");
        cache.insert(fp, Arc::clone(&value));
        let incumbent = cache.get(fp).unwrap();
        let (_, other) = entry("SELECT T.a FROM T");
        let resident = cache.insert(fp, other);
        assert!(
            Arc::ptr_eq(&resident, &incumbent),
            "insert returns incumbent"
        );
        assert!(Arc::ptr_eq(&cache.get(fp).unwrap(), &incumbent));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn churn_is_bounded_by_twice_capacity() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        for i in 0..100 {
            cache.insert(synthetic_key(i), Arc::clone(&value));
        }
        let state = cache.shards[0].write.lock().unwrap();
        // Residents + ghosts are bounded by 2c; the slab reuses freed
        // ghost nodes instead of growing with traffic.
        assert!(
            state.map.len() <= 2 * state.capacity,
            "map grew: {}",
            state.map.len()
        );
        assert!(
            state.slab.len() <= 2 * state.capacity + 1,
            "slab grew: {}",
            state.slab.len()
        );
        assert_eq!(state.resident_len(), 2);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 64,
            shards: 8,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        for i in 0..64u64 {
            cache.insert(Fingerprint(u128::from(i) << 64), Arc::clone(&value));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.shards, 8);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn ghost_hit_resurrects_into_t2_and_adapts() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let (a, b, c) = (synthetic_key(1), synthetic_key(2), synthetic_key(3));
        cache.insert(a, Arc::clone(&value));
        cache.insert(b, Arc::clone(&value));
        // Promote a to T2 so the next miss demotes b into the B1 ghost
        // list (with all residents in T1, eviction is outright instead).
        assert!(cache.get(a).is_some());
        cache.insert(c, Arc::clone(&value)); // demotes b → B1 ghost
        assert!(!cache.contains(b));
        // Reinserting b is a B1 ghost hit: p grows, b resurrects in T2.
        cache.insert(b, Arc::clone(&value));
        assert!(cache.contains(b));
        let state = cache.shards[0].write.lock().unwrap();
        assert!(state.p >= 1, "B1 hit must grow p (got {})", state.p);
        let b_idx = state.map[&b.0];
        assert_eq!(state.slab[b_idx].list, T2, "ghost hit lands in T2");
    }

    #[test]
    fn sequential_scan_cannot_flush_the_rereferenced_set() {
        // The scan-resistance property that motivates ARC: a hot set that
        // keeps getting re-referenced survives a long one-shot sweep that
        // would flush an LRU of the same size.
        let cache = ShardedCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let hot: Vec<Fingerprint> = (0..4).map(synthetic_key).collect();
        for fp in &hot {
            cache.insert(*fp, Arc::clone(&value));
        }
        for _ in 0..3 {
            for fp in &hot {
                assert!(cache.get(*fp).is_some());
            }
        }
        // One-shot sweep of 100 cold keys, never re-referenced.
        for i in 0..100 {
            cache.insert(synthetic_key(1000 + i), Arc::clone(&value));
        }
        for fp in &hot {
            assert!(
                cache.contains(*fp),
                "hot key {fp:?} flushed by a one-shot scan"
            );
        }
    }

    #[test]
    fn contended_window_falls_back_to_the_mutex_and_stays_correct() {
        let cache = ShardedCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let key = synthetic_key(7);
        cache.insert(key, Arc::clone(&value));
        // Hold the window odd without going through insert: every read
        // must exhaust its retries, take the fallback, and still answer.
        let shard = &cache.shards[0];
        let seq = shard.begin_write();
        assert!(cache.get(key).is_some());
        assert!(cache.get(synthetic_key(8)).is_none());
        shard.end_write(seq);
        let stats = cache.stats();
        assert_eq!(stats.read_fallbacks, 2);
        assert!(stats.read_retries >= 2 * u64::from(MAX_READ_RETRIES));
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Window closed: reads are lock-free again.
        assert!(cache.get(key).is_some());
        assert_eq!(cache.stats().read_fallbacks, 2);
    }

    #[test]
    fn stats_snapshot_is_coherent_under_writer_churn() {
        use std::sync::atomic::AtomicBool;
        let cache = ShardedCache::new(CacheConfig {
            capacity: 4,
            shards: 1,
        });
        let (_, value) = entry("SELECT T.a FROM T");
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..5_000u64 {
                    cache.insert(synthetic_key(i % 64), Arc::clone(&value));
                }
                stop.store(true, Ordering::Relaxed);
            });
            scope.spawn(|| {
                let mut last_evictions = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let stats = cache.stats();
                    assert!(stats.entries <= stats.capacity);
                    assert!(stats.evictions >= last_evictions, "evictions went back");
                    last_evictions = stats.evictions;
                }
            });
        });
    }
}
