//! Fault injection hooks for the robustness harnesses.
//!
//! The serving layer promises that a poisoned compile fails one request,
//! never the process. That promise is only testable if a compile *can* be
//! poisoned on demand, so this module carries a single injection point:
//! an armed "panic token". While armed, any compile whose SQL contains
//! the token panics mid-pipeline — downstream machinery (the service's
//! `catch_unwind`, the in-flight `FlightGuard`, the server's connection
//! loop) must then contain the blast radius.
//!
//! The hook is disarmed by default and costs one relaxed atomic load per
//! compile when disarmed. It is deliberately compiled into release builds:
//! the fault-injection suite (`faultgen`) drives a *release-mode* server
//! binary, which arms the hook from the `QUERYVIS_FAULT_COMPILE_PANIC`
//! environment variable at startup. Nothing arms it in production paths.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable the server binary arms the hook from.
pub const COMPILE_PANIC_ENV: &str = "QUERYVIS_FAULT_COMPILE_PANIC";

static ARMED: AtomicBool = AtomicBool::new(false);
static TOKEN: Mutex<Option<String>> = Mutex::new(None);

/// Arm the compile-panic hook: any compile whose SQL contains `token`
/// panics. An empty token is ignored (never matches).
pub fn arm_compile_panic(token: &str) {
    if token.is_empty() {
        return;
    }
    *TOKEN.lock().unwrap_or_else(|e| e.into_inner()) = Some(token.to_string());
    ARMED.store(true, Ordering::Release);
}

/// Disarm the hook (tests restore the default between cases).
pub fn disarm_compile_panic() {
    ARMED.store(false, Ordering::Release);
    *TOKEN.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Arm the hook from [`COMPILE_PANIC_ENV`] when set (binary startup).
pub fn arm_from_env() {
    if let Ok(token) = std::env::var(COMPILE_PANIC_ENV) {
        arm_compile_panic(&token);
    }
}

/// The injection point: called at the top of every compile. One relaxed
/// load when disarmed.
#[inline]
pub(crate) fn maybe_panic_compile(sql: &str) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let token = TOKEN.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(token) = token.as_deref() {
        if sql.contains(token) {
            panic!("injected compile panic (token {token:?})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hook_is_inert_and_armed_hook_fires() {
        disarm_compile_panic();
        maybe_panic_compile("SELECT T.a FROM T");
        arm_compile_panic("BOOM_TOKEN");
        maybe_panic_compile("SELECT T.a FROM T"); // no token, no panic
        let caught = std::panic::catch_unwind(|| maybe_panic_compile("SELECT /*BOOM_TOKEN*/ 1"));
        disarm_compile_panic();
        assert!(caught.is_err(), "armed token must panic the compile");
        maybe_panic_compile("SELECT /*BOOM_TOKEN*/ 1"); // disarmed again
    }
}
