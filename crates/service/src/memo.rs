//! The L1 text→fingerprint memo: repeat SQL texts skip the frontend.
//!
//! BENCH_service.json showed that a warm cache *hit* still paid nearly the
//! whole request cost in lex→parse→translate→canonicalize — the L2
//! diagram cache removes compilation, not fingerprinting. This module
//! removes fingerprinting for *repeat texts*: a sharded memo keyed by the
//! **normalized bytes** of the raw SQL maps straight to the pattern
//! [`Fingerprint`] (plus the §4.8 word count, the only other per-request
//! value the frontend produces), so a memoized request goes directly to
//! the L2 entry lookup.
//!
//! ## Normalization
//!
//! The key is produced by a single cheap byte-level scan — no
//! tokenization into `Token`s, no interning, no parse:
//!
//! * whitespace runs and comments (`-- …`, nested `/* … */`) disappear;
//!   tokens are joined by exactly one space;
//! * words that spell a keyword (case-insensitively) are folded to the
//!   keyword's canonical spelling (`select` → `SELECT`, and `SOME` →
//!   `ANY`, exactly mirroring `Keyword::lookup`); all other identifiers
//!   are kept verbatim (identifier case is significant to the pipeline);
//! * string literals are kept verbatim, quotes and `''` escapes included,
//!   so distinct literals never share a key; numbers likewise;
//! * `!=` folds to its lexer normalization `<>`; a single *trailing*
//!   semicolon is dropped (the parser ignores exactly one).
//!
//! **Soundness.** The scan replicates the lexer's token boundaries
//! (identifier/number/operator/comment rules are byte-for-byte the same,
//! via the `queryvis_sql::lexer` predicates), so two texts with equal
//! normalized bytes produce identical token streams — and therefore equal
//! fingerprints — or fail identically. Equality is **exact**: lookups
//! compare normalized bytes, never just a hash, so the memo can only ever
//! repeat what the full frontend already computed for an equal-modulo-
//! normalization text. The memo is populated only after a successful
//! full-frontend run, and texts the lexer rejects at scan level
//! (unterminated block comment or string literal) are flagged by the
//! scanner and can never match a memoized key — a malformed text always
//! reaches the full frontend and produces its error deterministically,
//! independent of cache state.
//!
//! ## Lifecycle
//!
//! Entries are bounded per shard with FIFO replacement (replacement order
//! does not affect response bytes — the memo only short-circuits work) and
//! are **invalidated eagerly when L2 evicts their fingerprint**, via a
//! per-shard reverse index, so the memo never keeps pointing at patterns
//! the diagram cache has dropped. A lost race (eviction between L1 lookup
//! and L2 get) falls back to the full frontend, which re-publishes both
//! levels.

use crate::epoch::{self, Limbo};
use crate::fingerprint::Fingerprint;
use queryvis_sql::lexer::is_ident_start;
use queryvis_sql::scan as swar;
use queryvis_sql::token::Keyword;
use queryvis_telemetry::CounterDef;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Global telemetry mirror of coherence invalidations (DESIGN.md §6);
/// `MemoStats` remains the per-instance view. L1 *hits* are counted by the
/// service, which knows whether the resolved fingerprint was servable.
static C_L1_INVALIDATIONS: CounterDef = CounterDef::new("l1_invalidations");
static C_L1_READ_RETRIES: CounterDef = CounterDef::new("l1_read_retries");
static C_L1_READ_FALLBACKS: CounterDef = CounterDef::new("l1_read_fallbacks");

/// Optimistic probe attempts before a lookup gives up on the seqlock and
/// takes the shard mutex (mirrors the L2 cache's bound).
const MAX_READ_RETRIES: u32 = 64;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

// ---------------------------------------------------------------------
// Normalization: one scanner, three consumers (bytes / hash / compare)
// ---------------------------------------------------------------------

/// Separator/flush state around the token scan: exactly one `b' '`
/// between tokens, semicolons held back so a single trailing one drops.
struct Sink<'a> {
    emit: &'a mut dyn FnMut(&[u8]),
    started: bool,
    pending_semis: u32,
}

impl Sink<'_> {
    fn raw(&mut self, bytes: &[u8]) {
        if self.started {
            (self.emit)(b" ");
        }
        self.started = true;
        (self.emit)(bytes);
    }

    fn token(&mut self, bytes: &[u8]) {
        self.flush_semis();
        self.raw(bytes);
    }

    fn flush_semis(&mut self) {
        while self.pending_semis > 0 {
            self.pending_semis -= 1;
            self.raw(b";");
        }
    }

    fn finish(&mut self) {
        // One trailing `;` is parser-ignored — drop it so `…;` and `…`
        // share a key. Two or more are a parse error and must stay
        // distinct from both.
        if self.pending_semis != 1 {
            self.flush_semis();
        }
    }
}

/// The normalization scanner: streams the normalized byte sequence of
/// `source` into `emit`, chunk by chunk. Token boundaries replicate the
/// lexer exactly (see the module docs for the soundness argument).
///
/// Returns `false` if the text contains a construct the lexer rejects at
/// scan level (an unterminated block comment or string literal). Such a
/// text has no trustworthy normalization — dropping the dangling rest
/// could make it byte-equal to a *valid* memoized text — so lookups must
/// treat `false` as "never matches" and the insert path must never be
/// reached with one (it only runs after a successful lex).
#[must_use]
fn scan(source: &str, emit: &mut dyn FnMut(&[u8])) -> bool {
    let bytes = source.as_bytes();
    let mut sink = Sink {
        emit,
        started: false,
        pending_semis: 0,
    };
    let mut clean = true;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i = swar::ws_run_end(bytes, i + 1),
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                i = swar::find_byte(bytes, i + 2, b'\n').unwrap_or(bytes.len());
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while depth > 0 {
                    // Only `*` and `/` can open or close a delimiter, so
                    // the scan leaps between them.
                    match swar::find_byte2(bytes, i, b'*', b'/') {
                        Some(at) if at + 1 < bytes.len() => match (bytes[at], bytes[at + 1]) {
                            (b'/', b'*') => {
                                depth += 1;
                                i = at + 2;
                            }
                            (b'*', b'/') => {
                                depth -= 1;
                                i = at + 2;
                            }
                            _ => i = at + 1,
                        },
                        _ => {
                            // Unterminated comment: the lexer rejects this
                            // text. Mark the scan dirty so it can never
                            // match a memoized (necessarily valid) key.
                            clean = false;
                            i = bytes.len();
                            break;
                        }
                    }
                }
            }
            b'\'' => {
                // String literal, verbatim (quotes and '' escapes kept).
                let start = i;
                let mut terminated = false;
                i += 1;
                while let Some(at) = swar::find_byte(bytes, i, b'\'') {
                    if at + 1 < bytes.len() && bytes[at + 1] == b'\'' {
                        i = at + 2;
                    } else {
                        i = at + 1;
                        terminated = true;
                        break;
                    }
                }
                if !terminated {
                    // Unterminated literal: lexer error; see above.
                    clean = false;
                    i = bytes.len();
                }
                sink.token(&bytes[start..i]);
            }
            b'0'..=b'9' => {
                // Number, verbatim; the `.`-absorption rule matches the
                // lexer (`3.5` is one token, `L1.a`'s dot is not).
                let start = i;
                let mut end = swar::digit_run_end(bytes, i + 1);
                if end + 1 < bytes.len() && bytes[end] == b'.' && bytes[end + 1].is_ascii_digit() {
                    end = swar::digit_run_end(bytes, end + 1);
                }
                i = end;
                sink.token(&bytes[start..i]);
            }
            b';' => {
                sink.pending_semis += 1;
                i += 1;
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                sink.token(b"<>");
                i += 2;
            }
            b'<' if i + 1 < bytes.len() && matches!(bytes[i + 1], b'>' | b'=') => {
                sink.token(&bytes[i..i + 2]);
                i += 2;
            }
            b'>' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                sink.token(&bytes[i..i + 2]);
                i += 2;
            }
            _ if is_ident_start(b) => {
                let start = i;
                i = swar::ident_run_end(bytes, i + 1);
                let word = &source[start..i];
                match Keyword::lookup(word) {
                    Some(kw) => sink.token(kw.as_str().as_bytes()),
                    None => sink.token(word.as_bytes()),
                }
            }
            _ => {
                // Any other byte is a lex error downstream; keep it
                // verbatim so distinct broken texts stay distinct.
                sink.token(&bytes[i..i + 1]);
                i += 1;
            }
        }
    }
    sink.finish();
    clean
}

/// The normalized byte sequence, materialized (insert path only — which
/// runs strictly after a successful lex, so the scan is always clean
/// there).
pub fn normalized_bytes(sql: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(sql.len());
    let clean = scan(sql, &mut |chunk| out.extend_from_slice(chunk));
    debug_assert!(clean, "memo inserts only happen after a successful lex");
    out
}

/// FNV-1a/64 of the normalized byte sequence, computed streaming — the
/// lookup path allocates nothing. `None` when the text has no
/// trustworthy normalization (unterminated comment/string): such a text
/// must take the full frontend and fail there.
fn normalized_hash(sql: &str) -> Option<u64> {
    let mut hash = FNV64_OFFSET;
    let clean = scan(sql, &mut |chunk| {
        for &b in chunk {
            hash = (hash ^ u64::from(b)).wrapping_mul(FNV64_PRIME);
        }
    });
    clean.then_some(hash)
}

fn hash_of(normalized: &[u8]) -> u64 {
    let mut hash = FNV64_OFFSET;
    for &b in normalized {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// Streaming equality of `sql`'s normalization against a stored key,
/// without materializing the normalization. A dirty scan (unterminated
/// comment/string) never matches: stored keys only come from texts the
/// lexer accepted.
fn normalized_matches(sql: &str, key: &[u8]) -> bool {
    let mut offset = 0usize;
    let mut ok = true;
    let clean = scan(sql, &mut |chunk| {
        if ok && key[offset..].starts_with(chunk) {
            offset += chunk.len();
        } else {
            ok = false;
        }
    });
    clean && ok && offset == key.len()
}

// ---------------------------------------------------------------------
// The sharded memo
// ---------------------------------------------------------------------

/// L1 memo configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemoConfig {
    /// Total entries across all shards. Sized larger than the L2 cache by
    /// default: many distinct texts share one pattern entry.
    pub capacity: usize,
    /// Number of independent shards.
    pub shards: usize,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            capacity: 4 * 4096,
            shards: 16,
        }
    }
}

/// Aggregated memo counters (entries/evictions/invalidations; hit and
/// miss counts live in `ServiceStats`, where a "hit" means the request
/// actually bypassed the frontend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    pub entries: usize,
    pub capacity: usize,
    pub shards: usize,
    pub evictions: u64,
    /// Entries dropped because L2 evicted their fingerprint.
    pub invalidations: u64,
    /// Optimistic probes that had to be retried (writer window overlap).
    pub read_retries: u64,
    /// Lookups that exhausted their retries and took the shard mutex.
    pub read_fallbacks: u64,
}

struct MemoEntry {
    normalized: Box<[u8]>,
    fingerprint: Fingerprint,
    sql_words: u32,
}

// ---------------------------------------------------------------------
// The read side: a seqlock-versioned table of (hash, entry) slots
// ---------------------------------------------------------------------
//
// Same protocol as the L2 cache (see `cache.rs` module docs), with one
// structural difference: normalized-hash keys are *not* unique — distinct
// texts can share a 64-bit hash — so the table stores one slot per entry,
// duplicates allowed, and a reader walks every key-matching slot until the
// first EMPTY (a tombstone never terminates the walk). Every candidate is
// verified by exact normalized-byte comparison, so the read path is
// self-validating: the worst a stale probe can produce is a miss (the
// request falls back to the full frontend, which is always correct) or a
// hit on an entry that *was* memoized — never a wrong fingerprint.

const SLOT_EMPTY: u64 = 0;
const SLOT_TOMB: u64 = 1;
const SLOT_FULL: u64 = 2;

struct MemoSlot {
    state: AtomicU64,
    key: AtomicU64,
    ptr: AtomicPtr<MemoEntry>,
}

struct MemoReadTable {
    slots: Box<[MemoSlot]>,
    mask: usize,
}

impl MemoReadTable {
    fn new(resident_capacity: usize) -> MemoReadTable {
        let len = (2 * resident_capacity).next_power_of_two().max(4);
        MemoReadTable {
            slots: (0..len)
                .map(|_| MemoSlot {
                    state: AtomicU64::new(SLOT_EMPTY),
                    key: AtomicU64::new(0),
                    ptr: AtomicPtr::new(std::ptr::null_mut()),
                })
                .collect(),
            mask: len - 1,
        }
    }

    #[inline]
    fn home(&self, hash: u64) -> usize {
        (hash.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    /// Writer-side: publish an entry in the first non-FULL slot of its
    /// probe chain (an insert never skips an EMPTY, so readers walking to
    /// the first EMPTY see every published entry). Must run inside an odd
    /// sequence window.
    fn publish(&self, hash: u64, ptr: *mut MemoEntry) -> usize {
        let mut idx = self.home(hash);
        loop {
            let slot = &self.slots[idx];
            if slot.state.load(Ordering::Relaxed) != SLOT_FULL {
                slot.key.store(hash, Ordering::Relaxed);
                slot.ptr.store(ptr, Ordering::Release);
                slot.state.store(SLOT_FULL, Ordering::Release);
                return idx;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Writer-side: tombstone a slot. Must run inside an odd window.
    fn unpublish(&self, idx: usize) {
        let slot = &self.slots[idx];
        slot.state.store(SLOT_TOMB, Ordering::Release);
        slot.ptr.store(std::ptr::null_mut(), Ordering::Release);
    }

    /// Writer-side: wipe ahead of a republish. Must run inside an odd
    /// window.
    fn clear(&self) {
        for slot in &self.slots {
            slot.state.store(SLOT_EMPTY, Ordering::Relaxed);
            slot.ptr.store(std::ptr::null_mut(), Ordering::Relaxed);
        }
    }
}

/// A memoized entry as the write side tracks it: the shared entry plus
/// its current read-table slot.
struct Resident {
    entry: Arc<MemoEntry>,
    slot: usize,
}

struct MemoShard {
    /// Normalized-hash → entries (exact normalized bytes verified on every
    /// lookup, so hash collisions cost a compare, never a wrong answer).
    map: HashMap<u64, Vec<Resident>>,
    /// FIFO replacement order. Invalidation leaves stale hashes behind
    /// (skipped when popped); [`MemoShard::compact_fifo`] rebuilds the
    /// queue whenever staleness exceeds the live count, so the deque is
    /// bounded by `2 × capacity` even when invalidations keep the shard
    /// below capacity forever.
    fifo: VecDeque<u64>,
    /// Fingerprint → normalized-hashes resident in this shard, for O(1)
    /// eager invalidation when L2 evicts.
    by_fingerprint: HashMap<u128, Vec<u64>>,
    len: usize,
    capacity: usize,
    /// Tombstones currently in the read table; a rebuild clears them.
    tombs: usize,
    evictions: u64,
    invalidations: u64,
    /// Entries unlinked inside the current write window, awaiting
    /// retirement once the window closes.
    graveyard: Vec<Arc<MemoEntry>>,
    limbo: Limbo<Arc<MemoEntry>>,
}

impl MemoShard {
    fn new(capacity: usize) -> MemoShard {
        MemoShard {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            by_fingerprint: HashMap::new(),
            len: 0,
            capacity,
            tombs: 0,
            evictions: 0,
            invalidations: 0,
            graveyard: Vec::new(),
            limbo: Limbo::default(),
        }
    }

    /// Retire everything unlinked by the write that just ended. Must run
    /// *after* the window closes (retirement advances the era; the unlink
    /// must already be visible — see the epoch module docs).
    fn drain_graveyard(&mut self) {
        for entry in std::mem::take(&mut self.graveyard) {
            self.limbo.retire(entry);
        }
    }

    /// Republish every resident into a cleared table, dropping all
    /// tombstones. Must run inside an odd sequence window.
    fn rebuild_table(&mut self, table: &MemoReadTable) {
        table.clear();
        self.tombs = 0;
        for (hash, bucket) in self.map.iter_mut() {
            for r in bucket.iter_mut() {
                let ptr = Arc::as_ptr(&r.entry) as *mut MemoEntry;
                r.slot = table.publish(*hash, ptr);
            }
        }
    }

    fn maybe_rebuild(&mut self, table: &MemoReadTable) {
        if self.tombs > table.slots.len() / 4 {
            self.rebuild_table(table);
        }
    }

    fn unindex(&mut self, fingerprint: Fingerprint, hash: u64) {
        if let Some(hashes) = self.by_fingerprint.get_mut(&fingerprint.0) {
            if let Some(at) = hashes.iter().position(|h| *h == hash) {
                hashes.swap_remove(at);
            }
            if hashes.is_empty() {
                self.by_fingerprint.remove(&fingerprint.0);
            }
        }
    }

    /// Evict the FIFO-oldest entry: unpublish its read slot and queue it
    /// for retirement. Must run inside an odd sequence window.
    fn evict_one(&mut self, table: &MemoReadTable) {
        while let Some(hash) = self.fifo.pop_front() {
            let Some(bucket) = self.map.get_mut(&hash) else {
                continue; // stale FIFO entry left by invalidation
            };
            if bucket.is_empty() {
                self.map.remove(&hash);
                continue;
            }
            let resident = bucket.remove(0);
            if bucket.is_empty() {
                self.map.remove(&hash);
            }
            table.unpublish(resident.slot);
            self.tombs += 1;
            self.len -= 1;
            self.evictions += 1;
            self.unindex(resident.entry.fingerprint, hash);
            self.graveyard.push(resident.entry);
            return;
        }
    }

    /// Drop stale FIFO slots (hashes whose entries were invalidated),
    /// preserving order and per-hash multiplicity for live entries. Runs
    /// when stale slots outnumber live ones, so its O(fifo) cost is
    /// amortized O(1) per insert and the deque never exceeds ~2×capacity —
    /// without it, an invalidation-heavy workload (L2 thrashing) would
    /// grow the queue one slot per compiled request, forever, while `len`
    /// stays below capacity and `evict_one` never reclaims anything.
    fn compact_fifo(&mut self) {
        let mut live: HashMap<u64, usize> = HashMap::with_capacity(self.map.len());
        for (hash, bucket) in &self.map {
            live.insert(*hash, bucket.len());
        }
        let mut compacted = VecDeque::with_capacity(self.len);
        for hash in self.fifo.drain(..) {
            if let Some(remaining) = live.get_mut(&hash) {
                if *remaining > 0 {
                    *remaining -= 1;
                    compacted.push_back(hash);
                }
            }
        }
        self.fifo = compacted;
        debug_assert_eq!(self.fifo.len(), self.len);
    }

    /// Insert under the write mutex. Must run inside an odd sequence
    /// window (eviction and publication both touch the read table).
    fn insert(
        &mut self,
        table: &MemoReadTable,
        hash: u64,
        normalized: Vec<u8>,
        fingerprint: Fingerprint,
        words: u32,
    ) {
        while self.len >= self.capacity {
            self.evict_one(table);
        }
        if self.fifo.len() >= (2 * self.len).max(16) {
            self.compact_fifo();
        }
        let entry = Arc::new(MemoEntry {
            normalized: normalized.into_boxed_slice(),
            fingerprint,
            sql_words: words,
        });
        let ptr = Arc::as_ptr(&entry) as *mut MemoEntry;
        let slot = table.publish(hash, ptr);
        self.map
            .entry(hash)
            .or_default()
            .push(Resident { entry, slot });
        self.fifo.push_back(hash);
        self.by_fingerprint
            .entry(fingerprint.0)
            .or_default()
            .push(hash);
        self.len += 1;
        self.maybe_rebuild(table);
    }

    /// Must run inside an odd sequence window.
    fn invalidate(&mut self, table: &MemoReadTable, fingerprint: Fingerprint) -> usize {
        let Some(hashes) = self.by_fingerprint.remove(&fingerprint.0) else {
            return 0;
        };
        let mut removed = 0usize;
        for hash in hashes {
            if let Some(bucket) = self.map.get_mut(&hash) {
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].entry.fingerprint == fingerprint {
                        let resident = bucket.remove(i);
                        table.unpublish(resident.slot);
                        self.tombs += 1;
                        self.graveyard.push(resident.entry);
                        removed += 1;
                    } else {
                        i += 1;
                    }
                }
                if bucket.is_empty() {
                    self.map.remove(&hash);
                }
            }
        }
        self.len -= removed;
        self.invalidations += removed as u64;
        C_L1_INVALIDATIONS.add(removed as u64);
        self.maybe_rebuild(table);
        removed
    }
}

/// One shard: the seqlock word, the read table, and the write mutex.
struct Shard {
    /// Seqlock word: odd while a writer is mutating the read table.
    seq: AtomicU64,
    table: MemoReadTable,
    read_retries: AtomicU64,
    read_fallbacks: AtomicU64,
    write: Mutex<MemoShard>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            seq: AtomicU64::new(0),
            table: MemoReadTable::new(capacity),
            read_retries: AtomicU64::new(0),
            read_fallbacks: AtomicU64::new(0),
            write: Mutex::new(MemoShard::new(capacity)),
        }
    }

    /// Open the odd window. Caller must hold the write mutex.
    fn begin_write(&self) -> u64 {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "window opened twice");
        self.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        s
    }

    fn end_write(&self, s: u64) {
        self.seq.store(s + 2, Ordering::Release);
    }

    fn note_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
        C_L1_READ_RETRIES.add(1);
        std::hint::spin_loop();
    }

    /// The lock-free lookup: walk every key-matching slot under a
    /// validated sequence window, verifying each candidate by exact
    /// normalized-byte comparison.
    fn lookup(&self, hash: u64, sql: &str) -> Option<(Fingerprint, u32)> {
        let _pin = epoch::pin();
        'attempt: for _ in 0..MAX_READ_RETRIES {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                self.note_retry();
                continue 'attempt;
            }
            let mut idx = self.table.home(hash);
            for _ in 0..=self.table.mask {
                let slot = &self.table.slots[idx];
                let state = slot.state.load(Ordering::Acquire);
                if state == SLOT_EMPTY {
                    fence(Ordering::Acquire);
                    if self.seq.load(Ordering::Relaxed) == s1 {
                        return None;
                    }
                    self.note_retry();
                    continue 'attempt;
                }
                if state == SLOT_FULL && slot.key.load(Ordering::Relaxed) == hash {
                    let ptr = slot.ptr.load(Ordering::Acquire);
                    if !ptr.is_null() {
                        // SAFETY: the pin was taken before the load, so
                        // the Arc backing `ptr` is alive in the shard map
                        // or its limbo (see the epoch module docs).
                        let entry = unsafe {
                            Arc::increment_strong_count(ptr);
                            Arc::from_raw(ptr)
                        };
                        fence(Ordering::Acquire);
                        if self.seq.load(Ordering::Relaxed) != s1 {
                            self.note_retry();
                            continue 'attempt;
                        }
                        if normalized_matches(sql, &entry.normalized) {
                            return Some((entry.fingerprint, entry.sql_words));
                        }
                        // Not this candidate. The byte compare took time;
                        // re-check the window before trusting the rest of
                        // the chain.
                        if self.seq.load(Ordering::Acquire) != s1 {
                            self.note_retry();
                            continue 'attempt;
                        }
                    }
                }
                idx = (idx + 1) & self.table.mask;
            }
            // Full walk without hitting EMPTY: the chain was exhaustive.
            return None;
        }
        // Seqlock contended: serialize against the writer instead.
        self.read_fallbacks.fetch_add(1, Ordering::Relaxed);
        C_L1_READ_FALLBACKS.add(1);
        let state = self.write.lock().expect("memo shard poisoned");
        state
            .map
            .get(&hash)?
            .iter()
            .find(|r| normalized_matches(sql, &r.entry.normalized))
            .map(|r| (r.entry.fingerprint, r.entry.sql_words))
    }
}

/// The sharded L1 memo. See the module docs.
pub struct L1Memo {
    shards: Vec<Shard>,
}

impl L1Memo {
    pub fn new(config: MemoConfig) -> L1Memo {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.div_ceil(shards).max(1);
        L1Memo {
            shards: (0..shards).map(|_| Shard::new(per_shard)).collect(),
        }
    }

    fn shard(&self, hash: u64) -> &Shard {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Look up the fingerprint and word count memoized for a text. The
    /// miss/hit decision is exact (normalized-byte equality); the lookup
    /// path performs no allocation and — unless a writer keeps the shard's
    /// sequence window unstable for the whole retry budget — acquires no
    /// lock. Texts the lexer would reject at scan level (unterminated
    /// comment/string) never hit — they must reach the full frontend and
    /// produce their error deterministically.
    pub fn lookup(&self, sql: &str) -> Option<(Fingerprint, u32)> {
        let hash = normalized_hash(sql)?;
        self.shard(hash).lookup(hash, sql)
    }

    /// Memoize a text after a successful full-frontend run.
    pub fn insert(&self, sql: &str, fingerprint: Fingerprint, sql_words: u32) {
        let normalized = normalized_bytes(sql);
        let hash = hash_of(&normalized);
        let shard = self.shard(hash);
        let mut state = shard.write.lock().expect("memo shard poisoned");
        if let Some(bucket) = state.map.get(&hash) {
            if bucket
                .iter()
                .any(|r| r.entry.normalized.as_ref() == normalized.as_slice())
            {
                return; // incumbent wins; racing inserts agree anyway
            }
        }
        let seq = shard.begin_write();
        state.insert(&shard.table, hash, normalized, fingerprint, sql_words);
        shard.end_write(seq);
        state.drain_graveyard();
    }

    /// Drop every memo entry pointing at `fingerprint` (called when L2
    /// evicts it). Returns how many entries were dropped.
    pub fn invalidate(&self, fingerprint: Fingerprint) -> usize {
        // The memo shards by normalized-text hash, not by fingerprint, so
        // the reverse index of every shard is consulted; evictions are
        // rare (L2 at capacity), lookups and inserts never take more than
        // their own shard lock.
        self.shards
            .iter()
            .map(|shard| {
                let mut state = shard.write.lock().expect("memo shard poisoned");
                if !state.by_fingerprint.contains_key(&fingerprint.0) {
                    return 0; // nothing here: don't disturb readers
                }
                let seq = shard.begin_write();
                let removed = state.invalidate(&shard.table, fingerprint);
                shard.end_write(seq);
                state.drain_graveyard();
                removed
            })
            .sum()
    }

    /// Entries currently resident.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.write.lock().expect("memo shard poisoned").len)
            .sum()
    }

    /// Aggregate counters across shards.
    pub fn stats(&self) -> MemoStats {
        let mut stats = MemoStats {
            shards: self.shards.len(),
            ..MemoStats::default()
        };
        for shard in &self.shards {
            let state = shard.write.lock().expect("memo shard poisoned");
            stats.entries += state.len;
            stats.capacity += state.capacity;
            stats.evictions += state.evictions;
            stats.invalidations += state.invalidations;
            stats.read_retries += shard.read_retries.load(Ordering::Relaxed);
            stats.read_fallbacks += shard.read_fallbacks.load(Ordering::Relaxed);
        }
        stats
    }

    /// Total lookups that fell back to a mutex (the zero-lock test hook).
    pub fn read_fallbacks(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read_fallbacks.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(sql: &str) -> String {
        String::from_utf8(normalized_bytes(sql)).unwrap()
    }

    #[test]
    fn whitespace_comments_and_keyword_case_normalize_away() {
        let canonical = norm("SELECT T.a FROM T");
        assert_eq!(canonical, "SELECT T . a FROM T");
        for variant in [
            "select T.a from T",
            "  SELECT\n\tT.a\r\n FROM   T  ",
            "SELECT /* projection */ T.a FROM T -- trailing",
            "SELECT T.a FROM T;",
            "SeLeCt T . a FrOm T",
        ] {
            assert_eq!(norm(variant), canonical, "variant: {variant:?}");
        }
    }

    #[test]
    fn identifier_case_and_literals_stay_significant() {
        assert_ne!(norm("SELECT T.a FROM T"), norm("SELECT t.a FROM t"));
        assert_ne!(
            norm("SELECT B.x FROM B WHERE B.c = 'red'"),
            norm("SELECT B.x FROM B WHERE B.c = 'green'")
        );
        assert_ne!(
            norm("SELECT B.x FROM B WHERE B.c = 1"),
            norm("SELECT B.x FROM B WHERE B.c = 2")
        );
    }

    #[test]
    fn operator_spellings_fold_like_the_lexer() {
        assert_eq!(norm("a != b"), norm("a <> b"));
        assert_eq!(norm("a<>b"), norm("a <> b"));
        assert_ne!(norm("a < b"), norm("a <= b"));
        // `< >` is two tokens, `<>` one; they must not share a key.
        assert_ne!(norm("a < > b"), norm("a <> b"));
    }

    #[test]
    fn number_lexing_is_replicated() {
        assert_eq!(norm("x = 3.5"), "x = 3.5");
        assert_eq!(norm("L1.a"), "L1 . a");
        // `3 . 5` is three tokens and must stay distinct from `3.5`.
        assert_ne!(norm("x = 3 . 5"), norm("x = 3.5"));
    }

    #[test]
    fn keyword_alias_folds_with_the_lexer() {
        // SOME and ANY lex to the same keyword.
        assert_eq!(norm("x = SOME (y)"), norm("x = any (y)"));
    }

    #[test]
    fn widened_fragment_keywords_fold() {
        // The ISSUE-4 keywords case-fold like every other keyword …
        assert_eq!(norm("a join b on a.x = b.x"), norm("a JOIN b ON a.x = b.x"));
        assert_eq!(norm("group by x having count(*) > 1"), {
            norm("GROUP BY x HAVING COUNT(*) > 1")
        });
        assert_eq!(norm("a union all b"), norm("a UNION ALL b"));
        assert_eq!(norm("x = 1 or y = 2"), norm("x = 1 OR y = 2"));
        assert_eq!(norm("inner left right full outer cross"), {
            norm("INNER LEFT RIGHT FULL OUTER CROSS")
        });
        // … and remain significant tokens: UNION vs UNION ALL, and a
        // keyword vs a same-spelling identifier context, stay distinct.
        assert_ne!(norm("a UNION b"), norm("a UNION ALL b"));
        assert_ne!(norm("a JOIN b ON c"), norm("a , b WHERE c"));
    }

    #[test]
    fn trailing_semicolons() {
        assert_eq!(norm("SELECT T.a FROM T;"), norm("SELECT T.a FROM T"));
        // Exactly one is dropped; more are a parse error, kept distinct.
        assert_ne!(norm("SELECT T.a FROM T;;"), norm("SELECT T.a FROM T"));
        // An interior semicolon is significant.
        assert_ne!(norm("SELECT ; T.a FROM T"), norm("SELECT T.a FROM T"));
    }

    #[test]
    fn string_literals_shield_comment_markers() {
        assert_eq!(norm("x = 'a -- b'"), "x = 'a -- b'");
        assert_eq!(norm("x = 'a /* b */'"), "x = 'a /* b */'");
        assert_eq!(norm("x = 'it''s'"), "x = 'it''s'");
    }

    #[test]
    fn streaming_hash_and_compare_agree_with_materialization() {
        let sqls = [
            "SELECT T.a FROM T",
            "select  t.a\nfrom t ;",
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)",
            "x = 'it''s' AND y != 3.5 -- c",
        ];
        for sql in sqls {
            let bytes = normalized_bytes(sql);
            assert_eq!(normalized_hash(sql), Some(hash_of(&bytes)), "{sql:?}");
            assert!(normalized_matches(sql, &bytes), "{sql:?}");
            let mut other = bytes.clone();
            other.push(b'!');
            assert!(!normalized_matches(sql, &other));
            if !bytes.is_empty() {
                assert!(!normalized_matches(sql, &bytes[..bytes.len() - 1]));
            }
        }
    }

    #[test]
    fn unterminated_constructs_never_match_a_memoized_key() {
        // An unterminated block comment (or string) would otherwise
        // normalize to the same bytes as the valid text, letting a
        // malformed request hit the memo and skip the lexer's error.
        let memo = L1Memo::new(MemoConfig::default());
        memo.insert("SELECT T.a FROM T", Fingerprint(7), 4);
        assert_eq!(memo.lookup("SELECT T.a FROM T /* oops"), None);
        assert_eq!(memo.lookup("SELECT T.a FROM T /* a /* b */"), None);
        assert_eq!(
            memo.lookup("SELECT T.a FROM T --ok"),
            Some((Fingerprint(7), 4))
        );
        memo.insert("SELECT B.x FROM B WHERE B.c = 'red'", Fingerprint(8), 8);
        assert_eq!(memo.lookup("SELECT B.x FROM B WHERE B.c = 'red"), None);
        assert_eq!(memo.lookup("SELECT B.x FROM B WHERE B.c = 'red''"), None);
    }

    #[test]
    fn memo_round_trip_and_exactness() {
        let memo = L1Memo::new(MemoConfig::default());
        let fp = Fingerprint(42);
        memo.insert("SELECT T.a FROM T", fp, 4);
        assert_eq!(memo.lookup("select T.a  from T;"), Some((fp, 4)));
        assert_eq!(memo.lookup("SELECT T.b FROM T"), None);
        assert_eq!(memo.entries(), 1);
        // Equal-normalization reinsert keeps the incumbent.
        memo.insert("select T.a from T", Fingerprint(43), 9);
        assert_eq!(memo.lookup("SELECT T.a FROM T"), Some((fp, 4)));
        assert_eq!(memo.entries(), 1);
    }

    #[test]
    fn invalidation_drops_every_text_of_a_fingerprint() {
        let memo = L1Memo::new(MemoConfig::default());
        let (fp_a, fp_b) = (Fingerprint(1), Fingerprint(2));
        memo.insert("SELECT T.a FROM T", fp_a, 4);
        // Distinct text, same pattern fingerprint (an alias rename).
        memo.insert("SELECT U.a FROM T U", fp_a, 5);
        memo.insert("SELECT T.b FROM T", fp_b, 4);
        assert_eq!(memo.entries(), 3);
        assert_eq!(memo.invalidate(fp_a), 2);
        assert_eq!(memo.entries(), 1);
        assert_eq!(memo.lookup("SELECT T.a FROM T"), None);
        assert_eq!(memo.lookup("SELECT U.a FROM T U"), None);
        assert_eq!(memo.lookup("SELECT T.b FROM T"), Some((fp_b, 4)));
        assert_eq!(memo.stats().invalidations, 2);
    }

    #[test]
    fn capacity_is_bounded_with_fifo_replacement() {
        let memo = L1Memo::new(MemoConfig {
            capacity: 4,
            shards: 1,
        });
        for i in 0..10 {
            memo.insert(&format!("SELECT T.c{i} FROM T"), Fingerprint(i), 4);
        }
        let stats = memo.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 6);
        // The newest entries survive.
        assert_eq!(memo.lookup("SELECT T.c9 FROM T"), Some((Fingerprint(9), 4)));
        assert_eq!(memo.lookup("SELECT T.c0 FROM T"), None);
    }

    #[test]
    fn fifo_stays_bounded_under_invalidation_heavy_traffic() {
        // Insert-then-invalidate forever (the L2-thrashing pattern): the
        // shard never reaches capacity, so eviction alone would never
        // reclaim the stale FIFO slots — compaction must keep the queue
        // proportional to the live entry count, not to total traffic.
        let memo = L1Memo::new(MemoConfig {
            capacity: 64,
            shards: 1,
        });
        for i in 0..10_000u64 {
            memo.insert(
                &format!("SELECT T.c{i} FROM T"),
                Fingerprint(u128::from(i)),
                4,
            );
            memo.invalidate(Fingerprint(u128::from(i)));
        }
        let shard = memo.shards[0].write.lock().unwrap();
        assert_eq!(shard.len, 0);
        assert!(
            shard.fifo.len() <= 2 * shard.capacity.max(16),
            "fifo grew unboundedly: {} slots",
            shard.fifo.len()
        );
    }

    #[test]
    fn eviction_after_invalidation_skips_stale_fifo_hashes() {
        let memo = L1Memo::new(MemoConfig {
            capacity: 2,
            shards: 1,
        });
        memo.insert("SELECT T.a FROM T", Fingerprint(1), 4);
        memo.insert("SELECT T.b FROM T", Fingerprint(2), 4);
        assert_eq!(memo.invalidate(Fingerprint(1)), 1);
        // Filling back up walks past the stale FIFO slot without panicking
        // or double-counting.
        memo.insert("SELECT T.c FROM T", Fingerprint(3), 4);
        memo.insert("SELECT T.d FROM T", Fingerprint(4), 4);
        let stats = memo.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(memo.lookup("SELECT T.b FROM T"), None, "FIFO evicted");
        assert!(memo.lookup("SELECT T.d FROM T").is_some());
    }
}
