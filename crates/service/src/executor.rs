//! The fixed-size worker pool of the batch path.
//!
//! [`run_indexed`] fans `n` index-addressed jobs across `threads` OS
//! threads. Each worker *owns* a contiguous slice of the index space in a
//! single packed atomic word — `(next, end)` in one `u64` — and pops from
//! the front with a CAS that no other thread contends in the common case.
//! A worker that drains its range **steals from the back** of a victim's
//! range (classic work-stealing: owner and thief meet only on the last
//! item), so the pool keeps dynamic load balancing — diagram compile
//! times vary by an order of magnitude across the corpus — without the
//! shared-cursor cache-line that every pop used to bounce through, and
//! without any mutex or channel.
//!
//! Determinism: job `i` computes the same value on any worker, and every
//! result is merged into slot `i` of the output, so the returned vector
//! is byte-identical for any thread count and any steal schedule. Steals
//! are counted in the process-wide `executor_steals` telemetry counter.

use queryvis_telemetry::CounterDef;
use std::sync::atomic::{AtomicU64, Ordering};

static C_EXECUTOR_STEALS: CounterDef = CounterDef::new("executor_steals");

/// One worker's remaining range, packed as `next << 32 | end`. Owner pops
/// `next` from the front, thieves pop `end - 1` from the back; a single
/// CAS arbitrates when they race on the last item.
struct Range(AtomicU64);

#[inline]
fn pack(next: u32, end: u32) -> u64 {
    (u64::from(next) << 32) | u64::from(end)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl Range {
    fn new(start: usize, end: usize) -> Range {
        Range(AtomicU64::new(pack(start as u32, end as u32)))
    }

    /// Owner's pop: claim the front index.
    fn pop_front(&self) -> Option<usize> {
        let mut word = self.0.load(Ordering::Relaxed);
        loop {
            let (next, end) = unpack(word);
            if next >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                word,
                pack(next + 1, end),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(next as usize),
                Err(current) => word = current,
            }
        }
    }

    /// Thief's pop: claim the back index.
    fn pop_back(&self) -> Option<usize> {
        let mut word = self.0.load(Ordering::Relaxed);
        loop {
            let (next, end) = unpack(word);
            if next >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                word,
                pack(next, end - 1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((end - 1) as usize),
                Err(current) => word = current,
            }
        }
    }
}

/// Run `job(0..n)` across a fixed pool and return results in index order.
/// `threads == 1` (or `n <= 1`) runs inline with no spawning.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    assert!(n <= u32::MAX as usize, "batch too large for packed ranges");
    let workers = threads.min(n);
    // Even contiguous split; stealing rebalances whatever the split got
    // wrong about per-job cost.
    let ranges: Vec<Range> = (0..workers)
        .map(|w| Range::new(w * n / workers, (w + 1) * n / workers))
        .collect();
    let mut results: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let ranges = &ranges;
                let job = &job;
                scope.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        if let Some(index) = ranges[me].pop_front() {
                            out.push((index, job(index)));
                            continue;
                        }
                        // Own range drained: steal from the first victim
                        // with work, scanning round-robin from our right
                        // neighbor. Ranges never refill, so a full scan
                        // that finds nothing means the batch is done.
                        let stolen = (1..workers)
                            .find_map(|offset| ranges[(me + offset) % workers].pop_back());
                        match stolen {
                            Some(index) => {
                                C_EXECUTOR_STEALS.add(1);
                                out.push((index, job(index)));
                            }
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked"))
            .collect()
    });
    // Merge into index order: slot `i` always holds job(i)'s result, so
    // the output is identical for any thread count or steal schedule.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (index, value) in results.drain(..).flatten() {
        debug_assert!(slots[index].is_none(), "index {index} ran twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        run_indexed(500, 4, |i| {
            assert!(seen.lock().unwrap().insert(i), "index {i} ran twice");
        });
        assert_eq!(seen.lock().unwrap().len(), 500);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn work_is_actually_distributed() {
        let ids = Mutex::new(HashSet::new());
        run_indexed(64, 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Sleep long enough that one worker cannot drain the whole
            // queue before the others have spawned.
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn skewed_batches_get_stolen_and_stay_deterministic() {
        // Worker 0's range is pathologically slow; the others drain their
        // own ranges in microseconds and must steal from its back. The
        // output must be identical to the 1-thread run regardless.
        let who = Mutex::new(vec![None::<ThreadId>; 32]);
        let out = run_indexed(32, 4, |i| {
            if i < 8 {
                std::thread::sleep(Duration::from_millis(20));
            }
            who.lock().unwrap()[i] = Some(std::thread::current().id());
            i * 3
        });
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
        let who = who.lock().unwrap();
        let owner = who[0].unwrap();
        // While worker 0 slept on job 0, the rest of its range (jobs
        // 1..8, ~140ms of sleeping) cannot all have been run by it —
        // idle workers steal from the back.
        assert!(
            (1..8).any(|i| who[i].unwrap() != owner),
            "no job of the slow range was stolen"
        );
    }

    #[test]
    fn uneven_splits_with_more_workers_than_fit_evenly() {
        // n not divisible by workers: ranges differ in size, some may be
        // empty (n < workers after the min clamp elsewhere); every index
        // must still run exactly once.
        for (n, threads) in [(7, 3), (13, 5), (5, 8), (97, 6)] {
            let out = run_indexed(n, threads, |i| i + 1);
            assert_eq!(out, (1..=n).collect::<Vec<_>>(), "n={n} threads={threads}");
        }
    }
}
