//! The fixed-size worker pool of the batch path.
//!
//! [`run_indexed`] fans `n` index-addressed jobs across `threads` OS
//! threads: a shared atomic cursor hands out indices (cheap dynamic load
//! balancing — diagram compile times vary by an order of magnitude across
//! the corpus), and results flow back over an `mpsc` channel to be
//! reassembled in index order. Output is therefore deterministic for any
//! thread count: position `i` of the result always belongs to job `i`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run `job(0..n)` across a fixed pool and return results in index order.
/// `threads == 1` (or `n <= 1`) runs inline with no spawning.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, T)>();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let cursor = &cursor;
            let job = &job;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                // Receiver outlives the scope; a send can only fail if the
                // main thread panicked, which propagates anyway.
                let _ = sender.send((index, job(index)));
            });
        }
        drop(sender);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (index, value) in receiver {
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index produced exactly one result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        run_indexed(500, 4, |i| {
            assert!(seen.lock().unwrap().insert(i), "index {i} ran twice");
        });
        assert_eq!(seen.lock().unwrap().len(), 500);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn work_is_actually_distributed() {
        let ids = Mutex::new(HashSet::new());
        run_indexed(64, 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Sleep long enough that one worker cannot drain the whole
            // queue before the others have spawned.
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }
}
