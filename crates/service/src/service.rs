//! The diagram-compilation service: L1 memo → fingerprint → L2 cache →
//! compile → render.
//!
//! Two entry points share one two-level cache:
//!
//! * [`DiagramService::handle`] serves a single request, deduplicating
//!   concurrent identical fingerprints through an in-flight table
//!   (`Mutex<HashMap>` + condvar): the first thread to claim a missing
//!   fingerprint compiles it, racers park and are handed the finished
//!   entry — one compile no matter how many concurrent duplicates.
//! * [`DiagramService::execute_batch`] serves a whole `Vec<Request>`
//!   across a fixed thread pool with *deterministic* results: requests are
//!   fingerprinted in parallel, grouped by fingerprint, and each group's
//!   **first occurrence in request order** is the pattern representative
//!   that compiles. Output bytes are therefore identical for any worker
//!   count — the property the `service` binary's acceptance check relies
//!   on — while duplicate patterns still compile exactly once per batch.
//!
//! **The warm path.** Before any lexing happens, the request text is
//! probed in the [`L1Memo`](crate::memo::L1Memo): a repeat text (modulo
//! whitespace, comments, and keyword case) resolves straight to its
//! pattern fingerprint and word count, skipping parse, translation, and
//! canonicalization entirely, and proceeds to the L2 entry whose
//! `Arc<str>` artifacts are shared — not copied — into the response. L1
//! and L2 stay coherent: an L2 eviction eagerly invalidates every L1 text
//! pointing at the evicted fingerprint, and the rare lost race (evicted
//! between L1 probe and L2 get) falls back to the full frontend. The memo
//! never changes response bytes — it only skips recomputing them.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::compile::{compile_representative, CompiledEntry};
use crate::executor::run_indexed;
use crate::fingerprint::{fingerprint_sql, Fingerprint, FingerprintedQuery};
use crate::memo::{L1Memo, MemoConfig, MemoStats};
use crate::protocol::{
    Artifacts, ErrorKind, Format, Request, Response, SampleOutcome, ServiceError,
};
use queryvis::ir::Interner;
use queryvis::QueryVisOptions;
use queryvis_telemetry::{now_if_enabled, CounterDef, GaugeDef, StageDef};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

// Global telemetry mirrors of the per-service counters (DESIGN.md §6).
// `ServiceStats` stays the per-instance source of truth; these fold the
// same events into the process-wide registry so `--stats`/`--trace-jsonl`
// see one vocabulary. Every call is a relaxed load + branch when disabled.
static C_REQUESTS: CounterDef = CounterDef::new("requests");
static C_COMPILES: CounterDef = CounterDef::new("compiles");
static C_COALESCED: CounterDef = CounterDef::new("coalesced");
static C_ERRORS: CounterDef = CounterDef::new("errors");
static C_L1_HITS: CounterDef = CounterDef::new("l1_hits");
static C_PANICS: CounterDef = CounterDef::new("panics_caught");
static G_INFLIGHT: GaugeDef = GaugeDef::new("inflight_compiles");
/// End-to-end request latency. `handle()` records wall time; the batch
/// executor records queue-free *service time* (frontend + compile +
/// respond, compile attributed to the pattern representative only).
static STAGE_REQUEST: StageDef = StageDef::new("request");

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pub cache: CacheConfig,
    /// Geometry of the L1 text→fingerprint memo.
    pub memo: MemoConfig,
    /// Pipeline options applied to every request (schema, strictness, …).
    pub options: QueryVisOptions,
    /// Formats served when a request does not name any.
    pub default_formats: Vec<Format>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache: CacheConfig::default(),
            memo: MemoConfig::default(),
            options: QueryVisOptions::default(),
            default_formats: vec![Format::Ascii],
        }
    }
}

/// A snapshot of every service counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (including ones that failed to parse).
    pub requests: u64,
    /// Full pipeline compilations actually executed.
    pub compiles: u64,
    /// Requests served by joining another request's in-flight/in-batch
    /// compile instead of compiling themselves.
    pub coalesced: u64,
    /// Requests that failed (parse/semantic/translation errors).
    pub errors: u64,
    /// Requests whose frontend (lex→parse→translate→canonicalize) was
    /// skipped because the L1 memo recognized the text.
    pub l1_hits: u64,
    /// Compile panics caught and converted into per-request `panic`
    /// errors (the process survived every one of them).
    pub panics_caught: u64,
    /// Texts currently memoized in L1.
    pub l1_entries: usize,
    /// Distinct names resident in the shared interner (process-wide; grows
    /// monotonically with the vocabulary of table/column/alias/constant
    /// names the service has seen).
    pub interned_symbols: u64,
    pub cache: CacheStats,
    pub memo: MemoStats,
}

/// Lock a mutex, recovering the guard from a poisoned lock. Every mutex
/// in the service guards state that is valid at all times (inserts and
/// removes are single operations, never multi-step invariants), so a
/// panic that unwound through a critical section leaves usable data
/// behind. Propagating poison instead would turn one isolated request
/// panic into a process-wide failure: every later request would panic on
/// the poisoned `lock().expect(..)` — exactly the amplification the
/// serving layer promises not to have.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One in-flight compilation that racing requests can join. The slot is
/// filled with `Err` if the owning compile unwinds, so joiners get an
/// error response instead of parking forever.
struct Flight {
    slot: Mutex<Option<Result<Arc<CompiledEntry>, ServiceError>>>,
    ready: Condvar,
}

/// Retires a [`Flight`] even if the owning compile panics: on unwind the
/// guard fails the slot, wakes every joiner, and removes the in-flight
/// entry so later requests for the fingerprint retry instead of
/// deadlocking. Disarmed on the success path.
struct FlightGuard<'a> {
    service: &'a DiagramService,
    fingerprint: Fingerprint,
    flight: &'a Flight,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        *lock_unpoisoned(&self.flight.slot) = Some(Err(ServiceError::new(
            ErrorKind::Panic,
            "diagram compilation panicked",
        )));
        self.flight.ready.notify_all();
        lock_unpoisoned(&self.service.inflight).remove(&self.fingerprint.0);
    }
}

/// The compilation service.
pub struct DiagramService {
    config: ServiceConfig,
    /// Shared copy of `config.options` so the per-request front half never
    /// clones a configured schema.
    options: Arc<QueryVisOptions>,
    /// The shared string interner behind every request's names. One
    /// sharded, mutex-striped interner serves the whole process (all
    /// services, all cache shards): symbols are 4-byte ids, so cache keys,
    /// pattern tokens, and diagram models never re-hash or re-allocate
    /// name strings, and artifacts resolve ids back to text only at the
    /// render boundary.
    interner: &'static Interner,
    /// L1: normalized request text → fingerprint (+ word count).
    memo: L1Memo,
    /// L2: fingerprint → compiled entry.
    cache: ShardedCache,
    inflight: Mutex<HashMap<u128, Arc<Flight>>>,
    requests: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
    errors: AtomicU64,
    l1_hits: AtomicU64,
    panics_caught: AtomicU64,
}

impl DiagramService {
    pub fn new(config: ServiceConfig) -> DiagramService {
        DiagramService {
            cache: ShardedCache::new(config.cache),
            memo: L1Memo::new(config.memo),
            options: Arc::new(config.options.clone()),
            interner: Interner::global(),
            config,
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            l1_hits: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared interner this service resolves symbols against.
    pub fn interner(&self) -> &'static Interner {
        self.interner
    }

    /// The L1 text memo (exposed for tests and diagnostics).
    pub fn memo(&self) -> &L1Memo {
        &self.memo
    }

    /// The shared pipeline options (the session layer's frontend runs
    /// outside `handle` but must prepare with identical options).
    pub(crate) fn options_arc(&self) -> &Arc<QueryVisOptions> {
        &self.options
    }

    /// The L2 cache (exposed for warm-snapshot export and tests).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Pre-warm both cache levels with one SQL text, as if a request for
    /// it had been served (counted as a normal request/compile). Returns
    /// false when the text does not compile — a stale snapshot line must
    /// not prevent startup.
    pub fn warm(&self, sql: &str) -> bool {
        let request = Request {
            id: 0,
            sql: sql.to_string(),
            formats: Vec::new(),
            rows: None,
        };
        self.handle(&request).outcome.is_ok()
    }

    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            l1_hits: self.l1_hits.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            l1_entries: self.memo.entries(),
            interned_symbols: self.interner.len() as u64,
            cache: self.cache.stats(),
            memo: self.memo.stats(),
        }
    }

    /// Serve one request, consulting and filling both cache levels.
    pub fn handle(&self, request: &Request) -> Response {
        // Inert (one relaxed load each) unless telemetry is enabled; the
        // span records full wall time into the `request` histogram and the
        // scope tags this thread's stage spans with the request id.
        let _request_span = STAGE_REQUEST.span();
        let _trace_scope = queryvis_telemetry::global()
            .tracing()
            .then(|| queryvis_telemetry::request_scope(request.id));
        self.requests.fetch_add(1, Ordering::Relaxed);
        C_REQUESTS.add(1);
        // L1: a repeat text resolves to its fingerprint without touching
        // the frontend at all.
        if let Some((fingerprint, words)) = self.memo.lookup(&request.sql) {
            if let Some(entry) = self.cache.get(fingerprint) {
                self.l1_hits.fetch_add(1, Ordering::Relaxed);
                C_L1_HITS.add(1);
                return self.respond(request, words as usize, &entry);
            }
            // L2 evicted this fingerprint between the eager invalidation
            // and our probe (or we raced it): fall through to the full
            // path, which recompiles and re-publishes both levels.
        }
        let fingerprinted = match fingerprint_sql(&request.sql, Arc::clone(&self.options)) {
            Ok(fq) => fq,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                C_ERRORS.add(1);
                return Response::error(request.id, e.to_string());
            }
        };
        let words = fingerprinted.prepared.sql_word_count();
        let fingerprint = fingerprinted.fingerprint;
        match self.entry_for(fingerprinted) {
            Ok(entry) => {
                // Memoize only after the entry is resident in L2, so an L1
                // hit almost always finds its L2 entry.
                self.memo.insert(&request.sql, fingerprint, words as u32);
                self.respond(request, words, &entry)
            }
            Err(error) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                C_ERRORS.add(1);
                Response {
                    id: request.id,
                    outcome: Err(error),
                }
            }
        }
    }

    /// Look up or compile the entry for a fingerprinted query, joining an
    /// in-flight compile of the same fingerprint when one exists. `Err`
    /// means the compile failed or panicked (classified by its kind).
    /// The incremental session layer (and its equivalence oracles) join
    /// the standard cache/coalescing machinery here after their own
    /// frontend shortcut.
    pub fn entry_for(
        &self,
        fingerprinted: FingerprintedQuery,
    ) -> Result<Arc<CompiledEntry>, ServiceError> {
        let fingerprint = fingerprinted.fingerprint;
        if let Some(entry) = self.cache.get(fingerprint) {
            return Ok(entry);
        }
        let (flight, is_owner) = {
            let mut inflight = lock_unpoisoned(&self.inflight);
            match inflight.get(&fingerprint.0) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        slot: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    inflight.insert(fingerprint.0, Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if !is_owner {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            C_COALESCED.add(1);
            let guard = lock_unpoisoned(&flight.slot);
            let guard = flight
                .ready
                .wait_while(guard, |slot| slot.is_none())
                .unwrap_or_else(PoisonError::into_inner);
            return guard.as_ref().expect("woken with a filled slot").clone();
        }
        let mut guard = FlightGuard {
            service: self,
            fingerprint,
            flight: &flight,
            armed: true,
        };
        // Re-check after winning ownership: a previous owner may have
        // compiled, published, and retired its flight between our cache
        // miss and the inflight claim — recompiling would be wasted work.
        // (Counter-free peek: the miss was already counted above.)
        let resident = match self.cache.peek(fingerprint) {
            Some(entry) => entry,
            None => match self.compile(fingerprinted) {
                // Publish to the cache before retiring the flight so there
                // is no window where the entry is reachable through
                // neither; serve the *resident* entry (the incumbent, if
                // another compile won a race) so owner and joiners agree.
                Ok(entry) => self.publish(fingerprint, Arc::new(entry)),
                Err(error) => {
                    // A caught compile panic: hand joiners the classified
                    // error (not the guard's generic one) and fail only
                    // this fingerprint's requests.
                    guard.armed = false;
                    self.retire_flight(&flight, fingerprint, Err(error.clone()));
                    return Err(error);
                }
            },
        };
        guard.armed = false;
        self.retire_flight(&flight, fingerprint, Ok(Arc::clone(&resident)));
        Ok(resident)
    }

    /// Fill a flight's slot, wake its joiners, and drop it from the
    /// in-flight table.
    fn retire_flight(
        &self,
        flight: &Flight,
        fingerprint: Fingerprint,
        result: Result<Arc<CompiledEntry>, ServiceError>,
    ) {
        *lock_unpoisoned(&flight.slot) = Some(result);
        flight.ready.notify_all();
        lock_unpoisoned(&self.inflight).remove(&fingerprint.0);
    }

    /// Run the back half of the pipeline with panic isolation: an unwind
    /// anywhere in simplify → diagram → layout (including an injected
    /// fault, see [`crate::fault`]) is caught here and classified as a
    /// `panic` error for this request alone. The process, the caches, and
    /// every other connection survive.
    fn compile(&self, fingerprinted: FingerprintedQuery) -> Result<CompiledEntry, ServiceError> {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        C_COMPILES.add(1);
        G_INFLIGHT.add(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            crate::fault::maybe_panic_compile(&fingerprinted.prepared.sql);
            compile_representative(fingerprinted)
        }));
        G_INFLIGHT.add(-1);
        result.map_err(|payload| {
            self.panics_caught.fetch_add(1, Ordering::Relaxed);
            C_PANICS.add(1);
            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.as_str()
            } else {
                "non-string panic payload"
            };
            ServiceError::new(
                ErrorKind::Panic,
                format!("diagram compilation panicked: {detail}"),
            )
        })
    }

    /// Publish a compiled entry into L2, invalidating whatever L1 texts
    /// pointed at the fingerprint the insert evicted. Returns the entry
    /// resident after the insert (the incumbent, if a race was lost).
    fn publish(&self, fingerprint: Fingerprint, entry: Arc<CompiledEntry>) -> Arc<CompiledEntry> {
        let (resident, evicted) = self.cache.insert_reporting(fingerprint, entry);
        if let Some(evicted) = evicted {
            self.memo.invalidate(evicted);
        }
        resident
    }

    fn respond(&self, request: &Request, sql_words: usize, entry: &CompiledEntry) -> Response {
        let formats: &[Format] = if request.formats.is_empty() {
            &self.config.default_formats
        } else {
            &request.formats
        };
        // Disclose when the artifacts were rendered from a different
        // (pattern-equivalent) query's SQL — labels may differ. The
        // disclosure shares the entry's Arc, like every artifact string.
        let representative_sql = (entry.representative_sql() != request.sql)
            .then(|| Arc::clone(entry.representative_shared()));
        // Opt-in sample rows: executed (and memoized) per entry, sliced
        // per request. Note the rows — like the diagram — come from the
        // pattern representative.
        let sample_rows = request.rows.map(|wanted| match entry.sample_rows() {
            Ok(samples) => {
                let take = wanted.min(samples.rows.len());
                SampleOutcome::Rows {
                    rows: samples.rows[..take].iter().map(Arc::clone).collect(),
                    truncated: samples.truncated || take < samples.rows.len(),
                }
            }
            Err(message) => SampleOutcome::Error(Arc::clone(message)),
        });
        Response {
            id: request.id,
            outcome: Ok(Artifacts {
                fingerprint: entry.fingerprint(),
                fingerprint_hex: Arc::clone(entry.fingerprint_hex()),
                sql_words,
                representative_sql,
                rendered: formats
                    .iter()
                    .map(|format| (*format, Arc::clone(entry.render(*format))))
                    .collect(),
                sample_rows,
            }),
        }
    }

    /// Serve a whole batch across `threads` workers.
    ///
    /// Responses come back in request order with contents independent of
    /// the worker count: per-pattern compilation is assigned to the
    /// pattern's first request in batch order, not to whichever thread
    /// gets there first.
    pub fn execute_batch(&self, requests: &[Request], threads: usize) -> Vec<Response> {
        let n = requests.len();
        // The batch is CPU-bound (no I/O anywhere in the pipeline), so
        // workers beyond the hardware's parallelism cannot overlap
        // anything — they only add spawn cost and context switches. Clamp
        // to the core count; the caller's `threads` is a ceiling, not a
        // demand, and output bytes are identical for any worker count.
        let hardware = std::thread::available_parallelism().map_or(1, usize::from);
        let threads = threads.clamp(1, hardware);
        self.requests.fetch_add(n as u64, Ordering::Relaxed);
        C_REQUESTS.add(n as u64);

        /// Result of the per-request front half: either the L1 memo
        /// recognized the text (no frontend ran), or the full frontend
        /// produced a prepared query, or the text is malformed. The
        /// prepared query is boxed so the per-request vector stays dense
        /// on warm batches, where almost every slot is the small `Memo`
        /// variant.
        enum Front {
            Memo {
                fingerprint: Fingerprint,
                words: usize,
            },
            Full {
                words: usize,
                fq: Box<FingerprintedQuery>,
            },
            Failed(ServiceError),
        }

        // Phase 1 — resolve every request's fingerprint in parallel: L1
        // memo probe first, full frontend on memo misses. The memo cannot
        // change any response byte — it returns exactly the fingerprint
        // and word count the frontend would recompute.
        let fronts: Vec<(Front, u64)> = run_indexed(n, threads, |i| {
            // Telemetry measures queue-free service time per request; the
            // frontend share is timed here, the compile/respond shares in
            // phases 3/4, and the sum is recorded in phase 4.
            let t0 = now_if_enabled();
            let _trace_scope = queryvis_telemetry::global()
                .tracing()
                .then(|| queryvis_telemetry::request_scope(requests[i].id));
            let front = (|| {
                let sql = &requests[i].sql;
                // (l1_hits is counted in phase 4, once it is known whether
                // the representative had to re-run the frontend after all.)
                if let Some((fingerprint, words)) = self.memo.lookup(sql) {
                    return Front::Memo {
                        fingerprint,
                        words: words as usize,
                    };
                }
                match fingerprint_sql(sql, Arc::clone(&self.options)) {
                    Ok(fq) => Front::Full {
                        words: fq.prepared.sql_word_count(),
                        fq: Box::new(fq),
                    },
                    Err(e) => Front::Failed(ServiceError::new(ErrorKind::Compile, e.to_string())),
                }
            })();
            let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            (front, ns)
        });
        let mut front_ns: Vec<u64> = Vec::with_capacity(n);
        let mut outcome: Vec<Result<usize, ServiceError>> = Vec::with_capacity(n);
        let mut fingerprints: Vec<Option<Fingerprint>> = Vec::with_capacity(n);
        let mut fqs: Vec<Option<Box<FingerprintedQuery>>> = Vec::with_capacity(n);
        // Which requests ran the full frontend (and should be memoized
        // once their entry is resident).
        let mut memoize: Vec<bool> = Vec::with_capacity(n);
        for (front, ns) in fronts {
            front_ns.push(ns);
            match front {
                Front::Memo { fingerprint, words } => {
                    outcome.push(Ok(words));
                    fingerprints.push(Some(fingerprint));
                    fqs.push(None);
                    memoize.push(false);
                }
                Front::Full { words, fq } => {
                    outcome.push(Ok(words));
                    fingerprints.push(Some(fq.fingerprint));
                    fqs.push(Some(fq));
                    memoize.push(true);
                }
                Front::Failed(message) => {
                    outcome.push(Err(message));
                    fingerprints.push(None);
                    fqs.push(None);
                    memoize.push(false);
                }
            }
        }
        let front_errors = outcome.iter().filter(|r| r.is_err()).count() as u64;
        self.errors.fetch_add(front_errors, Ordering::Relaxed);
        C_ERRORS.add(front_errors);

        // Phase 2 — group by fingerprint in request order; the first
        // occurrence is the representative. One cache lookup per group.
        struct Group {
            fingerprint: Fingerprint,
            representative: usize,
            entry: Option<Arc<CompiledEntry>>,
            /// Set only if the representative's compile failed (a caught
            /// panic) or its frontend re-run failed — the latter is
            /// unreachable when L1 normalization is sound, but a wrong
            /// answer must degrade to an error response, not a panic.
            failed: Option<ServiceError>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut group_index: HashMap<u128, usize> = HashMap::new();
        let mut group_of: Vec<Option<usize>> = vec![None; n];
        for (i, fingerprint) in fingerprints.iter().enumerate() {
            if let Some(fingerprint) = fingerprint {
                let gi = *group_index.entry(fingerprint.0).or_insert_with(|| {
                    groups.push(Group {
                        fingerprint: *fingerprint,
                        representative: i,
                        entry: None,
                        failed: None,
                    });
                    groups.len() - 1
                });
                group_of[i] = Some(gi);
            }
        }
        // Missing groups carry the representative's prepared query, or
        // `None` when the representative was an L1 hit whose L2 entry has
        // been evicted since — those re-run the frontend in phase 3.
        struct MissingGroup {
            group: usize,
            representative: usize,
            fq: Mutex<Option<Box<FingerprintedQuery>>>,
        }
        let mut missing: Vec<MissingGroup> = Vec::new();
        for (gi, group) in groups.iter_mut().enumerate() {
            match self.cache.get(group.fingerprint) {
                Some(entry) => group.entry = Some(entry),
                None => missing.push(MissingGroup {
                    group: gi,
                    representative: group.representative,
                    fq: Mutex::new(fqs[group.representative].take()),
                }),
            }
        }

        // Phase 3 — compile the missing representatives in parallel and
        // publish them. Joins within the batch are the coalesced ones.
        // (group index, refingerprinted, outcome, compile ns)
        type CompiledGroup = (usize, bool, Result<Arc<CompiledEntry>, ServiceError>, u64);
        let compiled: Vec<CompiledGroup> = run_indexed(missing.len(), threads, |k| {
            let job = &missing[k];
            let t0 = now_if_enabled();
            // Compile spans are attributed to the representative.
            let _trace_scope = queryvis_telemetry::global()
                .tracing()
                .then(|| queryvis_telemetry::request_scope(requests[job.representative].id));
            let (refingerprinted, fq) = match lock_unpoisoned(&job.fq).take() {
                Some(fq) => (false, Ok(*fq)),
                None => (
                    true,
                    fingerprint_sql(&requests[job.representative].sql, Arc::clone(&self.options))
                        .map_err(|e| ServiceError::new(ErrorKind::Compile, e.to_string())),
                ),
            };
            let (group, refingerprinted, result) = match fq {
                Ok(fq) => {
                    let fingerprint = fq.fingerprint;
                    // Keep whatever is resident after the insert: if a
                    // concurrent batch compiled the same fingerprint
                    // first, its incumbent wins and this whole group
                    // serves it, keeping responses consistent within
                    // the batch. A caught compile panic fails the whole
                    // group with a `panic` error instead.
                    let result = self
                        .compile(fq)
                        .map(|entry| self.publish(fingerprint, Arc::new(entry)));
                    (job.group, refingerprinted, result)
                }
                Err(error) => (job.group, refingerprinted, Err(error)),
            };
            let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            (group, refingerprinted, result, ns)
        });
        let mut freshly_compiled = vec![false; groups.len()];
        for job in &missing {
            freshly_compiled[job.group] = true;
        }
        // Groups whose representative was an L1 hit but had to re-run the
        // frontend anyway (its L2 entry was evicted in between): that one
        // request's frontend was not skipped, so it must not count as an
        // L1 hit in phase 4.
        let mut rep_refingerprinted = vec![false; groups.len()];
        // Compile time attributed to each group's representative when the
        // per-request service time is recorded in phase 4.
        let mut group_compile_ns = vec![0u64; groups.len()];
        for (gi, refingerprinted, result, ns) in compiled {
            rep_refingerprinted[gi] = refingerprinted;
            group_compile_ns[gi] = ns;
            match result {
                Ok(entry) => groups[gi].entry = Some(entry),
                Err(error) => groups[gi].failed = Some(error),
            }
        }

        // Phase 4 — render responses in parallel, in request order. Every
        // non-representative request performs its own cache lookup (a hit),
        // so counters reflect per-request traffic deterministically; the
        // requests that piggybacked on a batch compile count as coalesced.
        // Requests that ran the full frontend memoize their text here, now
        // that the entry is resident.
        run_indexed(n, threads, |i| {
            let request = &requests[i];
            let t0 = now_if_enabled();
            let _trace_scope = queryvis_telemetry::global()
                .tracing()
                .then(|| queryvis_telemetry::request_scope(request.id));
            let response = (|| match (&outcome[i], group_of[i]) {
                (Err(error), _) => Response {
                    id: request.id,
                    outcome: Err(error.clone()),
                },
                (Ok(words), Some(gi)) => {
                    let group = &groups[gi];
                    // Count the L1 hit exactly: a memo-resolved request
                    // skipped the frontend unless it was the representative
                    // that had to re-fingerprint after an L2 eviction.
                    let memo_resolved = !memoize[i];
                    if memo_resolved && !(group.representative == i && rep_refingerprinted[gi]) {
                        self.l1_hits.fetch_add(1, Ordering::Relaxed);
                        C_L1_HITS.add(1);
                    }
                    if let Some(error) = &group.failed {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        C_ERRORS.add(1);
                        return Response {
                            id: request.id,
                            outcome: Err(error.clone()),
                        };
                    }
                    // Every response in the group comes from the *same*
                    // entry (phase 2/3's resident), so disclosures stay
                    // consistent within a batch even if a concurrent batch
                    // touches the cache between phases. Non-representative
                    // members still perform their own lookup so counters
                    // reflect per-request traffic.
                    if group.representative != i {
                        if freshly_compiled[gi] {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            C_COALESCED.add(1);
                        }
                        let _ = self.cache.get(group.fingerprint);
                    }
                    let entry = Arc::clone(group.entry.as_ref().expect("filled in phase 2/3"));
                    if memoize[i] {
                        self.memo
                            .insert(&request.sql, group.fingerprint, *words as u32);
                    }
                    self.respond(request, *words, &entry)
                }
                (Ok(_), None) => unreachable!("fingerprinted requests always have a group"),
            })();
            if let Some(t0) = t0 {
                // Queue-free service time: this request's frontend share +
                // its compile (representatives only) + response assembly.
                let mut ns = front_ns[i] + t0.elapsed().as_nanos() as u64;
                if let Some(gi) = group_of[i] {
                    if groups[gi].representative == i {
                        ns += group_compile_ns[gi];
                    }
                }
                STAGE_REQUEST.record_ns(ns);
            }
            response
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, sql: &str) -> Request {
        Request {
            id,
            sql: sql.to_string(),
            formats: vec![Format::Ascii],
            rows: None,
        }
    }

    fn service() -> DiagramService {
        DiagramService::new(ServiceConfig::default())
    }

    #[test]
    fn single_request_miss_then_hit() {
        let service = service();
        let a = service.handle(&request(0, "SELECT T.a FROM T"));
        let b = service.handle(&request(1, "SELECT T.a FROM T"));
        assert!(a.outcome.is_ok() && b.outcome.is_ok());
        let stats = service.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn sample_rows_ride_along_when_requested() {
        let service = service();
        let mut with_rows = request(0, "SELECT T.a FROM T WHERE T.a > 1");
        with_rows.rows = Some(2);

        // Opted out: no rows key at all.
        let plain = service.handle(&request(1, "SELECT T.a FROM T WHERE T.a > 1"));
        let line = plain.to_json_line();
        let parsed = crate::json::parse(&line).unwrap();
        assert!(parsed.get("rows").is_none());
        assert!(parsed.get("rows_error").is_none());

        // Opted in: rows arrive as JSON arrays next to the artifacts, and
        // the diagram itself is unchanged.
        let served = service.handle(&with_rows);
        let line = served.to_json_line();
        let parsed = crate::json::parse(&line).unwrap();
        let rows = parsed
            .get("rows")
            .unwrap_or_else(|| panic!("no rows in {line}"))
            .as_arr()
            .unwrap();
        assert!(rows.len() <= 2);
        for row in rows {
            assert_eq!(row.as_arr().unwrap().len(), 1, "one select column");
        }
        assert!(parsed.get("artifacts").unwrap().get("ascii").is_some());

        // Deterministic: same request, same rows (served from the entry's
        // memoized samples on the warm path).
        let again = service.handle(&with_rows);
        assert_eq!(line, again.to_json_line());

        // A request with a huge count is capped, not a DoS: capped at the
        // entry's sample set.
        let mut greedy = request(2, "SELECT T.a FROM T WHERE T.a > 1");
        greedy.rows = Some(1_000_000);
        assert!(service.handle(&greedy).outcome.is_ok());
    }

    #[test]
    fn errors_are_reported_not_cached() {
        let service = service();
        let r = service.handle(&request(0, "SELECT FROM"));
        assert!(r.outcome.is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.compiles, 0);
        assert_eq!(stats.cache.entries, 0);
    }

    #[test]
    fn batch_output_is_identical_for_any_thread_count() {
        let sqls = [
            "SELECT T.a FROM T",
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)",
            "SELECT U.a FROM T U", // alias-renamed duplicate of the first
            "SELECT FROM",         // error
            "SELECT T.a FROM T",   // exact duplicate
        ];
        let requests: Vec<Request> = sqls
            .iter()
            .enumerate()
            .map(|(i, sql)| request(i as u64, sql))
            .collect();
        let baseline: Vec<String> = service()
            .execute_batch(&requests, 1)
            .iter()
            .map(Response::to_json_line)
            .collect();
        for threads in [2, 4, 8] {
            let lines: Vec<String> = service()
                .execute_batch(&requests, threads)
                .iter()
                .map(Response::to_json_line)
                .collect();
            assert_eq!(lines, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn batch_deduplicates_equivalent_queries() {
        let service = service();
        let requests = vec![
            request(0, "SELECT T.a FROM T"),
            request(1, "SELECT U.a FROM T U"),
            request(2, "SELECT T.a FROM T"),
        ];
        let responses = service.execute_batch(&requests, 4);
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
        let stats = service.stats();
        assert_eq!(stats.compiles, 1, "one compile for three equivalents");
        assert_eq!(stats.coalesced, 2);
        // All three share the representative's artifacts and fingerprint.
        let fingerprints: Vec<String> = responses
            .iter()
            .map(|r| r.outcome.as_ref().unwrap().fingerprint.to_string())
            .collect();
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert_eq!(fingerprints[1], fingerprints[2]);
        // The representative (request 0) serves its own SQL; the
        // alias-renamed equivalent is told whose artifacts it received.
        let representative_of = |i: usize| {
            responses[i]
                .outcome
                .as_ref()
                .unwrap()
                .representative_sql
                .as_deref()
                .map(str::to_string)
        };
        assert_eq!(representative_of(0), None);
        assert_eq!(representative_of(1), Some("SELECT T.a FROM T".to_string()));
        assert_eq!(representative_of(2), None, "textually identical");
    }

    #[test]
    fn second_batch_is_all_hits() {
        let service = service();
        // Six structurally distinct patterns (join chains of growing arity),
        // so the first batch compiles six entries.
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                let tables: Vec<String> = (0..=i).map(|t| format!("T{t}")).collect();
                let joins: Vec<String> = (1..=i).map(|t| format!("T0.a = T{t}.a")).collect();
                let sql = if joins.is_empty() {
                    format!("SELECT T0.a FROM {}", tables.join(", "))
                } else {
                    format!(
                        "SELECT T0.a FROM {} WHERE {}",
                        tables.join(", "),
                        joins.join(" AND ")
                    )
                };
                request(i as u64, &sql)
            })
            .collect();
        service.execute_batch(&requests, 2);
        let before = service.stats();
        service.execute_batch(&requests, 2);
        let after = service.stats();
        assert_eq!(after.compiles, before.compiles, "no new compiles");
        assert_eq!(after.cache.misses, before.cache.misses, "no new misses");
        assert_eq!(after.cache.hits - before.cache.hits, 6);
    }

    #[test]
    fn concurrent_handles_compile_once() {
        let service = Arc::new(service());
        let sql = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
                   (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
                   (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                    AND S.drink = L.drink))";
        std::thread::scope(|scope| {
            for i in 0..8 {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let r = service.handle(&request(i, sql));
                    assert!(r.outcome.is_ok());
                });
            }
        });
        assert_eq!(service.stats().compiles, 1);
        assert_eq!(service.stats().requests, 8);
    }
}
