//! Byte-level line transport for the serving layer (`std::net` only; the
//! workspace carries no async runtime).
//!
//! [`LineReader`] is the single line-framing implementation shared by the
//! TCP server and the stdin front end. It differs from
//! `BufRead::read_line` in exactly the ways robustness requires:
//!
//! * **Bounded.** A line longer than `max_line` is reported once as
//!   [`Poll::TooLarge`] and then *discarded to its newline* — the reader
//!   never buffers more than `max_line` bytes of an attacker-controlled
//!   line, and the stream stays usable afterwards (one structured error
//!   per oversized line, not a dead connection).
//! * **Tick-friendly.** A `WouldBlock`/`TimedOut` from the underlying
//!   stream (nonblocking sockets, `SO_RCVTIMEO` slices) surfaces as
//!   [`Poll::Idle`] instead of an error, so callers can interleave
//!   deadline checks and drain checks between read attempts.
//! * **EOF-precise.** A final unterminated line is still delivered before
//!   [`Poll::Eof`], and a half-closed peer (client shut down its write
//!   side) drains cleanly: every complete line received is served before
//!   the connection winds down.

use std::io::{self, ErrorKind as IoErrorKind, Read, Write};

/// One step of line extraction. Callers loop on [`LineReader::poll`] and
/// match; at most one underlying `read` happens per `Idle` return.
#[derive(Debug)]
pub enum Poll {
    /// A complete line (without its terminator; a trailing `\r` is
    /// stripped). Invalid UTF-8 is replaced, never fatal.
    Line(String),
    /// The current line exceeded the budget; `len` is the buffered length
    /// at detection time. The remainder of the line is discarded as it
    /// arrives, then reading resumes at the next line.
    TooLarge { len: usize },
    /// No complete line buffered and the underlying read would block (or
    /// its timeout slice elapsed). Check deadlines, then poll again.
    Idle,
    /// Clean end of stream, all buffered lines already delivered.
    Eof,
    /// Unrecoverable transport error.
    Fatal(io::Error),
}

/// Incremental bounded line framer over any [`Read`].
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (start of the current partial line).
    start: usize,
    /// Absolute index where the newline scan resumes (never rescan).
    scan: usize,
    /// Inside an oversized line: drop bytes until its newline.
    discarding: bool,
    /// Buffered length of the oversized line when it tripped the budget.
    discarded_len: usize,
    eof: bool,
    max_line: usize,
}

impl<R: Read> LineReader<R> {
    pub fn new(inner: R, max_line: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::with_capacity(4096),
            start: 0,
            scan: 0,
            discarding: false,
            discarded_len: 0,
            eof: false,
            max_line: max_line.max(1),
        }
    }

    /// Bytes of the current *partial* line buffered so far. Zero means the
    /// connection is between lines — the distinction slowloris deadlines
    /// key on (an idle connection is fine; a trickling line is not).
    pub fn partial_len(&self) -> usize {
        if self.discarding {
            self.discarded_len
        } else {
            self.buf.len() - self.start
        }
    }

    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Extract the next line, reading at most once when nothing complete
    /// is buffered.
    pub fn poll(&mut self) -> Poll {
        loop {
            // 1. Deliver anything already buffered.
            if let Some(i) = memchr_newline(&self.buf[self.scan..]) {
                let end = self.scan + i;
                let line_start = self.start;
                self.start = end + 1;
                self.scan = self.start;
                if self.discarding {
                    // The tail of an oversized line: swallow it and keep
                    // scanning from the next line.
                    self.discarding = false;
                    self.compact();
                    continue;
                }
                // A complete line can still exceed the budget when it and
                // its newline arrived within one read chunk — the partial
                // -line check below never saw it grow.
                let len = end - line_start;
                if len > self.max_line {
                    self.compact();
                    return Poll::TooLarge { len };
                }
                let mut end = end;
                if end > line_start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = String::from_utf8_lossy(&self.buf[line_start..end]).into_owned();
                self.compact();
                return Poll::Line(line);
            }
            self.scan = self.buf.len();

            // 2. Enforce the budget on the partial line.
            let pending = self.buf.len() - self.start;
            if pending > self.max_line {
                self.start = self.buf.len(); // drop the buffered excess
                self.compact();
                if !self.discarding {
                    self.discarding = true;
                    self.discarded_len = pending;
                    return Poll::TooLarge { len: pending };
                }
                self.discarded_len = self.discarded_len.saturating_add(pending);
            } else if self.discarding {
                // Still swallowing an oversized line: drop as we go so the
                // buffer never grows past the budget.
                self.discarded_len = self.discarded_len.saturating_add(pending);
                self.start = self.buf.len();
                self.compact();
            }

            // 3. Out of buffered data.
            if self.eof {
                let pending = self.buf.len() - self.start;
                if pending > 0 && !self.discarding {
                    // Final unterminated line.
                    let line = String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
                    self.start = self.buf.len();
                    self.compact();
                    return Poll::Line(line);
                }
                return Poll::Eof;
            }

            // 4. One read attempt.
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    return Poll::Idle;
                }
                Err(e) => return Poll::Fatal(e),
            }
        }
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            self.scan = 0;
        } else if self.start >= 4096 {
            self.buf.drain(..self.start);
            self.scan -= self.start;
            self.start = 0;
        }
    }
}

#[inline]
fn memchr_newline(haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == b'\n')
}

/// `write_all` with a stall budget instead of infinite patience: the
/// stream must carry `SO_SNDTIMEO` (`TcpStream::set_write_timeout`), and a
/// write slice that makes **zero progress** within one timeout window
/// fails with `TimedOut`. A slow-but-progressing reader is tolerated; a
/// reader that stops draining while the kernel buffer is full is cut off —
/// the server never queues unbounded output for one connection.
pub fn write_all_stall_bounded<W: Write>(stream: &mut W, bytes: &[u8]) -> io::Result<()> {
    let mut written = 0;
    while written < bytes.len() {
        match stream.write(&bytes[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    IoErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                return Err(io::Error::new(
                    IoErrorKind::TimedOut,
                    "write stalled past the per-connection budget",
                ));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Read` that yields scripted chunks, then `WouldBlock`, then EOF.
    struct Script {
        chunks: Vec<Vec<u8>>,
        pos: usize,
        block_between: bool,
        blocked: bool,
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.block_between && !self.blocked && self.pos < self.chunks.len() {
                self.blocked = true;
                return Err(io::Error::new(IoErrorKind::WouldBlock, "tick"));
            }
            self.blocked = false;
            if self.pos >= self.chunks.len() {
                return Ok(0);
            }
            let chunk = &self.chunks[self.pos];
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.pos += 1;
            } else {
                self.chunks[self.pos] = chunk[n..].to_vec();
            }
            Ok(n)
        }
    }

    fn script(chunks: &[&[u8]], block_between: bool) -> Script {
        Script {
            chunks: chunks.iter().map(|c| c.to_vec()).collect(),
            pos: 0,
            block_between,
            blocked: false,
        }
    }

    #[test]
    fn frames_lines_across_chunk_boundaries() {
        let r = script(&[b"hel", b"lo\nwor", b"ld\r\n", b"tail"], false);
        let mut lr = LineReader::new(r, 1024);
        assert!(matches!(lr.poll(), Poll::Line(l) if l == "hello"));
        assert!(matches!(lr.poll(), Poll::Line(l) if l == "world"));
        // Final unterminated line is still delivered before EOF.
        assert!(matches!(lr.poll(), Poll::Line(l) if l == "tail"));
        assert!(matches!(lr.poll(), Poll::Eof));
        assert!(matches!(lr.poll(), Poll::Eof));
    }

    #[test]
    fn would_block_surfaces_as_idle_not_error() {
        let r = script(&[b"par", b"tial\n"], true);
        let mut lr = LineReader::new(r, 1024);
        assert!(matches!(lr.poll(), Poll::Idle));
        assert_eq!(lr.partial_len(), 0);
        assert!(matches!(lr.poll(), Poll::Idle)); // "par" buffered, no line yet
        assert_eq!(lr.partial_len(), 3);
        assert!(matches!(lr.poll(), Poll::Line(l) if l == "partial"));
    }

    #[test]
    fn oversized_line_reported_once_then_stream_recovers() {
        let big = vec![b'x'; 100];
        let mut input = big.clone();
        input.extend_from_slice(b"\nafter\n");
        let r = script(&[&input], false);
        let mut lr = LineReader::new(r, 16);
        match lr.poll() {
            Poll::TooLarge { len } => assert!(len > 16),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The oversized line's tail is swallowed; the next line survives.
        assert!(matches!(lr.poll(), Poll::Line(l) if l == "after"));
        assert!(matches!(lr.poll(), Poll::Eof));
    }

    #[test]
    fn oversized_line_never_buffers_past_budget() {
        // 1 MiB line against a 1 KiB budget, fed in 8 KiB reads: the
        // buffer must stay bounded by budget + one read chunk.
        let mut input = vec![b'y'; 1 << 20];
        input.extend_from_slice(b"\nok\n");
        let r = script(&[&input], false);
        let mut lr = LineReader::new(r, 1024);
        assert!(matches!(lr.poll(), Poll::TooLarge { .. }));
        assert!(lr.buf.capacity() < 64 * 1024, "buffer grew unbounded");
        assert!(matches!(lr.poll(), Poll::Line(l) if l == "ok"));
    }

    #[test]
    fn oversized_final_line_without_newline_reaches_eof() {
        let big = vec![b'z'; 100];
        let r = script(&[&big], false);
        let mut lr = LineReader::new(r, 16);
        assert!(matches!(lr.poll(), Poll::TooLarge { .. }));
        assert!(matches!(lr.poll(), Poll::Eof));
    }

    #[test]
    fn stalled_write_times_out_instead_of_hanging() {
        struct Stalled;
        impl Write for Stalled {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(IoErrorKind::WouldBlock, "full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_stall_bounded(&mut Stalled, b"payload").unwrap_err();
        assert_eq!(err.kind(), IoErrorKind::TimedOut);
    }
}
