//! Scene diffs for incremental sessions: compute, serialize, parse, and
//! apply patch ops between two [`Scene`]s.
//!
//! A session `edit` response may carry `{"patch": [...]}` instead of a
//! full `scene_json` v2 document: a list of ops that transform the
//! session's last acknowledged scene into the new one. Patch ops address
//! marks by the stable structural ids [`build_scene`] assigns (see
//! `queryvis_layout::scene`), scoped to a branch index.
//!
//! Op vocabulary (also documented in DESIGN.md §9):
//!
//! * `{"op":"meta","w":W,"h":H}` — scene extent changed;
//! * `{"op":"badges","badges":[{"y":Y,"label":L},…]}` — badge band list
//!   replaced wholesale (bands are tiny; per-band deltas don't pay);
//! * `{"op":"branch","i":I,"dy":DY,"w":W,"h":H}` — branch I's offset or
//!   extent changed;
//! * `{"op":"remove","i":I,"id":ID}` — mark ID leaves branch I;
//! * `{"op":"add","i":I,"k":K,"mark":{…}}` — a new mark (full v2 object)
//!   enters branch I at paint-order index K;
//! * `{"op":"move","i":I,"id":ID,"k":K,"mark":{…}}` — a surviving mark
//!   re-geometried and/or re-ordered: replaced by the full v2 object at
//!   index K (its text, if any, is part of the object — no separate op
//!   needed when both change);
//! * `{"op":"retext","i":I,"id":ID,"s":S}` — a text mark whose string
//!   alone changed (the common case for identifier renames).
//!
//! The differ and applier share one order-reconstruction discipline: ops
//! `add`/`move` pin marks to explicit final indices, and every other
//! surviving mark keeps its relative paint order. [`apply_patch`] rebuilds
//! the scene *structurally*, so a pinned test can render the patched scene
//! and assert byte-equality with the independently rendered full scene —
//! if the vocabulary ever under-describes a change, that test fails rather
//! than a client drifting silently.
//!
//! Escape hatch: [`diff_scenes`] returns `None` (→ full resync) when the
//! branch structure changed (count or union flavor) — identity across a
//! branch split is not meaningful — and the session layer additionally
//! falls back to a full scene whenever the serialized patch would not be
//! smaller than the document it replaces.

use crate::json::{escape_into, write_u64, Json};
use crate::scene_json::write_mark_v2;
use queryvis::layout::{
    EdgeKind, EdgeMark, Mark, MarkRole, Point, Rect, RectMark, Scene, SceneBadge, StyleClass,
    TextMark, TextRole,
};

/// One scene patch op. Geometry travels as the full v2 mark object — the
/// writer and the full-document writer share byte-level serialization, so
/// patched and full renders cannot drift.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchOp {
    Meta {
        w: f64,
        h: f64,
    },
    Badges {
        badges: Vec<SceneBadge>,
    },
    Branch {
        i: usize,
        dy: f64,
        w: f64,
        h: f64,
    },
    Remove {
        i: usize,
        id: u32,
    },
    Add {
        i: usize,
        k: usize,
        mark: Mark,
    },
    Move {
        i: usize,
        id: u32,
        k: usize,
        mark: Mark,
    },
    Retext {
        i: usize,
        id: u32,
        s: String,
    },
}

impl PatchOp {
    fn branch_index(&self) -> Option<usize> {
        match self {
            PatchOp::Meta { .. } | PatchOp::Badges { .. } => None,
            PatchOp::Branch { i, .. }
            | PatchOp::Remove { i, .. }
            | PatchOp::Add { i, .. }
            | PatchOp::Move { i, .. }
            | PatchOp::Retext { i, .. } => Some(*i),
        }
    }
}

fn marks_equal_sans_text(a: &Mark, b: &Mark) -> bool {
    match (a, b) {
        (Mark::Text(x), Mark::Text(y)) => {
            x.id == y.id && x.anchor == y.anchor && x.role == y.role && x.class == y.class
        }
        _ => a == b,
    }
}

/// Diff two scenes into patch ops, or `None` when only a full resync is
/// sound (branch count or union flavor changed).
pub fn diff_scenes(old: &Scene, new: &Scene) -> Option<Vec<PatchOp>> {
    if old.branches.len() != new.branches.len() || old.union_all != new.union_all {
        return None;
    }
    let mut ops = Vec::new();
    if old.width != new.width || old.height != new.height {
        ops.push(PatchOp::Meta {
            w: new.width,
            h: new.height,
        });
    }
    if old.badges != new.badges {
        ops.push(PatchOp::Badges {
            badges: new.badges.clone(),
        });
    }
    for (i, (ob, nb)) in old.branches.iter().zip(&new.branches).enumerate() {
        if ob.dy != nb.dy || ob.width != nb.width || ob.height != nb.height {
            ops.push(PatchOp::Branch {
                i,
                dy: nb.dy,
                w: nb.width,
                h: nb.height,
            });
        }
        diff_marks(i, &ob.marks, &nb.marks, &mut ops)?;
    }
    Some(ops)
}

fn diff_marks(i: usize, old: &[Mark], new: &[Mark], ops: &mut Vec<PatchOp>) -> Option<()> {
    use std::collections::HashMap;
    let old_by_id: HashMap<u32, &Mark> = old.iter().map(|m| (m.id(), m)).collect();
    let new_ids: std::collections::HashSet<u32> = new.iter().map(|m| m.id()).collect();
    if old_by_id.len() != old.len() || new_ids.len() != new.len() {
        // Duplicate ids would make addressing ambiguous; resync. (The id
        // assigner probes to uniqueness per branch, so this cannot happen
        // unless a future refactor breaks it — fail safe, not subtle.)
        return None;
    }
    for m in old {
        if !new_ids.contains(&m.id()) {
            ops.push(PatchOp::Remove { i, id: m.id() });
        }
    }
    // Simulate the applier's order reconstruction: surviving old marks
    // (minus ones we decide to move) keep relative order; walk new marks
    // and pin any mark that is new, changed, or out of order to its index.
    let mut queue: std::collections::VecDeque<&Mark> =
        old.iter().filter(|m| new_ids.contains(&m.id())).collect();
    for (k, nm) in new.iter().enumerate() {
        let id = nm.id();
        match old_by_id.get(&id) {
            None => ops.push(PatchOp::Add {
                i,
                k,
                mark: nm.clone(),
            }),
            Some(om) => {
                let in_order = queue.front().is_some_and(|front| front.id() == id);
                if in_order && marks_equal_sans_text(om, nm) {
                    queue.pop_front();
                    if *om != nm {
                        let Mark::Text(t) = nm else { unreachable!() };
                        ops.push(PatchOp::Retext {
                            i,
                            id,
                            s: t.text.clone(),
                        });
                    }
                } else {
                    let pos = queue.iter().position(|m| m.id() == id).expect("survivor");
                    queue.remove(pos);
                    ops.push(PatchOp::Move {
                        i,
                        id,
                        k,
                        mark: nm.clone(),
                    });
                }
            }
        }
    }
    Some(())
}

/// Apply patch ops to a scene, producing the patched scene. Errors signal
/// a malformed or misdirected patch (unknown id, index out of range) —
/// the applier never panics on wire input.
pub fn apply_patch(base: &Scene, ops: &[PatchOp]) -> Result<Scene, String> {
    let mut scene = base.clone();
    for op in ops {
        if let Some(i) = op.branch_index() {
            if i >= scene.branches.len() {
                return Err(format!(
                    "patch addresses branch {i} of {}",
                    scene.branches.len()
                ));
            }
        }
        match op {
            PatchOp::Meta { w, h } => {
                scene.width = *w;
                scene.height = *h;
            }
            PatchOp::Badges { badges } => scene.badges = badges.clone(),
            PatchOp::Branch { i, dy, w, h } => {
                let b = &mut scene.branches[*i];
                b.dy = *dy;
                b.width = *w;
                b.height = *h;
            }
            _ => {}
        }
    }
    // Rebuild each touched branch's mark list with the shared
    // order-reconstruction discipline.
    for (i, branch) in scene.branches.iter_mut().enumerate() {
        let branch_ops: Vec<&PatchOp> = ops
            .iter()
            .filter(|op| op.branch_index() == Some(i))
            .collect();
        if !branch_ops.iter().any(|op| {
            matches!(
                op,
                PatchOp::Remove { .. }
                    | PatchOp::Add { .. }
                    | PatchOp::Move { .. }
                    | PatchOp::Retext { .. }
            )
        }) {
            continue;
        }
        let mut removed: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut pinned: std::collections::HashMap<usize, &PatchOp> =
            std::collections::HashMap::new();
        let mut retext: std::collections::HashMap<u32, &str> = std::collections::HashMap::new();
        let mut moved: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for op in &branch_ops {
            match op {
                PatchOp::Remove { id, .. } => {
                    removed.insert(*id);
                }
                // The guard's insert is the work; a clash (true) takes
                // the arm, a fresh pin (false) falls through to `_`.
                PatchOp::Add { k, .. } if pinned.insert(*k, op).is_some() => {
                    return Err(format!("two ops pin index {k} in branch {i}"));
                }
                PatchOp::Move { k, id, .. } => {
                    moved.insert(*id);
                    if pinned.insert(*k, op).is_some() {
                        return Err(format!("two ops pin index {k} in branch {i}"));
                    }
                }
                PatchOp::Retext { id, s, .. } => {
                    retext.insert(*id, s);
                }
                _ => {}
            }
        }
        let mut survivors: std::collections::VecDeque<&Mark> = branch
            .marks
            .iter()
            .filter(|m| !removed.contains(&m.id()) && !moved.contains(&m.id()))
            .collect();
        let known: std::collections::HashSet<u32> = branch.marks.iter().map(|m| m.id()).collect();
        for id in removed.iter().chain(moved.iter()).chain(retext.keys()) {
            if !known.contains(id) {
                return Err(format!(
                    "patch addresses unknown mark id {id} in branch {i}"
                ));
            }
        }
        let len = survivors.len() + pinned.len();
        let mut marks: Vec<Mark> = Vec::with_capacity(len);
        for k in 0..len {
            let mark = match pinned.get(&k) {
                Some(PatchOp::Add { mark, .. }) | Some(PatchOp::Move { mark, .. }) => mark.clone(),
                Some(_) => unreachable!("only add/move are pinned"),
                None => {
                    let m = survivors
                        .pop_front()
                        .ok_or_else(|| format!("patch underflows branch {i} at index {k}"))?;
                    m.clone()
                }
            };
            marks.push(mark);
        }
        if !survivors.is_empty() {
            return Err(format!(
                "patch leaves {} unplaced marks in branch {i}",
                survivors.len()
            ));
        }
        for mark in &mut marks {
            if let Some(s) = retext.get(&mark.id()) {
                match mark {
                    Mark::Text(t) => t.text = (*s).to_string(),
                    _ => return Err(format!("retext addresses non-text mark {}", mark.id())),
                }
            }
        }
        branch.marks = marks;
    }
    Ok(scene)
}

fn write_f64(out: &mut String, value: f64) {
    use std::fmt::Write;
    let _ = write!(out, "{value}");
}

/// Serialize patch ops as the `"patch"` array's contents (the ops only,
/// no surrounding brackets — the protocol writer owns the envelope).
pub fn write_patch_ops(out: &mut String, ops: &[PatchOp]) {
    for (n, op) in ops.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        match op {
            PatchOp::Meta { w, h } => {
                out.push_str("{\"op\":\"meta\",\"w\":");
                write_f64(out, *w);
                out.push_str(",\"h\":");
                write_f64(out, *h);
                out.push('}');
            }
            PatchOp::Badges { badges } => {
                out.push_str("{\"op\":\"badges\",\"badges\":[");
                for (j, badge) in badges.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"y\":");
                    write_f64(out, badge.y_mid);
                    out.push_str(",\"label\":");
                    escape_into(out, &badge.label);
                    out.push('}');
                }
                out.push_str("]}");
            }
            PatchOp::Branch { i, dy, w, h } => {
                out.push_str("{\"op\":\"branch\",\"i\":");
                write_u64(out, *i as u64);
                out.push_str(",\"dy\":");
                write_f64(out, *dy);
                out.push_str(",\"w\":");
                write_f64(out, *w);
                out.push_str(",\"h\":");
                write_f64(out, *h);
                out.push('}');
            }
            PatchOp::Remove { i, id } => {
                out.push_str("{\"op\":\"remove\",\"i\":");
                write_u64(out, *i as u64);
                out.push_str(",\"id\":");
                write_u64(out, u64::from(*id));
                out.push('}');
            }
            PatchOp::Add { i, k, mark } => {
                out.push_str("{\"op\":\"add\",\"i\":");
                write_u64(out, *i as u64);
                out.push_str(",\"k\":");
                write_u64(out, *k as u64);
                out.push_str(",\"mark\":");
                write_mark_v2(out, mark);
                out.push('}');
            }
            PatchOp::Move { i, id, k, mark } => {
                out.push_str("{\"op\":\"move\",\"i\":");
                write_u64(out, *i as u64);
                out.push_str(",\"id\":");
                write_u64(out, u64::from(*id));
                out.push_str(",\"k\":");
                write_u64(out, *k as u64);
                out.push_str(",\"mark\":");
                write_mark_v2(out, mark);
                out.push('}');
            }
            PatchOp::Retext { i, id, s } => {
                out.push_str("{\"op\":\"retext\",\"i\":");
                write_u64(out, *i as u64);
                out.push_str(",\"id\":");
                write_u64(out, u64::from(*id));
                out.push_str(",\"s\":");
                escape_into(out, s);
                out.push('}');
            }
        }
    }
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Int(n) => Some(*n as f64),
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(as_f64)
        .ok_or_else(|| format!("patch op missing number {key:?}"))
}

fn field_usize(obj: &Json, key: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("patch op missing integer {key:?}"))
}

fn field_id(obj: &Json, key: &str) -> Result<u32, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("patch op missing mark id {key:?}"))
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("patch op missing string {key:?}"))
}

fn class_of(name: &str) -> Result<StyleClass, String> {
    Ok(match name {
        "header_table" => StyleClass::HeaderTable,
        "header_select" => StyleClass::HeaderSelect,
        "row" => StyleClass::Row,
        "row_selection" => StyleClass::RowSelection,
        "row_group" => StyleClass::RowGroup,
        "box_not_exists" => StyleClass::BoxNotExists,
        "box_for_all" => StyleClass::BoxForAll,
        "box_for_all_inner" => StyleClass::BoxForAllInner,
        "frame" => StyleClass::Frame,
        other => return Err(format!("unknown style class {other:?}")),
    })
}

/// Parse one v2 mark object (as written by the scene_json v2 writer and
/// the `add`/`move` ops) back into a [`Mark`].
pub fn parse_mark(obj: &Json) -> Result<Mark, String> {
    let id = field_id(obj, "id")?;
    match field_str(obj, "t")? {
        "rect" => Ok(Mark::Rect(RectMark {
            id,
            rect: Rect::new(
                field_f64(obj, "x")?,
                field_f64(obj, "y")?,
                field_f64(obj, "w")?,
                field_f64(obj, "h")?,
            ),
            role: match field_str(obj, "role")? {
                "frame" => MarkRole::Frame,
                "header" => MarkRole::Header,
                "row" => MarkRole::Row,
                "quantifier_box" => MarkRole::QuantifierBox,
                other => return Err(format!("unknown rect role {other:?}")),
            },
            class: class_of(field_str(obj, "class")?)?,
            radius: field_f64(obj, "r")?,
        })),
        "text" => Ok(Mark::Text(TextMark {
            id,
            text: field_str(obj, "s")?.to_string(),
            anchor: Point {
                x: field_f64(obj, "x")?,
                y: field_f64(obj, "y")?,
            },
            role: match field_str(obj, "role")? {
                "title" => TextRole::Title,
                "title_annotation" => TextRole::TitleAnnotation,
                "row_text" => TextRole::RowText,
                "edge_label" => TextRole::EdgeLabel,
                other => return Err(format!("unknown text role {other:?}")),
            },
            class: class_of(field_str(obj, "class")?)?,
        })),
        "edge" => {
            let label = obj.get("label").and_then(Json::as_str).map(str::to_string);
            let (lx, ly) = if label.is_some() {
                (field_f64(obj, "lx")?, field_f64(obj, "ly")?)
            } else {
                (0.0, 0.0)
            };
            Ok(Mark::Edge(EdgeMark {
                id,
                from: Point {
                    x: field_f64(obj, "x1")?,
                    y: field_f64(obj, "y1")?,
                },
                to: Point {
                    x: field_f64(obj, "x2")?,
                    y: field_f64(obj, "y2")?,
                },
                kind: match field_str(obj, "kind")? {
                    "directed" => EdgeKind::Directed,
                    "undirected" => EdgeKind::Undirected,
                    other => return Err(format!("unknown edge kind {other:?}")),
                },
                label,
                label_pos: Point { x: lx, y: ly },
                from_text: field_str(obj, "from")?.to_string(),
                to_text: field_str(obj, "to")?.to_string(),
            }))
        }
        other => Err(format!("unknown mark type {other:?}")),
    }
}

/// Parse a `"patch"` array back into ops — the inverse of
/// [`write_patch_ops`], used by the equivalence tests to prove the wire
/// form carries everything the applier needs.
pub fn parse_patch_ops(arr: &[Json]) -> Result<Vec<PatchOp>, String> {
    let mut ops = Vec::with_capacity(arr.len());
    for obj in arr {
        let op = match field_str(obj, "op")? {
            "meta" => PatchOp::Meta {
                w: field_f64(obj, "w")?,
                h: field_f64(obj, "h")?,
            },
            "badges" => {
                let badges = obj
                    .get("badges")
                    .and_then(Json::as_arr)
                    .ok_or("badges op missing array")?;
                PatchOp::Badges {
                    badges: badges
                        .iter()
                        .map(|b| {
                            Ok(SceneBadge {
                                y_mid: field_f64(b, "y")?,
                                label: field_str(b, "label")?.to_string(),
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                }
            }
            "branch" => PatchOp::Branch {
                i: field_usize(obj, "i")?,
                dy: field_f64(obj, "dy")?,
                w: field_f64(obj, "w")?,
                h: field_f64(obj, "h")?,
            },
            "remove" => PatchOp::Remove {
                i: field_usize(obj, "i")?,
                id: field_id(obj, "id")?,
            },
            "add" => PatchOp::Add {
                i: field_usize(obj, "i")?,
                k: field_usize(obj, "k")?,
                mark: parse_mark(obj.get("mark").ok_or("add op missing mark")?)?,
            },
            "move" => PatchOp::Move {
                i: field_usize(obj, "i")?,
                id: field_id(obj, "id")?,
                k: field_usize(obj, "k")?,
                mark: parse_mark(obj.get("mark").ok_or("move op missing mark")?)?,
            },
            "retext" => PatchOp::Retext {
                i: field_usize(obj, "i")?,
                id: field_id(obj, "id")?,
                s: field_str(obj, "s")?.to_string(),
            },
            other => return Err(format!("unknown patch op {other:?}")),
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::scene_json::scene_json_v2;
    use queryvis::QueryVis;
    use std::sync::Arc;

    fn scene_of(sql: &str) -> Arc<Scene> {
        QueryVis::from_sql(sql).unwrap().scene()
    }

    /// Diff → serialize → parse → apply → render must equal the full
    /// render of the new scene, byte for byte.
    fn round_trip(old_sql: &str, new_sql: &str) -> Vec<PatchOp> {
        let (old, new) = (scene_of(old_sql), scene_of(new_sql));
        let ops = diff_scenes(&old, &new)
            .unwrap_or_else(|| panic!("expected a patch for {old_sql:?} → {new_sql:?}"));
        let mut wire = String::from("[");
        write_patch_ops(&mut wire, &ops);
        wire.push(']');
        let parsed = json::parse(&wire).expect("patch serializes as valid JSON");
        let reops = parse_patch_ops(parsed.as_arr().unwrap()).expect("patch parses back");
        // Unlabeled edges don't serialize `label_pos` (it is never
        // rendered), so compare the wire form, not the structs.
        let mut rewire = String::from("[");
        write_patch_ops(&mut rewire, &reops);
        rewire.push(']');
        assert_eq!(rewire, wire, "wire round trip changed the patch");
        let patched = apply_patch(&old, &reops).expect("patch applies");
        assert_eq!(
            scene_json_v2(&patched),
            scene_json_v2(&new),
            "patched scene != full scene for {old_sql:?} → {new_sql:?}"
        );
        ops
    }

    #[test]
    fn identical_scenes_diff_to_nothing() {
        let sql = "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'";
        let ops = round_trip(sql, sql);
        assert!(ops.is_empty(), "{ops:?}");
    }

    #[test]
    fn constant_edit_is_a_retext() {
        // Same-length literal: geometry is untouched, so the whole edit
        // is one retext of the predicate row's text.
        let ops = round_trip(
            "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'",
            "SELECT F.person FROM Frequents F WHERE F.bar = 'Ow1'",
        );
        assert_eq!(ops.len(), 1, "{ops:?}");
        assert!(matches!(&ops[0], PatchOp::Retext { s, .. } if s.contains("Ow1")));
    }

    #[test]
    fn added_predicate_adds_marks() {
        let ops = round_trip(
            "SELECT F.person FROM Frequents F",
            "SELECT F.person FROM Frequents F WHERE F.bar = 'Owl'",
        );
        assert!(ops.iter().any(|op| matches!(op, PatchOp::Add { .. })));
    }

    #[test]
    fn dropped_table_removes_marks() {
        round_trip(
            "SELECT F.person FROM Frequents F, Likes L WHERE F.person = L.person",
            "SELECT F.person FROM Frequents F",
        );
    }

    #[test]
    fn branch_count_change_forces_resync() {
        let old = scene_of("SELECT F.person FROM Frequents F");
        let new = scene_of("SELECT F.person FROM Frequents F UNION SELECT L.person FROM Likes L");
        assert_eq!(diff_scenes(&old, &new), None);
    }

    #[test]
    fn union_branch_edit_patches_in_place() {
        round_trip(
            "SELECT F.person FROM Frequents F UNION SELECT L.person FROM Likes L",
            "SELECT F.person FROM Frequents F UNION SELECT L.person FROM Likes L WHERE L.beer = 'IPA'",
        );
    }

    #[test]
    fn subquery_edits_round_trip() {
        round_trip(
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar)",
            "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
             (SELECT * FROM Serves S WHERE S.bar = F.bar AND S.beer = 'IPA')",
        );
    }

    #[test]
    fn applier_rejects_malformed_patches() {
        let scene = scene_of("SELECT F.person FROM Frequents F");
        assert!(apply_patch(&scene, &[PatchOp::Remove { i: 9, id: 1 }]).is_err());
        assert!(apply_patch(
            &scene,
            &[PatchOp::Remove {
                i: 0,
                id: 0xdead_beef
            }]
        )
        .is_err());
        assert!(apply_patch(
            &scene,
            &[PatchOp::Retext {
                i: 0,
                id: 0xdead_beef,
                s: String::new()
            }]
        )
        .is_err());
    }
}
