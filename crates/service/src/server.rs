//! `queryvis-server`: the fault-tolerant TCP front end (DESIGN.md §7).
//!
//! One listener, thread-per-connection over `std::net` (the workspace
//! carries no async runtime), JSON-lines request/response with pipelining
//! on persistent connections. Every robustness promise is structural:
//!
//! * **Admission control.** At most `max_conns` concurrent connections;
//!   excess connections get one `overloaded` error line (best effort) and
//!   are closed instead of queueing unboundedly.
//! * **Bounded input.** [`crate::net::LineReader`] caps request lines at
//!   `max_line` bytes — an oversized line costs one `too_large` error and
//!   is discarded to its newline; the connection survives.
//! * **Slowloris defense.** A *partial* line that does not complete
//!   within `read_deadline` earns a `timeout` error and disconnect. Idle
//!   connections (no partial line) live indefinitely.
//! * **Bounded output.** Responses are written with a stall budget
//!   (`write_stall`): a reader that stops draining is disconnected, so no
//!   connection can pin unbounded output memory.
//! * **Panic isolation.** Request handling runs under `catch_unwind` (on
//!   top of the service's own compile isolation): a poisoned request
//!   fails alone with a `panic` error; connection and process survive.
//! * **Graceful drain.** On shutdown (the `{"op":"shutdown"}` wire op or
//!   [`ServerHandle::shutdown`]) the listener stops accepting, backlog
//!   connections are refused with a `draining` error line, in-flight
//!   requests finish and flush, and [`Server::run`] returns a
//!   [`DrainReport`] whose `dropped` field is the accepted-but-unanswered
//!   count — zero in any clean drain.
//!
//! Wire operations besides compile requests: `{"op":"ping"}` (liveness),
//! `{"op":"stats"}` (one JSON line: server counters + the full
//! [`stats_snapshot_json`] document), `{"op":"shutdown"}` (ack, then
//! drain).

use crate::json::{self, Json};
use crate::net::{write_all_stall_bounded, LineReader, Poll};
use crate::protocol::{ErrorKind, Request, Response};
use crate::service::DiagramService;
use crate::session::{self, SessionConfig, SessionStore};
use crate::stats_json::{service_stats_json, session_stats_json, telemetry_json};
use queryvis_telemetry::CounterDef;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

static C_CONNECTIONS: CounterDef = CounterDef::new("net.connections");
static C_SHEDS: CounterDef = CounterDef::new("net.sheds");
static C_TIMEOUTS: CounterDef = CounterDef::new("net.timeouts");
static C_TOO_LARGE: CounterDef = CounterDef::new("net.too_large");
static C_SLOW: CounterDef = CounterDef::new("net.slow_disconnects");

/// Serving knobs. The defaults are sized for the fault-injection and soak
/// harnesses; production fronts would tune per deployment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for a free port (tests, CI).
    pub addr: String,
    /// Concurrent-connection ceiling; connection `max_conns + 1` is shed.
    pub max_conns: usize,
    /// Request-line byte budget (newline excluded).
    pub max_line: usize,
    /// Budget for a *partial* line to complete (slowloris defense).
    pub read_deadline: Duration,
    /// Budget for one zero-progress write slice (slow-reader defense).
    pub write_stall: Duration,
    /// Scheduling quantum: accept-loop sleep and read-timeout slice.
    /// Deadline precision is ± one tick.
    pub tick: Duration,
    /// Grace window for serving lines that are already in flight once
    /// drain begins; whatever completes inside it is answered.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 64,
            max_line: 1 << 20,
            read_deadline: Duration::from_secs(10),
            write_stall: Duration::from_secs(5),
            tick: Duration::from_millis(25),
            drain_grace: Duration::from_millis(500),
        }
    }
}

/// What the server did with its lifetime, returned by [`Server::run`]
/// after a drain completes. `accepted` counts complete request lines read
/// off sockets; `responded` counts response lines fully written; their
/// difference is `dropped` — zero unless a client vanished (or stalled
/// past its write budget) between sending a request and reading its
/// answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    pub accepted: u64,
    pub responded: u64,
    pub dropped: u64,
    pub connections: u64,
    pub sheds: u64,
    pub drain_refusals: u64,
    pub timeouts: u64,
    pub too_large: u64,
    pub slow_disconnects: u64,
    /// Edit sessions still open when the drain completed, closed by it —
    /// zero when every client closed (or lost) its sessions first.
    pub sessions_closed: u64,
}

impl DrainReport {
    pub fn json(&self) -> Json {
        Json::Obj(vec![
            ("accepted".to_string(), Json::Int(self.accepted)),
            ("responded".to_string(), Json::Int(self.responded)),
            ("dropped".to_string(), Json::Int(self.dropped)),
            ("connections".to_string(), Json::Int(self.connections)),
            ("sheds".to_string(), Json::Int(self.sheds)),
            ("drain_refusals".to_string(), Json::Int(self.drain_refusals)),
            ("timeouts".to_string(), Json::Int(self.timeouts)),
            ("too_large".to_string(), Json::Int(self.too_large)),
            (
                "slow_disconnects".to_string(),
                Json::Int(self.slow_disconnects),
            ),
            (
                "sessions_closed".to_string(),
                Json::Int(self.sessions_closed),
            ),
        ])
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    service: Arc<DiagramService>,
    sessions: SessionStore,
    config: ServerConfig,
    draining: AtomicBool,
    open_conns: AtomicUsize,
    connections: AtomicU64,
    accepted: AtomicU64,
    responded: AtomicU64,
    sheds: AtomicU64,
    drain_refusals: AtomicU64,
    timeouts: AtomicU64,
    too_large: AtomicU64,
    slow_disconnects: AtomicU64,
}

impl Shared {
    fn report(&self) -> DrainReport {
        let accepted = self.accepted.load(Ordering::Relaxed);
        let responded = self.responded.load(Ordering::Relaxed);
        DrainReport {
            accepted,
            responded,
            dropped: accepted.saturating_sub(responded),
            connections: self.connections.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            drain_refusals: self.drain_refusals.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            too_large: self.too_large.load(Ordering::Relaxed),
            slow_disconnects: self.slow_disconnects.load(Ordering::Relaxed),
            sessions_closed: 0, // filled in by the drain in `run`
        }
    }

    /// The `{"op":"stats"}` response: live server counters plus the full
    /// stats snapshot document, as one line.
    fn stats_line(&self) -> String {
        let server = Json::Obj(vec![
            (
                "accepted".to_string(),
                Json::Int(self.accepted.load(Ordering::Relaxed)),
            ),
            (
                "responded".to_string(),
                Json::Int(self.responded.load(Ordering::Relaxed)),
            ),
            (
                "connections_total".to_string(),
                Json::Int(self.connections.load(Ordering::Relaxed)),
            ),
            (
                "connections_open".to_string(),
                Json::Int(self.open_conns.load(Ordering::Relaxed) as u64),
            ),
            (
                "sheds".to_string(),
                Json::Int(self.sheds.load(Ordering::Relaxed)),
            ),
            (
                "timeouts".to_string(),
                Json::Int(self.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "too_large".to_string(),
                Json::Int(self.too_large.load(Ordering::Relaxed)),
            ),
            (
                "slow_disconnects".to_string(),
                Json::Int(self.slow_disconnects.load(Ordering::Relaxed)),
            ),
            (
                "draining".to_string(),
                Json::Bool(self.draining.load(Ordering::Acquire)),
            ),
        ]);
        Json::Obj(vec![
            ("op".to_string(), Json::Str("stats".to_string())),
            ("server".to_string(), server),
            (
                "service".to_string(),
                service_stats_json(&self.service.stats()),
            ),
            (
                "sessions".to_string(),
                session_stats_json(&self.sessions.snapshot()),
            ),
            (
                "telemetry".to_string(),
                telemetry_json(&queryvis_telemetry::global().snapshot()),
            ),
        ])
        .to_string()
    }

    /// Best-effort one-line refusal on a connection we will not serve
    /// (admission shed or drain), then close. The write gets a short
    /// budget so a non-reading client cannot stall the accept loop.
    fn refuse(&self, mut stream: TcpStream, kind: ErrorKind, message: &str) {
        match kind {
            ErrorKind::Overloaded => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
                C_SHEDS.add(1);
            }
            _ => {
                self.drain_refusals.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let mut line = Response::error_kind(0, kind, message).to_json_line();
        line.push('\n');
        let _ = write_all_stall_bounded(&mut stream, line.as_bytes());
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread in the accept loop; [`Server::spawn`] runs it on its own thread
/// and returns the control handle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Remote control for a running server: its bound address, a drain
/// trigger, and the join that yields the final [`DrainReport`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<thread::JoinHandle<DrainReport>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin the drain (idempotent): stop accepting, finish in-flight
    /// requests, flush, exit.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Wait for the drain to complete. `None` when this handle did not
    /// own the server thread ([`Server::run`] callers get the report from
    /// `run` itself).
    pub fn join(mut self) -> Option<DrainReport> {
        self.thread
            .take()
            .map(|t| t.join().expect("server thread must not panic"))
    }
}

impl Server {
    /// Bind the listener (port 0 supported) with a service the caller
    /// configured. No thread starts until `run`/`spawn`.
    pub fn bind(service: Arc<DiagramService>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                sessions: SessionStore::new(Arc::clone(&service), SessionConfig::default()),
                service,
                config,
                draining: AtomicBool::new(false),
                open_conns: AtomicUsize::new(0),
                connections: AtomicU64::new(0),
                accepted: AtomicU64::new(0),
                responded: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                drain_refusals: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                too_large: AtomicU64::new(0),
                slow_disconnects: AtomicU64::new(0),
            }),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle usable from other threads while `run` blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
            thread: None,
        }
    }

    /// Run the accept loop to drain completion on this thread.
    pub fn run(self) -> DrainReport {
        let Server {
            listener, shared, ..
        } = self;
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !shared.draining.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    workers.retain(|w| !w.is_finished());
                    if shared.open_conns.load(Ordering::Acquire) >= shared.config.max_conns {
                        shared.refuse(
                            stream,
                            ErrorKind::Overloaded,
                            "connection limit reached; retry against a less-loaded server",
                        );
                        continue;
                    }
                    shared.open_conns.fetch_add(1, Ordering::AcqRel);
                    // The connection ordinal doubles as the session owner
                    // id: sessions opened here die with this connection.
                    let owner = shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
                    C_CONNECTIONS.add(1);
                    let conn_shared = Arc::clone(&shared);
                    workers.push(thread::spawn(move || {
                        serve_connection(&conn_shared, stream, owner);
                        conn_shared.sessions.reap_owner(owner);
                        conn_shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(shared.config.tick);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => thread::sleep(shared.config.tick),
            }
        }
        // Drain: refuse whatever is still in the backlog with a
        // structured notice, then stop listening and let in-flight
        // connections finish.
        while let Ok((stream, _peer)) = listener.accept() {
            shared.refuse(
                stream,
                ErrorKind::Draining,
                "server is draining toward shutdown",
            );
        }
        drop(listener);
        for worker in workers {
            let _ = worker.join();
        }
        // Workers have reaped their own sessions on the way out; whatever
        // is left (none, in a clean drain) is closed here so the ledger
        // balances.
        let sessions_closed = shared.sessions.close_all() as u64;
        let mut report = shared.report();
        report.sessions_closed = sessions_closed;
        report
    }

    /// Run on a dedicated thread; the returned handle joins for the
    /// [`DrainReport`].
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        }
    }
}

/// What one request line turned into.
enum Dispatch {
    /// A response line to write (no trailing newline yet).
    Respond(String),
    /// A shutdown ack to write, then begin the drain.
    Shutdown(String),
}

fn dispatch(shared: &Shared, text: &str, default_id: u64, owner: u64) -> Dispatch {
    // Wire operations ride the same JSON-lines framing with an `op` key.
    if let Ok(value) = json::parse(text) {
        if session::is_session_op(&value) {
            return Dispatch::Respond(shared.sessions.dispatch_value(&value, default_id, owner));
        }
        if let Some(op) = value.get("op").and_then(Json::as_str) {
            return match op {
                "ping" => Dispatch::Respond("{\"op\":\"ping\",\"ok\":true}".to_string()),
                "stats" => Dispatch::Respond(shared.stats_line()),
                "shutdown" => {
                    Dispatch::Shutdown("{\"op\":\"shutdown\",\"draining\":true}".to_string())
                }
                other => Dispatch::Respond(
                    Response::error_kind(
                        default_id,
                        ErrorKind::BadRequest,
                        format!("unknown op `{other}` (ping, stats, shutdown, open, edit, close)"),
                    )
                    .to_json_line(),
                ),
            };
        }
    }
    match Request::from_json_line(text, default_id) {
        Ok(request) => Dispatch::Respond(shared.service.handle(&request).to_json_line()),
        Err(message) => Dispatch::Respond(
            Response::error_kind(
                default_id,
                ErrorKind::BadRequest,
                format!("bad request: {message}"),
            )
            .to_json_line(),
        ),
    }
}

/// Write one response line; a stall past the write budget (or any other
/// write failure) kills the connection. Returns whether the line was
/// fully written.
fn write_response(shared: &Shared, writer: &mut TcpStream, line: &mut String) -> bool {
    line.push('\n');
    match write_all_stall_bounded(writer, line.as_bytes()) {
        Ok(()) => {
            shared.responded.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(e) => {
            if e.kind() == io::ErrorKind::TimedOut {
                shared.slow_disconnects.fetch_add(1, Ordering::Relaxed);
                C_SLOW.add(1);
            }
            false
        }
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream, owner: u64) {
    let config = &shared.config;
    // Read in `tick` slices so deadline and drain checks interleave with
    // blocking reads; writes carry the stall budget.
    if stream.set_read_timeout(Some(config.tick)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(config.write_stall));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(stream, config.max_line);
    let mut line_no: u64 = 0;
    // Start of the current partial line (slowloris deadline anchor).
    let mut partial_since: Option<Instant> = None;
    // When drain was first observed on this connection.
    let mut drain_since: Option<Instant> = None;

    loop {
        if shared.draining.load(Ordering::Acquire) {
            let since = drain_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= config.drain_grace {
                break; // whatever is still partial was never accepted
            }
        }
        match reader.poll() {
            Poll::Line(text) => {
                partial_since = None;
                let id = line_no;
                line_no += 1;
                if text.trim().is_empty() {
                    continue;
                }
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                // Panic isolation above the service's own compile guard:
                // no request line may take down the connection thread.
                let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(shared, &text, id, owner)));
                let outcome = outcome.unwrap_or_else(|_| {
                    Dispatch::Respond(
                        Response::error_kind(
                            id,
                            ErrorKind::Panic,
                            "request handling panicked; the fault was isolated to this request",
                        )
                        .to_json_line(),
                    )
                });
                match outcome {
                    Dispatch::Respond(mut line) => {
                        if !write_response(shared, &mut writer, &mut line) {
                            return;
                        }
                    }
                    Dispatch::Shutdown(mut ack) => {
                        let ok = write_response(shared, &mut writer, &mut ack);
                        shared.draining.store(true, Ordering::Release);
                        if !ok {
                            return;
                        }
                    }
                }
            }
            Poll::TooLarge { len } => {
                partial_since = None;
                let id = line_no;
                line_no += 1;
                shared.too_large.fetch_add(1, Ordering::Relaxed);
                C_TOO_LARGE.add(1);
                // The line was received (and discarded): count it so the
                // error response keeps accepted == responded.
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let mut line = Response::error_kind(
                    id,
                    ErrorKind::TooLarge,
                    format!(
                        "request line exceeded the {} byte budget (received at least {len})",
                        config.max_line
                    ),
                )
                .to_json_line();
                if !write_response(shared, &mut writer, &mut line) {
                    return;
                }
            }
            Poll::Idle => {
                if reader.partial_len() == 0 {
                    partial_since = None;
                    if shared.draining.load(Ordering::Acquire) {
                        break; // between requests and draining: done
                    }
                    continue;
                }
                let since = partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= config.read_deadline {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    C_TIMEOUTS.add(1);
                    let mut line = Response::error_kind(
                        line_no,
                        ErrorKind::Timeout,
                        format!(
                            "request line did not complete within {:?}",
                            config.read_deadline
                        ),
                    )
                    .to_json_line();
                    line.push('\n');
                    let _ = write_all_stall_bounded(&mut writer, line.as_bytes());
                    break;
                }
            }
            Poll::Eof => break,
            Poll::Fatal(_) => break,
        }
    }
    let _ = writer.flush();
    let _ = writer.shutdown(Shutdown::Both);
}
