//! # queryvis-service
//!
//! A high-throughput diagram-compilation service over the `queryvis`
//! pipeline, built on the paper's observation that *queries sharing a
//! logical pattern share one diagram* (§1.1, App. G): the serving layer
//! canonicalizes each query, hashes the pattern into a stable 128-bit
//! [`Fingerprint`], and deduplicates all compilation work behind it.
//!
//! Architecture (front half always runs, back half only on cache misses):
//!
//! ```text
//! SQL text → parse → translate → canonical pattern → fingerprint
//!                                                     │ sharded LRU cache
//!                                                     │  miss → simplify →
//!                                                     │  diagram → layout →
//!                                                     │  render (lazy/format)
//!                                                     └→ artifacts
//! ```
//!
//! * [`fingerprint`] — canonical-pattern cache keys;
//! * [`cache`] — the N-shard mutex-striped LRU with hit/miss/eviction
//!   counters;
//! * [`compile`] — immutable compiled entries (pattern representatives)
//!   with lazily rendered per-format artifacts;
//! * [`service`] — [`DiagramService`]: single-request serving with
//!   in-flight deduplication, plus the deterministic batch executor;
//! * [`executor`] — the fixed thread pool primitive;
//! * [`protocol`] / [`json`] — the JSON-lines wire format of the
//!   `service` binary (see the repository `README.md` for examples).

pub mod cache;
pub mod compile;
pub mod executor;
pub mod fingerprint;
pub mod json;
pub mod protocol;
pub mod service;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use compile::{compile_representative, CompiledEntry};
pub use fingerprint::{fingerprint_sql, Fingerprint, FingerprintedQuery};
pub use protocol::{Artifacts, Format, Request, Response};
pub use service::{DiagramService, ServiceConfig, ServiceStats};

/// Every query of the paper corpus as a request batch — the standard
/// workload of the `service` binary's `--corpus` mode and the throughput
/// benchmark. Ids are assigned in corpus order.
pub fn paper_corpus_requests(formats: &[Format]) -> Vec<Request> {
    let mut sqls: Vec<String> = Vec::new();
    sqls.push(queryvis_corpus::unique_set_sql().to_string());
    sqls.push(queryvis_corpus::qsome_sql().to_string());
    sqls.push(queryvis_corpus::qonly_sql().to_string());
    sqls.extend(
        queryvis_corpus::sailors_only_variants()
            .iter()
            .map(|s| s.to_string()),
    );
    sqls.extend(
        queryvis_corpus::pattern_grid()
            .iter()
            .map(|q| q.sql.clone()),
    );
    sqls.extend(
        queryvis_corpus::study_questions()
            .iter()
            .map(|q| q.sql.to_string()),
    );
    sqls.extend(
        queryvis_corpus::qualification_questions()
            .iter()
            .map(|q| q.sql.to_string()),
    );
    sqls.extend(
        queryvis_corpus::tutorial_examples()
            .iter()
            .map(|e| e.sql.to_string()),
    );
    sqls.into_iter()
        .enumerate()
        .map(|(i, sql)| Request {
            id: i as u64,
            sql,
            formats: formats.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_batch_is_substantial_and_well_formed() {
        let requests = paper_corpus_requests(&[Format::Ascii]);
        assert!(
            requests.len() >= 36,
            "corpus has {} queries",
            requests.len()
        );
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(!r.sql.is_empty());
        }
    }
}
