//! # queryvis-service
//!
//! A high-throughput diagram-compilation service over the `queryvis`
//! pipeline, built on the paper's observation that *queries sharing a
//! logical pattern share one diagram* (§1.1, App. G): the serving layer
//! canonicalizes each query, hashes the pattern into a stable 128-bit
//! [`Fingerprint`], and deduplicates all compilation work behind it.
//!
//! Architecture (two cache levels; a request descends only as far as it
//! must — repeat texts skip the frontend, repeat patterns skip the
//! compile):
//!
//! ```text
//! SQL text → L1 memo (normalized bytes → fingerprint)
//!              │ miss: parse → translate → canonical pattern → fingerprint
//!              ▼
//!            L2 sharded LRU (fingerprint → compiled entry)
//!              │  miss → simplify → diagram → layout →
//!              │         render (lazy per format)
//!              └→ artifacts (Arc<str>, shared into responses)
//! ```
//!
//! * [`memo`] — the L1 text→fingerprint memo (byte-level normalization,
//!   exact match, invalidated on L2 eviction);
//! * [`fingerprint`] — canonical-pattern cache keys;
//! * [`cache`] — the N-shard ARC cache with a lock-free (seqlock +
//!   epoch) read side and hit/miss/eviction counters;
//! * [`epoch`] — the pin/era/limbo reclamation protocol both cache
//!   levels use to make unlocked pointer reads sound;
//! * [`compile`] — immutable compiled entries (pattern representatives)
//!   with lazily rendered, `Arc`-shared per-format artifacts;
//! * [`service`] — [`DiagramService`]: single-request serving with
//!   in-flight deduplication, plus the deterministic batch executor;
//! * [`executor`] — the fixed thread pool primitive;
//! * [`protocol`] / [`json`] — the JSON-lines wire format of the
//!   `service` binary (see the repository `README.md` for examples),
//!   serialized without intermediate trees by
//!   [`Response::write_json_line`];
//! * [`scene_json`] — the machine-readable scene export: one entry's
//!   shared [`Scene`](queryvis::layout::Scene) display list (svg, ascii,
//!   and scene_json all render from it — one layout per entry) as a JSON
//!   document a browser client can draw directly;
//! * [`stats_json`] — the observability export: [`ServiceStats`] plus the
//!   process-wide `queryvis-telemetry` snapshot (per-stage latency
//!   histograms, mirrored counters, `pass.*` timings) as one
//!   schema-stable JSON document, and the `--trace-jsonl` span dump.

pub mod cache;
pub mod compile;
pub mod epoch;
pub mod executor;
pub mod fault;
pub mod fingerprint;
pub mod json;
pub mod memo;
pub mod net;
pub mod protocol;
pub mod scene_diff;
pub mod scene_json;
pub mod server;
pub mod service;
pub mod session;
pub mod stats_json;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use compile::{compile_representative, CompiledEntry};
pub use fingerprint::{fingerprint_prepared, fingerprint_sql, Fingerprint, FingerprintedQuery};
pub use memo::{L1Memo, MemoConfig, MemoStats};
pub use protocol::{Artifacts, ErrorKind, Format, Request, Response, ServiceError};
pub use scene_diff::{apply_patch, diff_scenes, parse_patch_ops, write_patch_ops, PatchOp};
pub use scene_json::{scene_json, scene_json_v2, write_scene_json, write_scene_json_v2};
pub use server::{DrainReport, Server, ServerConfig, ServerHandle};
pub use service::{DiagramService, ServiceConfig, ServiceStats};
pub use session::{SessionConfig, SessionReply, SessionStatsSnapshot, SessionStore};
pub use stats_json::{session_stats_json, stats_snapshot_json, write_trace_jsonl};

/// Every query of the paper corpus as a request batch — the standard
/// workload of the `service` binary's `--corpus` mode and the throughput
/// benchmark. Ids are assigned in corpus order.
pub fn paper_corpus_requests(formats: &[Format]) -> Vec<Request> {
    let mut sqls: Vec<String> = Vec::new();
    sqls.push(queryvis_corpus::unique_set_sql().to_string());
    sqls.push(queryvis_corpus::qsome_sql().to_string());
    sqls.push(queryvis_corpus::qonly_sql().to_string());
    sqls.extend(
        queryvis_corpus::sailors_only_variants()
            .iter()
            .map(|s| s.to_string()),
    );
    sqls.extend(
        queryvis_corpus::pattern_grid()
            .iter()
            .map(|q| q.sql.clone()),
    );
    sqls.extend(
        queryvis_corpus::study_questions()
            .iter()
            .map(|q| q.sql.to_string()),
    );
    sqls.extend(
        queryvis_corpus::qualification_questions()
            .iter()
            .map(|q| q.sql.to_string()),
    );
    sqls.extend(
        queryvis_corpus::tutorial_examples()
            .iter()
            .map(|e| e.sql.to_string()),
    );
    sqls.into_iter()
        .enumerate()
        .map(|(i, sql)| Request {
            id: i as u64,
            sql,
            formats: formats.to_vec(),
            rows: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_batch_is_substantial_and_well_formed() {
        let requests = paper_corpus_requests(&[Format::Ascii]);
        assert!(
            requests.len() >= 36,
            "corpus has {} queries",
            requests.len()
        );
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(!r.sql.is_empty());
        }
    }
}
