//! The TCP front end over real sockets: every fault class the server
//! promises to survive, driven in-process against `Server::spawn` —
//! pipelining, malformed frames, oversized lines, slowloris, half-close,
//! connection floods, injected compile panics, and graceful drain with
//! zero accepted-but-dropped requests.

use queryvis_service::json::{self, Json};
use queryvis_service::{fault, DiagramService, Server, ServerConfig, ServerHandle, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(mut config: ServerConfig) -> ServerHandle {
    config.addr = "127.0.0.1:0".to_string();
    config.tick = Duration::from_millis(10);
    let service = Arc::new(DiagramService::new(ServiceConfig::default()));
    Server::bind(service, config)
        .expect("bind on a free port")
        .spawn()
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

/// Send one line, read one response line, parse it.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    read_line(reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.ends_with('\n'), "response must be a complete line");
    json::parse(&line).unwrap_or_else(|e| panic!("response must be JSON ({e}): {line}"))
}

fn paired(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = connect(addr);
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn error_kind(response: &Json) -> Option<String> {
    response
        .get("error_kind")
        .and_then(Json::as_str)
        .map(str::to_string)
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let server = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = paired(server.addr());

    // Pipeline: write every request before reading any response.
    let mut batch = String::new();
    for id in 0..8 {
        batch.push_str(&format!(
            "{{\"id\":{id},\"sql\":\"SELECT T.a FROM T WHERE T.a = {id}\"}}\n"
        ));
    }
    stream.write_all(batch.as_bytes()).expect("pipeline");
    for id in 0..8 {
        let response = read_line(&mut reader);
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
        assert!(response.get("artifacts").is_some(), "id {id} must succeed");
    }

    server.shutdown();
    let report = server.join().expect("report");
    assert_eq!(report.accepted, 8);
    assert_eq!(report.responded, 8);
    assert_eq!(report.dropped, 0);
}

#[test]
fn malformed_and_unknown_frames_get_structured_errors_and_the_connection_survives() {
    let server = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = paired(server.addr());

    let bad = roundtrip(&mut stream, &mut reader, "{{{not json");
    assert_eq!(error_kind(&bad).as_deref(), Some("bad_request"));
    let bad = roundtrip(&mut stream, &mut reader, "{\"sql\":7}");
    assert_eq!(error_kind(&bad).as_deref(), Some("bad_request"));
    let bad = roundtrip(&mut stream, &mut reader, "{\"op\":\"reboot\"}");
    assert_eq!(error_kind(&bad).as_deref(), Some("bad_request"));
    // A compile-rejected query is an error, not a disconnect.
    let bad = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":4,\"sql\":\"DROP TABLE T\"}",
    );
    assert_eq!(error_kind(&bad).as_deref(), Some("compile"));
    // Same connection still serves good requests afterwards.
    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":9,\"sql\":\"SELECT T.a FROM T\"}",
    );
    assert!(
        ok.get("artifacts").is_some(),
        "connection must survive: {ok:?}"
    );

    server.shutdown();
    assert_eq!(server.join().expect("report").dropped, 0);
}

#[test]
fn oversized_line_costs_one_too_large_error_not_the_connection() {
    let server = spawn_server(ServerConfig {
        max_line: 4096,
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = paired(server.addr());

    let huge = format!(
        "{{\"id\":1,\"sql\":\"SELECT T.a FROM T WHERE T.a = {}\"}}",
        "1".repeat(64 * 1024)
    );
    let response = roundtrip(&mut stream, &mut reader, &huge);
    assert_eq!(error_kind(&response).as_deref(), Some("too_large"));
    // The oversized line was discarded to its newline; the stream is clean.
    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":2,\"sql\":\"SELECT T.a FROM T\"}",
    );
    assert!(ok.get("artifacts").is_some(), "stream must recover: {ok:?}");

    server.shutdown();
    let report = server.join().expect("report");
    assert_eq!(report.too_large, 1);
    assert_eq!(report.dropped, 0);
}

#[test]
fn slowloris_partial_line_times_out_with_a_structured_error() {
    let server = spawn_server(ServerConfig {
        read_deadline: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = paired(server.addr());

    // Trickle partial-line bytes far slower than the deadline allows;
    // the writes start failing once the server gives up on us.
    let doomed = b"{\"id\":1,\"sql\":\"SELECT ";
    for &byte in doomed.iter().cycle().take(40) {
        if stream.write_all(&[byte]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // If the timeout line survived the teardown race, it is classified;
    // the server-side counter below is the authoritative assertion.
    let mut line = String::new();
    if reader.read_line(&mut line).is_ok() && !line.trim().is_empty() {
        let parsed = json::parse(line.trim()).expect("timeout line parses");
        assert_eq!(error_kind(&parsed).as_deref(), Some("timeout"));
    }

    server.shutdown();
    assert_eq!(server.join().expect("report").timeouts, 1);
}

#[test]
fn half_closed_client_still_receives_every_buffered_response() {
    let server = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = paired(server.addr());

    let mut batch = String::new();
    for id in 0..4 {
        batch.push_str(&format!("{{\"id\":{id},\"sql\":\"SELECT T.a FROM T\"}}\n"));
    }
    stream.write_all(batch.as_bytes()).expect("batch");
    // Half-close: we are done writing, but still reading.
    stream.shutdown(Shutdown::Write).expect("half-close");
    for id in 0..4 {
        let response = read_line(&mut reader);
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
        assert!(response.get("artifacts").is_some());
    }
    // Then the server winds the connection down cleanly.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "clean EOF");

    server.shutdown();
    let report = server.join().expect("report");
    assert_eq!(report.accepted, 4);
    assert_eq!(report.dropped, 0);
}

#[test]
fn mid_request_disconnect_leaves_the_server_serving() {
    let server = spawn_server(ServerConfig::default());

    // Abandon a connection with a partial line in flight.
    {
        let mut stream = connect(server.addr());
        stream
            .write_all(b"{\"id\":1,\"sql\":\"SELECT T.")
            .expect("partial");
        // Dropped here: RST/FIN with an incomplete request.
    }
    // And one that vanishes right after a complete request.
    {
        let mut stream = connect(server.addr());
        stream
            .write_all(b"{\"id\":2,\"sql\":\"SELECT T.a FROM T\"}\n")
            .expect("complete");
        stream.shutdown(Shutdown::Both).expect("vanish");
    }
    std::thread::sleep(Duration::from_millis(100));
    // The server still serves new connections.
    let (mut stream, mut reader) = paired(server.addr());
    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":3,\"sql\":\"SELECT T.a FROM T\"}",
    );
    assert!(ok.get("artifacts").is_some(), "server must survive: {ok:?}");

    server.shutdown();
    let report = server.join().expect("report");
    // The abandoned partial line was never accepted; the vanished-but-
    // complete request may or may not have been answered in time, but the
    // live connection's request must be.
    assert!(report.responded >= 1);
}

#[test]
fn connection_flood_is_shed_with_overloaded_not_queued() {
    let server = spawn_server(ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    });

    // Fill the admission budget with two held-open connections.
    let (mut s1, mut r1) = paired(server.addr());
    let ok = roundtrip(&mut s1, &mut r1, "{\"id\":1,\"sql\":\"SELECT T.a FROM T\"}");
    assert!(ok.get("artifacts").is_some());
    let (mut s2, mut r2) = paired(server.addr());
    let ok = roundtrip(&mut s2, &mut r2, "{\"id\":2,\"sql\":\"SELECT T.a FROM T\"}");
    assert!(ok.get("artifacts").is_some());

    // The flood: every further connection gets one `overloaded` line.
    let mut sheds = 0;
    for _ in 0..5 {
        let stream = connect(server.addr());
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) > 0 {
            let parsed = json::parse(&line).expect("shed line parses");
            assert_eq!(error_kind(&parsed).as_deref(), Some("overloaded"));
            sheds += 1;
        }
    }
    assert!(
        sheds >= 4,
        "flood must be shed with structured errors, got {sheds}"
    );

    // Capacity frees up once a held connection leaves.
    drop((s1, r1));
    std::thread::sleep(Duration::from_millis(100));
    let (mut s3, mut r3) = paired(server.addr());
    let ok = roundtrip(&mut s3, &mut r3, "{\"id\":3,\"sql\":\"SELECT T.a FROM T\"}");
    assert!(ok.get("artifacts").is_some(), "slot must free: {ok:?}");

    server.shutdown();
    let report = server.join().expect("report");
    assert!(report.sheds >= 4);
    assert_eq!(report.dropped, 0);
}

#[test]
fn injected_compile_panic_is_contained_to_one_request_over_the_wire() {
    fault::arm_compile_panic("Wire_Poison_xyzzy");
    let server = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = paired(server.addr());

    let poisoned = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":1,\"sql\":\"SELECT P.a FROM Wire_Poison_xyzzy P WHERE P.a = 1 AND P.b = 2\"}",
    );
    assert_eq!(error_kind(&poisoned).as_deref(), Some("panic"));
    // Connection survives; the process-level counter saw the panic.
    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":2,\"sql\":\"SELECT T.a FROM T\"}",
    );
    assert!(
        ok.get("artifacts").is_some(),
        "connection must survive: {ok:?}"
    );
    let stats = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
    let panics = stats
        .get("service")
        .and_then(|s| s.get("panics_caught"))
        .and_then(Json::as_u64);
    assert_eq!(panics, Some(1), "stats must report the caught panic");
    fault::disarm_compile_panic();

    server.shutdown();
    let report = server.join().expect("report");
    assert_eq!(report.dropped, 0);
}

#[test]
fn shutdown_op_drains_gracefully_and_refuses_stragglers() {
    let server = spawn_server(ServerConfig {
        drain_grace: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = paired(server.addr());

    // Requests pipelined *before* the shutdown op must all be answered.
    let mut batch = String::new();
    for id in 0..4 {
        batch.push_str(&format!("{{\"id\":{id},\"sql\":\"SELECT T.a FROM T\"}}\n"));
    }
    batch.push_str("{\"op\":\"shutdown\"}\n");
    stream.write_all(batch.as_bytes()).expect("batch");
    for id in 0..4 {
        let response = read_line(&mut reader);
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
        assert!(response.get("artifacts").is_some(), "pre-drain id {id}");
    }
    let ack = read_line(&mut reader);
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)));

    // A connection arriving during the drain gets a structured refusal
    // (or, once the listener is gone, a connect error) — never a hang.
    if let Ok(stream) = TcpStream::connect(server.addr()) {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) > 0 {
            let parsed = json::parse(&line).expect("refusal parses");
            assert_eq!(error_kind(&parsed).as_deref(), Some("draining"));
        } // else: closed before a line — also a refusal, not a hang
    }

    let report = server.join().expect("report");
    assert_eq!(report.accepted, 5, "4 requests + shutdown op");
    assert_eq!(report.responded, 5, "4 responses + shutdown ack");
    assert_eq!(report.dropped, 0, "graceful drain loses nothing accepted");
}

#[test]
fn stats_op_reports_server_service_and_telemetry_sections() {
    let server = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = paired(server.addr());

    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":1,\"sql\":\"SELECT T.a FROM T\"}",
    );
    assert!(ok.get("artifacts").is_some());
    // Same text again: must be an L1 memo hit.
    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":2,\"sql\":\"SELECT T.a FROM T\"}",
    );
    assert!(ok.get("artifacts").is_some());

    let stats = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("op").and_then(Json::as_str), Some("stats"));
    let server_section = stats.get("server").expect("server section");
    for key in [
        "accepted",
        "responded",
        "connections_total",
        "connections_open",
        "sheds",
        "timeouts",
        "too_large",
        "slow_disconnects",
        "draining",
    ] {
        assert!(server_section.get(key).is_some(), "server.{key} missing");
    }
    assert_eq!(
        server_section
            .get("connections_open")
            .and_then(Json::as_u64),
        Some(1)
    );
    let service = stats.get("service").expect("service section");
    assert_eq!(service.get("requests").and_then(Json::as_u64), Some(2));
    assert_eq!(service.get("l1_hits").and_then(Json::as_u64), Some(1));
    assert!(stats.get("telemetry").is_some(), "telemetry section");

    let ping = roundtrip(&mut stream, &mut reader, "{\"op\":\"ping\"}");
    assert_eq!(ping.get("ok"), Some(&Json::Bool(true)));

    server.shutdown();
    assert_eq!(server.join().expect("report").dropped, 0);
}

#[test]
fn session_ops_compile_incrementally_over_the_wire() {
    let server = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = paired(server.addr());

    let opened = roundtrip(
        &mut stream,
        &mut reader,
        "{\"op\":\"open\",\"id\":1,\"sql\":\"SELECT T.a FROM T\"}",
    );
    let session = opened
        .get("session")
        .and_then(Json::as_u64)
        .expect("open assigns a session id");
    assert_eq!(opened.get("path").and_then(Json::as_str), Some("cold"));
    assert_eq!(
        opened
            .get("scene")
            .and_then(|s| s.get("v"))
            .and_then(Json::as_u64),
        Some(2),
        "open syncs a v2 scene document"
    );
    let cold_fp = opened.get("fingerprint").and_then(Json::as_str).unwrap();

    // Whitespace keystroke: token-tier reuse, fingerprint unchanged,
    // empty patch against the acked scene.
    let edited = roundtrip(
        &mut stream,
        &mut reader,
        &format!(
            "{{\"op\":\"edit\",\"id\":2,\"session\":{session},\"edits\":[{{\"at\":6,\"ins\":\" \"}}]}}"
        ),
    );
    assert_eq!(edited.get("path").and_then(Json::as_str), Some("tokens"));
    assert_eq!(
        edited.get("fingerprint").and_then(Json::as_str),
        Some(cold_fp)
    );
    assert!(edited.get("patch").is_some(), "small edit ships a patch");

    // A broken intermediate state is an error, not a lost session.
    let broken = roundtrip(
        &mut stream,
        &mut reader,
        &format!(
            "{{\"op\":\"edit\",\"id\":3,\"session\":{session},\"edits\":[{{\"at\":18,\"ins\":\" WHERE\"}}]}}"
        ),
    );
    assert_eq!(error_kind(&broken).as_deref(), Some("compile"));
    let recovered = roundtrip(
        &mut stream,
        &mut reader,
        &format!(
            "{{\"op\":\"edit\",\"id\":4,\"session\":{session},\"edits\":[{{\"at\":18,\"del\":6}}]}}"
        ),
    );
    assert_eq!(recovered.get("path").and_then(Json::as_str), Some("tokens"));

    // The stats op carries the session ledger.
    let stats = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
    let sessions = stats.get("sessions").expect("sessions section");
    assert_eq!(sessions.get("open").and_then(Json::as_u64), Some(1));
    assert_eq!(sessions.get("edits").and_then(Json::as_u64), Some(3));
    assert_eq!(sessions.get("path_tokens").and_then(Json::as_u64), Some(2));
    assert_eq!(sessions.get("parse_errors").and_then(Json::as_u64), Some(1));

    let closed = roundtrip(
        &mut stream,
        &mut reader,
        &format!("{{\"op\":\"close\",\"id\":5,\"session\":{session}}}"),
    );
    assert_eq!(closed.get("closed"), Some(&Json::Bool(true)));

    server.shutdown();
    let report = server.join().expect("report");
    assert_eq!(report.dropped, 0);
    assert_eq!(report.sessions_closed, 0, "client closed its own session");
}

#[test]
fn sessions_are_owner_scoped_reaped_on_disconnect_and_closed_by_drain() {
    let server = spawn_server(ServerConfig::default());

    // Connection A opens a session, then vanishes without closing it.
    let leaked_session;
    {
        let (mut stream, mut reader) = paired(server.addr());
        let opened = roundtrip(
            &mut stream,
            &mut reader,
            "{\"op\":\"open\",\"id\":1,\"sql\":\"SELECT T.a FROM T\"}",
        );
        leaked_session = opened.get("session").and_then(Json::as_u64).unwrap();
        stream.shutdown(Shutdown::Both).expect("vanish");
    }
    std::thread::sleep(Duration::from_millis(150));

    // Connection B cannot see A's (now reaped) session, and its own edit
    // against it is a structured refusal either way.
    let (mut stream, mut reader) = paired(server.addr());
    let foreign = roundtrip(
        &mut stream,
        &mut reader,
        &format!(
            "{{\"op\":\"edit\",\"id\":1,\"session\":{leaked_session},\"edits\":[{{\"at\":0,\"ins\":\" \"}}]}}"
        ),
    );
    assert_eq!(error_kind(&foreign).as_deref(), Some("bad_request"));
    let stats = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
    let sessions = stats.get("sessions").expect("sessions section");
    assert_eq!(sessions.get("reaped").and_then(Json::as_u64), Some(1));
    assert_eq!(sessions.get("open").and_then(Json::as_u64), Some(0));

    // B opens a session and leaves it open across the drain: the drain
    // must close it and say so in the report.
    let opened = roundtrip(
        &mut stream,
        &mut reader,
        "{\"op\":\"open\",\"id\":2,\"sql\":\"SELECT U.b FROM U\"}",
    );
    assert!(opened.get("session").is_some());
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("shutdown op");
    let ack = read_line(&mut reader);
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)));
    drop((stream, reader));

    let report = server.join().expect("report");
    assert_eq!(report.dropped, 0);
    // The open session was cleaned up by disconnect-reap or the drain
    // sweep (whichever won the race); nothing may leak.
    assert!(report.sessions_closed <= 1);
}
