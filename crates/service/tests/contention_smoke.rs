//! Release-mode contention smoke (CI runs this with `--ignored` after the
//! release build): eight threads hammer a fully warm service and the
//! output must stay byte-identical to the single-threaded run while
//! clearing a conservative throughput floor. Catches both correctness
//! regressions under real contention and accidental re-serialization of
//! the warm path (e.g. a mutex sneaking back into the hit path would
//! collapse multi-thread throughput well below the floor).

use queryvis_service::{paper_corpus_requests, DiagramService, Format, ServiceConfig};
use std::time::Instant;

/// Aggregate warm lookups/sec the 8-thread run must clear. A warm hit
/// costs single-digit microseconds on one thread, so even a fully
/// serialized single-core CI box clears this by an order of magnitude —
/// unless the warm path starts blocking.
const MIN_WARM_HITS_PER_SEC: f64 = 50_000.0;

#[test]
#[ignore = "release-mode contention smoke; run explicitly in CI"]
fn eight_thread_warm_batch_is_identical_and_fast() {
    let service = DiagramService::new(ServiceConfig::default());
    let requests = paper_corpus_requests(&[Format::Ascii, Format::Dot]);
    let render = |threads: usize| -> Vec<String> {
        service
            .execute_batch(&requests, threads)
            .iter()
            .map(|response| {
                let mut line = String::new();
                response.write_json_line(&mut line);
                line
            })
            .collect()
    };
    let cold = render(1); // populate both cache levels
    let reference = render(1); // warm single-thread reference
    assert_eq!(cold, reference, "warm output must match cold output");

    // 8-thread warm rounds: byte-identity every round, throughput floor
    // over the whole contended phase.
    let rounds = 40usize;
    let started = Instant::now();
    for _ in 0..rounds {
        assert_eq!(render(8), reference, "8-thread warm output diverged");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let lookups = (rounds * requests.len()) as f64;
    let rate = lookups / elapsed;
    assert!(
        rate >= MIN_WARM_HITS_PER_SEC,
        "warm throughput collapsed: {rate:.0} req/s < {MIN_WARM_HITS_PER_SEC} floor"
    );

    let stats = service.stats();
    assert!(
        stats.l1_hits >= (rounds * requests.len()) as u64,
        "warm rounds must be memo hits"
    );
}
