//! End-to-end semantics of the L1 text→fingerprint memo: normalization
//! equivalence, coherence with L2 eviction, and the property that a
//! memoized fingerprint always equals the recomputed one.

use queryvis::QueryVisOptions;
use queryvis_service::{
    fingerprint_sql, paper_corpus_requests, CacheConfig, DiagramService, Format, MemoConfig,
    Request, ServiceConfig,
};

fn request(id: u64, sql: &str) -> Request {
    Request {
        id,
        sql: sql.to_string(),
        formats: vec![Format::Ascii],
        rows: None,
    }
}

fn service() -> DiagramService {
    DiagramService::new(ServiceConfig::default())
}

#[test]
fn normalization_equivalent_texts_share_one_l1_entry() {
    let service = service();
    let canonical = "SELECT T.a FROM T";
    let variants = [
        "select T.a from T",
        "  SELECT\n\tT.a\r\n FROM   T  ",
        "SELECT /* projection */ T.a FROM T -- trailing",
        "SELECT T.a FROM T;",
    ];
    let first = service.handle(&request(0, canonical));
    let fp = first.outcome.as_ref().unwrap().fingerprint;
    assert_eq!(
        service.stats().l1_hits,
        0,
        "first sighting runs the frontend"
    );
    for (i, variant) in variants.iter().enumerate() {
        let response = service.handle(&request(1 + i as u64, variant));
        assert_eq!(response.outcome.as_ref().unwrap().fingerprint, fp);
    }
    let stats = service.stats();
    assert_eq!(
        stats.l1_hits,
        variants.len() as u64,
        "every variant must resolve through the memo"
    );
    assert_eq!(stats.l1_entries, 1, "all variants share one normalized key");
    assert_eq!(stats.compiles, 1);
}

/// The widened-fragment keywords (`JOIN`/`ON`/`HAVING`/`UNION`, ISSUE 4)
/// case-fold in normalization exactly like the rest: every spelling and
/// comment/whitespace variant of a widened query shares one memo entry.
#[test]
fn widened_keywords_case_fold_into_one_l1_entry() {
    let cases: &[(&str, &[&str])] = &[
        (
            "SELECT F.a FROM Frequents F JOIN Serves S ON F.b = S.b",
            &[
                "select F.a from Frequents F join Serves S on F.b = S.b",
                "SELECT F.a FROM Frequents F Join /* inner */ Serves S oN F.b = S.b",
                "SELECT F.a\nFROM Frequents F\n  JOIN Serves S\n  ON F.b = S.b;",
            ],
        ),
        (
            "SELECT T.a FROM T GROUP BY T.a HAVING COUNT(*) > 2",
            &[
                "select T.a from T group by T.a having count(*) > 2",
                "SELECT T.a FROM T GROUP BY T.a\n\tHaViNg COUNT(*) > 2",
            ],
        ),
        (
            "SELECT T.a FROM T UNION SELECT S.b FROM S",
            &[
                "select T.a from T union select S.b from S",
                "SELECT T.a FROM T  union  SELECT S.b FROM S;",
            ],
        ),
    ];
    for (canonical, variants) in cases {
        let service = service();
        let first = service.handle(&request(0, canonical));
        let fp = first.outcome.as_ref().unwrap().fingerprint;
        for (i, variant) in variants.iter().enumerate() {
            let response = service.handle(&request(1 + i as u64, variant));
            assert_eq!(
                response.outcome.as_ref().unwrap().fingerprint,
                fp,
                "variant diverged: {variant}"
            );
        }
        let stats = service.stats();
        assert_eq!(
            stats.l1_hits,
            variants.len() as u64,
            "every variant of `{canonical}` must resolve through the memo"
        );
        assert_eq!(
            stats.l1_entries, 1,
            "variants of `{canonical}` must share one normalized key"
        );
        assert_eq!(stats.compiles, 1, "{canonical}");
    }
}

/// `UNION` and `UNION ALL` must never share a memo entry (or a
/// fingerprint): the `ALL` keyword is a significant token.
#[test]
fn union_vs_union_all_never_share_a_memo_entry() {
    let service = service();
    let union = "SELECT T.a FROM T UNION SELECT S.b FROM S";
    let union_all = "SELECT T.a FROM T UNION ALL SELECT S.b FROM S";
    let a = service.handle(&request(0, union));
    let b = service.handle(&request(1, union_all));
    let stats = service.stats();
    assert_eq!(
        stats.l1_hits, 0,
        "distinct texts must both run the frontend"
    );
    assert_eq!(stats.l1_entries, 2);
    assert_eq!(stats.compiles, 2);
    assert_ne!(
        a.outcome.as_ref().unwrap().fingerprint,
        b.outcome.as_ref().unwrap().fingerprint,
        "UNION and UNION ALL are different patterns"
    );
    // Each spelling warms only itself.
    service.handle(&request(2, "select T.a from T union select S.b from S"));
    service.handle(&request(3, "select T.a from T union all select S.b from S"));
    assert_eq!(service.stats().l1_hits, 2);
    assert_eq!(service.stats().l1_entries, 2);
}

#[test]
fn malformed_texts_error_identically_warm_and_cold() {
    // A warm memo must never rescue a malformed text: `/* oops` swallowed
    // by normalization would otherwise make this text byte-equal to the
    // memoized valid one and serve artifacts for an unlexable request.
    let malformed = [
        "SELECT T.a FROM T /* oops",
        "SELECT T.a FROM T /* a /* b */",
        "SELECT T.a FROM T WHERE T.a = 'oops",
    ];
    let cold = service();
    let cold_lines: Vec<String> = malformed
        .iter()
        .enumerate()
        .map(|(i, sql)| cold.handle(&request(i as u64, sql)).to_json_line())
        .collect();
    let warm = service();
    warm.handle(&request(99, "SELECT T.a FROM T"));
    warm.handle(&request(98, "SELECT T.a FROM T WHERE T.a = 'oops'"));
    let warm_lines: Vec<String> = malformed
        .iter()
        .enumerate()
        .map(|(i, sql)| warm.handle(&request(i as u64, sql)).to_json_line())
        .collect();
    assert_eq!(cold_lines, warm_lines, "cache state must not change bytes");
    for line in &warm_lines {
        assert!(line.contains("error"), "malformed text must error: {line}");
    }
    assert_eq!(warm.stats().l1_hits, 0);
}

#[test]
fn distinct_literals_do_not_share_an_l1_key() {
    let service = service();
    // Same *pattern* (constants are erased), different literal text: the
    // pattern cache may share the entry, but the L1 memo must not guess —
    // each text runs the frontend once.
    let red = "SELECT B.bid FROM Boat B WHERE B.color = 'red'";
    let green = "SELECT B.bid FROM Boat B WHERE B.color = 'green'";
    service.handle(&request(0, red));
    let response = service.handle(&request(1, green));
    assert!(response.outcome.is_ok());
    let stats = service.stats();
    assert_eq!(stats.l1_hits, 0, "distinct literals are distinct texts");
    assert_eq!(stats.l1_entries, 2);
    // And likewise for distinct numeric literals.
    service.handle(&request(2, "SELECT T.a FROM T WHERE T.a = 1"));
    service.handle(&request(3, "SELECT T.a FROM T WHERE T.a = 2"));
    assert_eq!(service.stats().l1_hits, 0);
    assert_eq!(service.stats().l1_entries, 4);
}

#[test]
fn identifier_case_is_not_folded() {
    let service = service();
    service.handle(&request(0, "SELECT T.a FROM T"));
    // Table/alias case differs: a different text (and a different query).
    service.handle(&request(1, "SELECT t.a FROM t"));
    assert_eq!(service.stats().l1_hits, 0);
    assert_eq!(service.stats().l1_entries, 2);
}

#[test]
fn l2_eviction_invalidates_l1_and_the_service_recovers() {
    // One-entry, one-shard L2: every new pattern evicts the previous one.
    let service = DiagramService::new(ServiceConfig {
        cache: CacheConfig {
            capacity: 1,
            shards: 1,
        },
        memo: MemoConfig::default(),
        options: QueryVisOptions::default(),
        default_formats: vec![Format::Ascii],
    });
    let a = "SELECT T.a FROM T";
    let b = "SELECT T.a FROM T, T u WHERE T.a = u.a";
    let fp_a = service.handle(&request(0, a)).outcome.unwrap().fingerprint;
    assert!(service.memo().lookup(a).is_some(), "A memoized");
    // Serving B evicts A's entry from L2 — the memo entry for A's text
    // must be invalidated eagerly, not left dangling.
    service.handle(&request(1, b));
    assert!(
        service.memo().lookup(a).is_none(),
        "L2 eviction must invalidate the L1 text entry"
    );
    assert_eq!(service.stats().memo.invalidations, 1);
    assert!(service.memo().lookup(b).is_some(), "B memoized");
    // Serving A again recompiles (full frontend) and re-publishes both
    // levels, with the same fingerprint as before.
    let compiles_before = service.stats().compiles;
    let again = service.handle(&request(2, a)).outcome.unwrap();
    assert_eq!(again.fingerprint, fp_a);
    assert_eq!(service.stats().compiles, compiles_before + 1);
    assert!(service.memo().lookup(a).is_some(), "A re-memoized");
    // No spurious L1 hits were recorded along the way.
    assert_eq!(service.stats().l1_hits, 0);
}

#[test]
fn memoized_fingerprints_equal_recomputed_ones_across_the_corpus() {
    // Property over the whole paper corpus: after serving, every memoized
    // (normalized-text → fingerprint) pair must agree exactly with a fresh
    // run of the full frontend — the memo may only ever skip work, never
    // change an answer.
    let service = service();
    let requests = paper_corpus_requests(&[Format::Ascii]);
    let responses = service.execute_batch(&requests, 2);
    for (request, response) in requests.iter().zip(&responses) {
        let artifacts = response.outcome.as_ref().expect("corpus queries serve");
        let memoized = service
            .memo()
            .lookup(&request.sql)
            .expect("served texts are memoized");
        let recomputed = fingerprint_sql(&request.sql, QueryVisOptions::default())
            .expect("corpus queries fingerprint");
        assert_eq!(memoized.0, recomputed.fingerprint, "{}", request.sql);
        assert_eq!(memoized.0, artifacts.fingerprint, "{}", request.sql);
    }
    // Second pass is served entirely through the memo, byte-identically.
    let warm = service.execute_batch(&requests, 2);
    let stats = service.stats();
    assert_eq!(stats.l1_hits, requests.len() as u64);
    let cold_lines: Vec<String> = responses.iter().map(|r| r.to_json_line()).collect();
    let warm_lines: Vec<String> = warm.iter().map(|r| r.to_json_line()).collect();
    assert_eq!(cold_lines, warm_lines, "the memo must not change bytes");
}

#[test]
fn corpus_variants_hit_the_memo_after_one_sighting() {
    // Deterministic text mutations that normalization must erase: keyword
    // case, whitespace shape, an injected comment, a trailing semicolon.
    // Identifier spelling and string-literal contents are left untouched —
    // those are significant.
    fn mutate(sql: &str, salt: usize) -> String {
        let mut out = String::with_capacity(sql.len() + 32);
        out.push_str("/* warm-path variant */  ");
        let mut in_string = false;
        let mut word = String::new();
        let flush = |word: &mut String, out: &mut String, salt: usize| {
            if word.is_empty() {
                return;
            }
            let is_keyword = [
                "SELECT", "FROM", "WHERE", "AND", "NOT", "EXISTS", "IN", "ANY", "SOME", "ALL",
                "GROUP", "BY", "AS", "COUNT", "SUM", "AVG", "MIN", "MAX",
            ]
            .iter()
            .any(|kw| kw.eq_ignore_ascii_case(word));
            if is_keyword {
                if salt.is_multiple_of(2) {
                    out.push_str(&word.to_ascii_lowercase());
                } else {
                    out.push_str(&word.to_ascii_uppercase());
                }
            } else {
                out.push_str(word);
            }
            word.clear();
        };
        for (i, ch) in sql.chars().enumerate() {
            if in_string {
                out.push(ch);
                if ch == '\'' {
                    in_string = false;
                }
                continue;
            }
            match ch {
                '\'' => {
                    flush(&mut word, &mut out, salt);
                    in_string = true;
                    out.push(ch);
                }
                c if c.is_ascii_alphanumeric() || c == '_' => word.push(c),
                ' ' | '\n' | '\t' | '\r' => {
                    flush(&mut word, &mut out, salt);
                    if (i + salt).is_multiple_of(3) {
                        out.push_str("\n\t  ");
                    } else {
                        out.push(' ');
                    }
                }
                other => {
                    flush(&mut word, &mut out, salt);
                    out.push(other);
                }
            }
        }
        flush(&mut word, &mut out, salt);
        out.push_str(" ;");
        out
    }
    let service = service();
    let requests = paper_corpus_requests(&[Format::Ascii]);
    let baseline = service.execute_batch(&requests, 1);
    let mut checked = 0;
    for (i, (request, response)) in requests.iter().zip(&baseline).enumerate() {
        let Ok(artifacts) = &response.outcome else {
            continue;
        };
        let mutated = mutate(&request.sql, i);
        let hits_before = service.stats().l1_hits;
        let varied = service.handle(&Request {
            id: 10_000 + i as u64,
            sql: mutated.clone(),
            formats: vec![Format::Ascii],
            rows: None,
        });
        let varied = varied.outcome.expect("mutated corpus text still serves");
        assert_eq!(varied.fingerprint, artifacts.fingerprint, "{mutated}");
        assert_eq!(
            service.stats().l1_hits,
            hits_before + 1,
            "variant must be served through the memo: {mutated}"
        );
        checked += 1;
    }
    assert!(checked >= 30, "corpus coverage: {checked}");
}
