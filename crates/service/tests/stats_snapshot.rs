//! The machine-readable stats contract, end to end over the paper
//! corpus: two corpus passes through one service (second pass all L1
//! hits), snapshot through [`stats_snapshot_json`], and assert the
//! document (a) round-trips through the service's own `json::parse`,
//! (b) exposes the schema-stable key set the CI acceptance smoke greps,
//! and (c) reports the same legacy numbers `ServiceStats` always has —
//! 39 L1 hits for a repeated 39-query corpus — mirrored consistently
//! into the telemetry counters.
//!
//! This test is its own integration binary: it enables the
//! process-global telemetry flag, and the global counters it asserts on
//! would be perturbed by concurrent instrumented tests in the same
//! process.

use queryvis_service::json::{self, Json};
use queryvis_service::{
    paper_corpus_requests, stats_snapshot_json, DiagramService, Format, ServiceConfig,
};

#[test]
fn corpus_stats_snapshot_is_parseable_schema_stable_and_consistent() {
    queryvis_telemetry::global().set_enabled(true);
    let baseline = queryvis_telemetry::global().snapshot();

    let service = DiagramService::new(ServiceConfig::default());
    let requests = paper_corpus_requests(&[Format::Ascii, Format::Svg]);
    let n = requests.len() as u64;
    service.execute_batch(&requests, 2);
    service.execute_batch(&requests, 2); // second pass: pure L1 hits
    let stats = service.stats();
    let snapshot = queryvis_telemetry::global().snapshot();
    queryvis_telemetry::global().set_enabled(false);

    // (c) the legacy ServiceStats view: every second-pass request resolved
    // through the L1 memo.
    assert_eq!(stats.requests, 2 * n);
    assert_eq!(stats.l1_hits, n, "one L1 hit per repeated corpus query");
    assert_eq!(stats.l1_hits, 39, "paper corpus is 39 queries");
    assert!(stats.compiles > 0 && stats.compiles < n);
    assert_eq!(stats.errors, 0);

    // (a) serialize → parse is the identity on the full document.
    let doc = stats_snapshot_json(&stats, &snapshot, None);
    let text = doc.to_string();
    let parsed = json::parse(&text).expect("stats document must parse");
    assert_eq!(parsed, doc);

    // (b) schema-stable key set, exactly the names CI greps for.
    let service_obj = parsed.get("service").expect("service section");
    for key in [
        "requests",
        "compiles",
        "coalesced",
        "errors",
        "l1_hits",
        "panics_caught",
        "l1_entries",
        "interned_symbols",
        "cache",
        "memo",
    ] {
        assert!(service_obj.get(key).is_some(), "service.{key} missing");
    }
    let telemetry = parsed.get("telemetry").expect("telemetry section");
    for key in [
        "enabled",
        "counters",
        "gauges",
        "histograms",
        "trace_dropped",
    ] {
        assert!(telemetry.get(key).is_some(), "telemetry.{key} missing");
    }
    let histograms = telemetry.get("histograms").expect("histograms object");
    for stage in [
        "request",
        "stage.lex",
        "stage.parse",
        "stage.lower",
        "stage.canonicalize",
        "stage.diagram",
        "stage.scene",
        "stage.render.ascii",
        "stage.render.svg",
    ] {
        let h = histograms
            .get(stage)
            .unwrap_or_else(|| panic!("histograms.{stage} missing"));
        for field in [
            "count", "sum_ns", "min_ns", "max_ns", "mean_ns", "p50_ns", "p90_ns", "p99_ns",
            "p999_ns",
        ] {
            assert!(h.get(field).is_some(), "{stage}.{field} missing");
        }
    }
    // PassManager timings surface as pass.* histograms (satellite of the
    // write-only-timing fix): at least one named pass must be present.
    let has_pass = match histograms {
        Json::Obj(fields) => fields.iter().any(|(name, _)| name.starts_with("pass.")),
        _ => false,
    };
    assert!(has_pass, "no pass.* histogram in snapshot");

    // Telemetry counters mirror the per-instance ServiceStats deltas for
    // this window (baseline-subtracted: the registry is process-global).
    let counter_delta =
        |name: &str| snapshot.counter(name).unwrap_or(0) - baseline.counter(name).unwrap_or(0);
    assert_eq!(counter_delta("requests"), stats.requests);
    assert_eq!(counter_delta("compiles"), stats.compiles);
    assert_eq!(counter_delta("l1_hits"), stats.l1_hits);
    assert_eq!(counter_delta("errors"), stats.errors);
    assert_eq!(counter_delta("l2_hits"), stats.cache.hits);
    assert_eq!(counter_delta("l2_misses"), stats.cache.misses);

    // The request histogram saw every batch request exactly once.
    let request_hist = snapshot
        .histogram("request")
        .expect("request histogram registered");
    let baseline_count = baseline.histogram("request").map_or(0, |h| h.count());
    assert_eq!(request_hist.count() - baseline_count, stats.requests);
}
