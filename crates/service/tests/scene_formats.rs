//! Serving-layer acceptance for the scene rearchitecture: the
//! `scene_json` format, one-layout-per-entry sharing, format
//! negotiation, and unchanged L1/L2 cache semantics.

use queryvis_service::json::{self, Json};
use queryvis_service::{
    compile_representative, fingerprint_sql, paper_corpus_requests, DiagramService, Format,
    Request, Response, ServiceConfig,
};
use std::sync::Arc;

fn service() -> DiagramService {
    DiagramService::new(ServiceConfig::default())
}

fn request(id: u64, sql: &str, formats: &[Format]) -> Request {
    Request {
        id,
        sql: sql.to_string(),
        formats: formats.to_vec(),
        rows: None,
    }
}

/// Every corpus query's scene_json artifact parses with the service's own
/// JSON parser and carries the expected document shape. (CI runs this in
/// release mode as the scene_json validation step.)
#[test]
fn corpus_scene_json_parses_with_own_parser() {
    let service = service();
    let requests = paper_corpus_requests(&[Format::SceneJson]);
    let responses = service.execute_batch(&requests, 2);
    assert_eq!(responses.len(), requests.len());
    for response in &responses {
        let artifacts = response.outcome.as_ref().expect("corpus compiles");
        let (format, text) = &artifacts.rendered[0];
        assert_eq!(*format, Format::SceneJson);
        let doc = json::parse(text)
            .unwrap_or_else(|e| panic!("scene_json of request {} invalid: {e}", response.id));
        assert_eq!(doc.get("v").and_then(Json::as_u64), Some(1));
        let branches = doc.get("branches").and_then(Json::as_arr).unwrap();
        assert!(!branches.is_empty(), "request {}", response.id);
        for branch in branches {
            let marks = branch.get("marks").and_then(Json::as_arr).unwrap();
            assert!(!marks.is_empty(), "request {}", response.id);
        }
        // The whole response line (scene_json embedded as a string field)
        // survives a wire round trip too.
        let line = response.to_json_line();
        let parsed = json::parse(&line).expect("response line parses");
        assert_eq!(
            parsed
                .get("artifacts")
                .and_then(|a| a.get("scene_json"))
                .and_then(Json::as_str),
            Some(text.as_ref())
        );
    }
}

/// Format negotiation: `scene_json` parses by name, round-trips through
/// the request grammar, and serves alongside the other formats.
#[test]
fn scene_json_format_negotiation() {
    assert_eq!(Format::parse("scene_json"), Some(Format::SceneJson));
    let r = Request::from_json_line(
        r#"{"id": 1, "sql": "SELECT T.a FROM T", "formats": ["ascii", "scene_json", "svg"]}"#,
        0,
    )
    .unwrap();
    assert_eq!(
        r.formats,
        vec![Format::Ascii, Format::SceneJson, Format::Svg]
    );
    let response = service().handle(&r);
    let artifacts = response.outcome.expect("compiles");
    let names: Vec<&str> = artifacts.rendered.iter().map(|(f, _)| f.name()).collect();
    assert_eq!(names, vec!["ascii", "scene_json", "svg"]);
}

/// One entry served in all three geometric formats runs layout exactly
/// once: the scene is `OnceLock`ed, so ascii, svg, and scene_json share
/// one `Arc<Scene>` pointer (layout only runs inside that init).
#[test]
fn three_formats_one_layout() {
    let sql = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
               (SELECT * FROM Serves S WHERE S.bar = F.bar)";
    let entry =
        compile_representative(fingerprint_sql(sql, queryvis::QueryVisOptions::default()).unwrap());
    entry.render(Format::Ascii);
    let scene = Arc::as_ptr(entry.scene());
    entry.render(Format::Svg);
    entry.render(Format::SceneJson);
    assert_eq!(scene, Arc::as_ptr(entry.scene()), "scene rebuilt");
    assert_eq!(
        entry.rendered_formats(),
        vec![Format::Ascii, Format::Svg, Format::SceneJson]
    );
}

/// Per-format lazy render stays one-shot under concurrency: many threads
/// racing different formats on one cached entry end up sharing the same
/// artifact and scene pointers.
#[test]
fn concurrent_formats_render_once() {
    let service = Arc::new(service());
    let sql = "SELECT F.person FROM Frequents F WHERE NOT EXISTS \
               (SELECT * FROM Serves S WHERE S.bar = F.bar AND NOT EXISTS \
               (SELECT L.drink FROM Likes L WHERE L.person = F.person \
                AND S.drink = L.drink))";
    // Warm the entry (compile once), then race all geometric formats.
    service.handle(&request(0, sql, &[Format::Reading]));
    let formats = [Format::Ascii, Format::Svg, Format::SceneJson];
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let service = Arc::clone(&service);
                scope.spawn(move || service.handle(&request(i, sql, &[formats[i as usize % 3]])))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(service.stats().compiles, 1, "no recompiles under races");
    // Responses of one format all share a single artifact allocation.
    for format in formats {
        let ptrs: Vec<*const str> = responses
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .flat_map(|a| a.rendered.iter())
            .filter(|(f, _)| *f == format)
            .map(|(_, text)| Arc::as_ptr(text))
            .collect();
        assert!(!ptrs.is_empty());
        assert!(
            ptrs.windows(2).all(|w| std::ptr::eq(w[0], w[1])),
            "{}: artifact rendered more than once",
            format.name()
        );
    }
}

/// L1/L2 semantics are untouched by the new format: a repeat scene_json
/// text is an L1 hit served from the L2 entry, with no extra compiles.
#[test]
fn scene_json_requests_hit_both_cache_levels() {
    let service = service();
    let sql = "SELECT T.a FROM T WHERE T.b = 'x'";
    service.handle(&request(0, sql, &[Format::SceneJson]));
    let before = service.stats();
    assert_eq!(before.compiles, 1);
    // Normalization-equivalent variant text: same L1 key.
    let variant = "select T.a from T where T.b = 'x';";
    let response = service.handle(&request(1, variant, &[Format::SceneJson]));
    assert!(response.outcome.is_ok());
    let after = service.stats();
    assert_eq!(after.compiles, 1, "no recompile");
    assert_eq!(after.l1_hits, before.l1_hits + 1, "L1 hit");
    assert_eq!(after.cache.hits, before.cache.hits + 1, "L2 hit");
}

/// Batch output with scene_json stays byte-identical across thread
/// counts (the service binary's acceptance property).
#[test]
fn scene_json_batches_deterministic_across_threads() {
    let requests = paper_corpus_requests(&[Format::Ascii, Format::Svg, Format::SceneJson]);
    let baseline: Vec<String> = service()
        .execute_batch(&requests, 1)
        .iter()
        .map(Response::to_json_line)
        .collect();
    for threads in [2, 4] {
        let lines: Vec<String> = service()
            .execute_batch(&requests, threads)
            .iter()
            .map(Response::to_json_line)
            .collect();
        assert_eq!(lines, baseline, "threads = {threads}");
    }
}
