//! Fingerprint semantics over the paper corpus: pattern-equivalent queries
//! must share a fingerprint (and therefore one cache compile); everything
//! else must not collide.

use queryvis::QueryVisOptions;
use queryvis_corpus::{pattern_grid, sailors_only_variants, PatternKind};
use queryvis_service::{
    fingerprint_sql, paper_corpus_requests, DiagramService, Format, Request, ServiceConfig,
};

fn fingerprint(sql: &str) -> queryvis_service::Fingerprint {
    fingerprint_sql(sql, QueryVisOptions::default())
        .unwrap_or_else(|e| panic!("corpus query must fingerprint: {e}\n{sql}"))
        .fingerprint
}

fn request(id: u64, sql: &str) -> Request {
    Request {
        id,
        sql: sql.to_string(),
        formats: vec![Format::Ascii],
        rows: None,
    }
}

#[test]
fn alias_renamed_equivalents_share_fingerprint_and_compile_once() {
    // §1.1: the drinkers/bars unique-set pair — alpha-renamed, reordered,
    // over different relations — is the paper's flagship equivalent pair.
    let drinkers = "SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS( \
         SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker \
         AND NOT EXISTS(SELECT * FROM Likes L3 WHERE L3.drinker = L2.drinker \
           AND NOT EXISTS(SELECT * FROM Likes L4 WHERE L4.drinker = L1.drinker \
             AND L4.beer = L3.beer)) \
         AND NOT EXISTS(SELECT * FROM Likes L5 WHERE L5.drinker = L1.drinker \
           AND NOT EXISTS(SELECT * FROM Likes L6 WHERE L6.drinker = L2.drinker \
             AND L6.beer = L5.beer)))";
    let bars = "SELECT F1.bar FROM Frequents F1 WHERE NOT EXISTS( \
         SELECT * FROM Frequents F2 WHERE F1.bar <> F2.bar \
         AND NOT EXISTS(SELECT * FROM Frequents F3 WHERE F3.bar = F2.bar \
           AND NOT EXISTS(SELECT * FROM Frequents F4 WHERE F4.bar = F1.bar \
             AND F4.person = F3.person)) \
         AND NOT EXISTS(SELECT * FROM Frequents F5 WHERE F5.bar = F1.bar \
           AND NOT EXISTS(SELECT * FROM Frequents F6 WHERE F6.bar = F2.bar \
             AND F6.person = F5.person)))";
    assert_eq!(fingerprint(drinkers), fingerprint(bars));

    // Serving both costs exactly one compile; the second request is a pure
    // cache hit.
    let service = DiagramService::new(ServiceConfig::default());
    assert!(service.handle(&request(0, drinkers)).outcome.is_ok());
    assert!(service.handle(&request(1, bars)).outcome.is_ok());
    let stats = service.stats();
    assert_eq!(stats.compiles, 1, "equivalents must compile once");
    assert_eq!(stats.cache.hits, 1, "second request must hit");
    assert_eq!(stats.cache.misses, 1);
}

#[test]
fn sailors_syntactic_variants_share_fingerprint() {
    // Fig. 24: NOT EXISTS / NOT IN / <> ALL spellings of one pattern.
    let fps: Vec<_> = sailors_only_variants()
        .iter()
        .map(|s| fingerprint(s))
        .collect();
    assert_eq!(fps[0], fps[1]);
    assert_eq!(fps[1], fps[2]);
}

#[test]
fn pattern_grid_rows_share_and_columns_differ() {
    // App. G / Fig. 26: each pattern spans three schemas (one fingerprint),
    // and the three patterns are pairwise distinct.
    let grid = pattern_grid();
    let mut by_kind: Vec<(PatternKind, Vec<queryvis_service::Fingerprint>)> = Vec::new();
    for kind in [PatternKind::No, PatternKind::Only, PatternKind::All] {
        let fps: Vec<_> = grid
            .iter()
            .filter(|q| q.kind == kind)
            .map(|q| fingerprint(&q.sql))
            .collect();
        assert_eq!(fps.len(), 3, "{kind:?} spans three schemas");
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "{kind:?} must share one fingerprint across schemas"
        );
        by_kind.push((kind, fps));
    }
    for i in 0..by_kind.len() {
        for j in (i + 1)..by_kind.len() {
            assert_ne!(
                by_kind[i].1[0], by_kind[j].1[0],
                "{:?} and {:?} must not collide",
                by_kind[i].0, by_kind[j].0
            );
        }
    }
}

#[test]
fn no_fingerprint_collisions_across_the_full_paper_corpus() {
    // Fingerprints must agree exactly with canonical-pattern equality over
    // every corpus query: equal pattern ⇒ equal fingerprint (soundness of
    // the cache key), distinct pattern ⇒ distinct fingerprint (no false
    // sharing of diagrams).
    let requests = paper_corpus_requests(&[Format::Ascii]);
    let fingerprinted: Vec<_> = requests
        .iter()
        .map(|r| {
            fingerprint_sql(&r.sql, QueryVisOptions::default())
                .unwrap_or_else(|e| panic!("corpus query {} must fingerprint: {e}", r.id))
        })
        .collect();
    let mut equivalent_pairs = 0;
    for a in &fingerprinted {
        for b in &fingerprinted {
            assert_eq!(
                a.pattern_key() == b.pattern_key(),
                a.fingerprint == b.fingerprint,
                "fingerprint equality must mirror pattern equality:\n{}\nvs\n{}",
                a.prepared.sql,
                b.prepared.sql
            );
            if !std::ptr::eq(a, b) && a.pattern_key() == b.pattern_key() {
                equivalent_pairs += 1;
            }
        }
    }
    assert!(
        equivalent_pairs > 0,
        "the corpus is known to contain pattern-equivalent queries"
    );
}

#[test]
fn corpus_served_twice_compiles_each_pattern_once() {
    let service = DiagramService::new(ServiceConfig::default());
    let requests = paper_corpus_requests(&[Format::Ascii]);
    let unique_patterns = {
        let mut patterns: Vec<String> = requests
            .iter()
            .map(|r| {
                fingerprint_sql(&r.sql, QueryVisOptions::default())
                    .unwrap()
                    .pattern_key()
                    .render()
            })
            .collect();
        patterns.sort();
        patterns.dedup();
        patterns.len()
    };
    service.execute_batch(&requests, 4);
    let first = service.stats();
    assert_eq!(first.compiles as usize, unique_patterns);
    service.execute_batch(&requests, 4);
    let second = service.stats();
    assert_eq!(second.compiles as usize, unique_patterns, "no recompiles");
    assert_eq!(
        (second.cache.hits - first.cache.hits) as usize,
        requests.len(),
        "second pass must be all hits"
    );
}
