//! Concurrency stress for the lock-free warm path.
//!
//! Three properties the seqlock/epoch read side must keep under real
//! thread interleavings:
//!
//! * **no torn reads** — an L2 `get` racing writers either misses or
//!   returns the entry actually published under that fingerprint (the
//!   entry self-identifies, so a torn `(key, ptr)` pair would be caught);
//! * **no stale-text L1 hit** — a memo lookup racing inserts,
//!   invalidations, and table rebuilds either misses or returns exactly
//!   the fingerprint memoized for that text;
//! * **zero lock acquisitions on the warm path** — once the working set
//!   is resident, reads never take the mutex fallback (counted per
//!   shard), even across a multi-threaded batch.
//!
//! Plus the executor's determinism contract: byte-identical batch output
//! for any thread count, stealing included.

use queryvis::QueryVisOptions;
use queryvis_service::{
    compile_representative, fingerprint_sql, paper_corpus_requests, CacheConfig, CompiledEntry,
    DiagramService, Fingerprint, Format, L1Memo, MemoConfig, Request, ServiceConfig, ShardedCache,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn distinct_entries(n: usize) -> Vec<(Fingerprint, Arc<CompiledEntry>)> {
    // Canonicalization anonymizes attribute names and literals, so
    // pattern distinctness needs structural variation: predicate count.
    let entries: Vec<(Fingerprint, Arc<CompiledEntry>)> = (0..n)
        .map(|i| {
            let mut sql = String::from("SELECT T.a FROM T WHERE T.a = 0");
            for j in 0..i {
                sql.push_str(&format!(" AND T.b{j} = {j}"));
            }
            let fq = fingerprint_sql(&sql, QueryVisOptions::default()).unwrap();
            let fp = fq.fingerprint;
            (fp, Arc::new(compile_representative(fq)))
        })
        .collect();
    let unique: std::collections::HashSet<Fingerprint> =
        entries.iter().map(|(fp, _)| *fp).collect();
    assert_eq!(unique.len(), n, "stress keys must be distinct patterns");
    entries
}

#[test]
fn l2_readers_never_see_a_torn_entry_under_writer_churn() {
    // Tiny cache, big keyspace: every insert demotes/evicts, tombstones
    // accumulate, and the table rebuilds repeatedly while readers probe.
    let cache = ShardedCache::new(CacheConfig {
        capacity: 16,
        shards: 2,
    });
    let entries = distinct_entries(64);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..2usize {
            let cache = &cache;
            let entries = &entries;
            let stop = &stop;
            scope.spawn(move || {
                for round in 0..5_000usize {
                    let (fp, entry) = &entries[(round * 2 + w) % entries.len()];
                    cache.insert(*fp, Arc::clone(entry));
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for r in 0..4usize {
            let cache = &cache;
            let entries = &entries;
            let stop = &stop;
            scope.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let (fp, _) = &entries[i % entries.len()];
                    if let Some(found) = cache.get(*fp) {
                        // The entry self-identifies: a hit must hand back
                        // the entry published under this fingerprint.
                        assert_eq!(found.fingerprint(), *fp, "torn L2 read");
                    }
                    i += 3;
                }
            });
        }
    });
    let stats = cache.stats();
    assert!(stats.entries <= stats.capacity);
    assert!(stats.evictions > 0, "churn must actually evict");
}

#[test]
fn l1_lookups_never_return_a_stale_fingerprint_under_churn() {
    // Writers insert texts and invalidate their fingerprints while
    // readers look the same texts up: a hit must always carry the
    // fingerprint memoized for that exact text. Tiny shards force
    // eviction, tombstoning, FIFO compaction, and table rebuilds.
    let memo = L1Memo::new(MemoConfig {
        capacity: 32,
        shards: 2,
    });
    let texts: Vec<(String, Fingerprint, u32)> = (0..64u32)
        .map(|i| {
            (
                format!("SELECT T.c{i} FROM T"),
                Fingerprint(u128::from(i) + 1),
                i,
            )
        })
        .collect();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..2usize {
            let memo = &memo;
            let texts = &texts;
            let stop = &stop;
            scope.spawn(move || {
                for round in 0..3_000usize {
                    let (sql, fp, words) = &texts[(round * 2 + w) % texts.len()];
                    memo.insert(sql, *fp, *words);
                    if round % 5 == w {
                        memo.invalidate(*fp);
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for r in 0..4usize {
            let memo = &memo;
            let texts = &texts;
            let stop = &stop;
            scope.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let (sql, fp, words) = &texts[i % texts.len()];
                    if let Some((found_fp, found_words)) = memo.lookup(sql) {
                        assert_eq!(found_fp, *fp, "stale-text L1 hit for {sql:?}");
                        assert_eq!(found_words, *words);
                    }
                    i += 3;
                }
            });
        }
    });
    let stats = memo.stats();
    assert!(stats.entries <= stats.capacity);
    assert!(stats.invalidations > 0);
}

#[test]
fn warm_path_acquires_zero_locks() {
    // Warm the service once, then serve the same batch again — single-
    // and multi-threaded. Every request resolves via L1+L2 reads; the
    // fallback counters (the only way a read can reach a mutex) must
    // still be zero afterwards.
    let service = DiagramService::new(ServiceConfig::default());
    let requests = paper_corpus_requests(&[Format::Ascii, Format::Dot]);
    let cold = service.execute_batch(&requests, 1);
    assert_eq!(cold.len(), requests.len());
    for threads in [1, 4] {
        let warm = service.execute_batch(&requests, threads);
        assert_eq!(warm.len(), requests.len());
    }
    let stats = service.stats();
    assert!(stats.l1_hits > 0, "warm runs must hit the memo");
    assert_eq!(
        stats.cache.read_fallbacks, 0,
        "a warm L2 hit must acquire zero locks"
    );
    assert_eq!(
        stats.memo.read_fallbacks, 0,
        "a warm L1 lookup must acquire zero locks"
    );
}

#[test]
fn batch_output_is_byte_identical_across_thread_counts_with_stealing() {
    let requests: Vec<Request> = paper_corpus_requests(&[Format::Ascii])
        .into_iter()
        .take(24)
        .collect();
    let render = |threads: usize| -> Vec<String> {
        let service = DiagramService::new(ServiceConfig::default());
        service
            .execute_batch(&requests, threads)
            .iter()
            .map(|response| {
                let mut line = String::new();
                response.write_json_line(&mut line);
                line
            })
            .collect()
    };
    let reference = render(1);
    for threads in [2, 4, 8] {
        assert_eq!(render(threads), reference, "threads={threads}");
    }
}
