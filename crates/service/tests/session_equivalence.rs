//! Generative equivalence suite for incremental sessions (DESIGN.md §9):
//! random edit scripts replayed through a [`SessionStore`] must be
//! *observationally identical* to compiling every intermediate buffer
//! from scratch.
//!
//! Each case generates a query with `proptest::sqlgen`, opens a session
//! on its canonical text, then morphs the buffer through a chain of
//! targets — a spelling variant, a pattern-equivalent rewrite, an
//! unrelated query, and back — one tiny byte-range edit at a time. The
//! intermediate buffers routinely fail to parse (a half-typed identifier,
//! a dangling keyword); those steps must return exactly the from-scratch
//! error, and the ones that compile must return the from-scratch
//! fingerprint, word count, representative disclosure, and — after
//! applying the scene patch (or taking the resync) — the byte-identical
//! scene document. A shadow client applies every patch, so this is also
//! the end-to-end proof of the patch-op vocabulary.

use proptest::sqlgen::{gen_query, GenConfig};
use proptest::test_runner::TestRng;
use queryvis::layout::Scene;
use queryvis_service::json;
use queryvis_service::{
    apply_patch, fingerprint_sql, parse_patch_ops, scene_json_v2, DiagramService, ServiceConfig,
    SessionConfig, SessionStore,
};
use queryvis_sql::Edit;
use std::sync::Arc;

/// Split the `from → to` rewrite into single-digit-byte edits: common
/// prefix/suffix preserved, the damaged middle deleted and retyped in
/// random chunks. Every chunk boundary is a state the server compiles.
fn morph_edits(from: &str, to: &str, rng: &mut TestRng) -> Vec<Edit> {
    let from_b = from.as_bytes();
    let to_b = to.as_bytes();
    let mut p = 0;
    while p < from_b.len() && p < to_b.len() && from_b[p] == to_b[p] {
        p += 1;
    }
    let mut s = 0;
    while s < from_b.len() - p
        && s < to_b.len() - p
        && from_b[from_b.len() - 1 - s] == to_b[to_b.len() - 1 - s]
    {
        s += 1;
    }
    let mut edits = Vec::new();
    let mut remaining = from_b.len() - p - s;
    while remaining > 0 {
        let chunk = (1 + (rng.next_u64() as usize % 3)).min(remaining);
        edits.push(Edit {
            offset: p,
            deleted: chunk,
            inserted: String::new(),
        });
        remaining -= chunk;
    }
    let mut rest = &to[p..to.len() - s];
    let mut at = p;
    while !rest.is_empty() {
        let mut chunk = (1 + (rng.next_u64() as usize % 4)).min(rest.len());
        while !rest.is_char_boundary(chunk) {
            chunk += 1;
        }
        let (head, tail) = rest.split_at(chunk);
        edits.push(Edit {
            offset: at,
            deleted: 0,
            inserted: head.to_string(),
        });
        at += head.len();
        rest = tail;
    }
    edits
}

/// From-scratch oracle: the standard pipeline over the whole text, on the
/// same service (so cache state — and therefore representative choice —
/// matches what the session sees).
fn oracle(
    service: &Arc<DiagramService>,
    sql: &str,
) -> Result<(String, Option<String>, Arc<Scene>), String> {
    match fingerprint_sql(sql, Arc::new(Default::default())) {
        Err(e) => Err(e.to_string()),
        Ok(fq) => {
            let entry = service.entry_for(fq).map_err(|e| e.message)?;
            let representative =
                (entry.representative_sql() != sql).then(|| entry.representative_sql().to_string());
            Ok((
                entry.fingerprint_hex().to_string(),
                representative,
                Arc::clone(entry.scene()),
            ))
        }
    }
}

#[test]
fn random_edit_scripts_match_from_scratch_compiles_at_every_step() {
    let cfg = GenConfig::default();
    let mut checked_states = 0usize;
    let mut error_states = 0usize;
    let mut path_tokens = 0u64;
    let mut path_fragment = 0u64;
    let mut path_full = 0u64;
    for case in 0..30u64 {
        let mut rng = TestRng::for_case("session_equivalence", case);
        let service = Arc::new(DiagramService::new(ServiceConfig::default()));
        let store = SessionStore::new(Arc::clone(&service), SessionConfig::default());

        let q = gen_query(&cfg, &mut rng);
        let other = gen_query(&cfg, &mut rng);
        let start = q.canonical();
        // The morph chain: spelling-only, pattern-equivalent rewrite, a
        // structurally different query, and back home.
        let targets = [
            q.text_variant(case),
            q.pattern_variant(case + 1),
            other.canonical(),
            q.canonical(),
        ];

        let (id, opened) = store.open(&start, 1).expect("canonical text fits budget");
        let opened = opened.expect("generated queries compile");
        let (fp, _, scene) = oracle(&service, &start).expect("oracle agrees open compiles");
        assert_eq!(opened.fingerprint_hex.as_ref(), fp);
        assert_eq!(
            opened.scene.as_deref(),
            Some(scene_json_v2(&scene).as_str()),
            "case {case}: open must sync the full scene"
        );
        // The shadow client's acked state: scene struct + serialized form.
        let mut client_scene = scene;
        let mut buffer = start.clone();

        for target in &targets {
            for edit in morph_edits(&buffer.clone(), target, &mut rng) {
                queryvis_sql::apply_edit(&mut buffer, &edit).expect("morph edits are in-range");
                let reply = store
                    .edit(id, &[edit], 1)
                    .expect("edit request well-formed");
                checked_states += 1;
                match oracle(&service, &buffer) {
                    Err(expected) => {
                        error_states += 1;
                        let got = reply.expect_err(&format!(
                            "case {case}: session compiled {buffer:?} but the pipeline rejects it"
                        ));
                        assert_eq!(
                            got.message, expected,
                            "case {case}: error text diverged on {buffer:?}"
                        );
                    }
                    Ok((fp, representative, scene)) => {
                        let reply = reply.unwrap_or_else(|e| {
                            panic!(
                                "case {case}: session rejected {buffer:?} which compiles: {}",
                                e.message
                            )
                        });
                        assert_eq!(
                            reply.fingerprint_hex.as_ref(),
                            fp,
                            "case {case}: fingerprint diverged on {buffer:?}"
                        );
                        assert_eq!(
                            reply.representative_sql.as_deref(),
                            representative.as_deref(),
                            "case {case}: representative disclosure diverged on {buffer:?}"
                        );
                        // Advance the shadow client: apply the patch onto
                        // the last acked scene, or take the resync.
                        let expected_bytes = scene_json_v2(&scene);
                        match (&reply.patch, &reply.scene) {
                            (Some(patch), None) => {
                                let doc = json::parse(&format!("[{patch}]"))
                                    .expect("patch ops serialize as JSON");
                                let ops = parse_patch_ops(doc.as_arr().expect("array"))
                                    .expect("patch ops parse back");
                                client_scene = Arc::new(
                                    apply_patch(&client_scene, &ops)
                                        .expect("patch applies onto acked scene"),
                                );
                            }
                            (None, Some(_)) => client_scene = Arc::clone(&scene),
                            other => panic!(
                                "case {case}: reply must carry exactly one of patch/scene, got {:?}",
                                (other.0.is_some(), other.1.is_some())
                            ),
                        }
                        assert_eq!(
                            scene_json_v2(&client_scene),
                            expected_bytes,
                            "case {case}: client scene diverged from scratch compile on {buffer:?}"
                        );
                    }
                }
            }
            assert_eq!(&buffer, target, "morph script must land on its target");
        }
        let stats = store.snapshot();
        path_tokens += stats.path_tokens;
        path_fragment += stats.path_fragment;
        path_full += stats.path_full;
        store
            .close(id, 1)
            .expect("session survives the whole script");
    }
    // The suite is only meaningful if it really exercised both regimes.
    assert!(
        checked_states > 300,
        "expected a substantial script, checked {checked_states}"
    );
    assert!(
        error_states > 30,
        "expected transient parse errors along the morphs, saw {error_states}"
    );
    // Equivalence would hold trivially if every edit fell back to the
    // full pipeline; prove the warm tiers really carried traffic.
    assert!(path_tokens > 0, "no edit resolved at the token tier");
    assert!(
        path_fragment > 50,
        "fragment tier underused: {path_fragment} of {checked_states}"
    );
    assert!(path_full > 0, "structural morphs must hit the full tier");
}
