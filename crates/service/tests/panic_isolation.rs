//! Panic isolation, end to end through the public service API: an
//! injected compile panic must fail exactly one request with a
//! classified `panic` error, increment `panics_caught`, and leave the
//! service fully functional — the promise the TCP front end builds on.
//!
//! Own integration binary: the fault hook and the telemetry counter it
//! asserts on are process-global, so this must not share a process with
//! other instrumented tests.

use queryvis_service::{fault, DiagramService, ErrorKind, Format, Request, ServiceConfig};
use std::sync::{Mutex, Once};

/// The fault hook is process-global; both tests arm it, so they must not
/// overlap even within this binary.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Swallow the *expected* injected-panic backtraces while letting real
/// test failures print normally.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected compile panic") {
                previous(info);
            }
        }));
    });
}

#[test]
fn injected_compile_panic_fails_one_request_not_the_process() {
    let _serial = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    fault::arm_compile_panic("Poisoned_Tbl_xyzzy");

    let service = DiagramService::new(ServiceConfig::default());
    let poisoned = Request {
        id: 7,
        sql: "SELECT P.a FROM Poisoned_Tbl_xyzzy P WHERE P.a = 1".to_string(),
        formats: vec![Format::Ascii],
        rows: None,
    };
    let response = service.handle(&poisoned);
    let err = response
        .outcome
        .as_ref()
        .expect_err("injected panic must surface as an error response");
    assert_eq!(err.kind, ErrorKind::Panic);
    assert!(err.message.contains("panicked"), "message: {}", err.message);
    let line = response.to_json_line();
    assert!(
        line.contains("\"error_kind\":\"panic\""),
        "wire line must carry the classification: {line}"
    );

    // The panic was counted, and the service keeps serving other queries.
    assert_eq!(service.stats().panics_caught, 1);
    let healthy = Request {
        id: 8,
        sql: "SELECT T.a FROM T WHERE T.a = 1".to_string(),
        formats: vec![Format::Ascii],
        rows: None,
    };
    assert!(service.handle(&healthy).outcome.is_ok());

    // A panicking flight is retired, not cached: disarmed, the very same
    // SQL compiles cleanly on retry.
    fault::disarm_compile_panic();
    let retry = service.handle(&poisoned);
    assert!(
        retry.outcome.is_ok(),
        "disarmed retry must succeed: {:?}",
        retry.outcome.err()
    );
    assert_eq!(
        service.stats().panics_caught,
        1,
        "no new panics after disarm"
    );
}

#[test]
fn batch_executor_contains_injected_panics_too() {
    let _serial = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    fault::arm_compile_panic("Poisoned_Batch_xyzzy");

    let service = DiagramService::new(ServiceConfig::default());
    let requests = vec![
        Request {
            id: 0,
            sql: "SELECT T.a FROM T WHERE T.a = 1".to_string(),
            formats: vec![Format::Ascii],
            rows: None,
        },
        // Structurally distinct from the healthy requests: fingerprinting
        // abstracts table names and constants, so a pattern-equivalent
        // query would coalesce onto the healthy representative and the
        // token would never reach the compile.
        Request {
            id: 1,
            sql: "SELECT P.a FROM Poisoned_Batch_xyzzy P WHERE P.a = 2 AND P.b = 3".to_string(),
            formats: vec![Format::Ascii],
            rows: None,
        },
        Request {
            id: 2,
            sql: "SELECT U.b FROM U WHERE U.b = 3".to_string(),
            formats: vec![Format::Ascii],
            rows: None,
        },
    ];
    let responses = service.execute_batch(&requests, 2);
    fault::disarm_compile_panic();

    assert_eq!(responses.len(), 3);
    assert!(responses[0].outcome.is_ok());
    assert!(responses[2].outcome.is_ok());
    let err = responses[1]
        .outcome
        .as_ref()
        .expect_err("poisoned batch entry must fail alone");
    assert_eq!(err.kind, ErrorKind::Panic);
    assert!(service.stats().panics_caught >= 1);
}
